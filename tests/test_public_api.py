"""Public-API conformance: every repro module imports, ``__all__`` is honest.

Walks the whole ``repro`` package, imports every module, and enforces the
export contract:

* every package ``__init__`` declares ``__all__``;
* every declared ``__all__`` (package or leaf module) is sorted,
  duplicate-free, names only public symbols, and every name actually
  resolves on the module — no phantom exports;
* the facade packages (``repro.runtime``, ``repro.serve``) re-export the
  parallel-runtime symbols introduced with :mod:`repro.runtime.parallel`.
"""

import importlib
import pkgutil

import pytest

import repro

EXPECTED_RUNTIME_PARALLEL_EXPORTS = (
    "PipelineBroadcast",
    "Shard",
    "ShardResult",
    "ShardTask",
    "WorkerPool",
    "broadcast_classifier",
    "broadcast_extractor",
    "broadcast_pipeline",
    "classify_batch_parallel",
    "estimate_report_cost",
    "estimate_text_cost",
    "extract_batch_parallel",
    "map_shards",
    "plan_shards",
    "process_reports_parallel",
    "resolve_workers",
    "restore_pipeline",
    "run_shard",
    "shard_seed",
)

EXPECTED_SERVE_PARALLEL_EXPORTS = (
    "extract_batch_parallel",
    "process_reports_parallel",
    "resolve_workers",
)

#: The light task-registry surface re-exported from the top-level package.
EXPECTED_TASKS_EXPORTS = (
    "Task",
    "TaskRegistryError",
    "get_task",
    "register_task",
    "task_names",
)


def _walk_module_names() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


ALL_MODULES = _walk_module_names()
PACKAGES = [
    name
    for name in ALL_MODULES
    if importlib.import_module(name).__name__
    == importlib.import_module(name).__package__
]


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", PACKAGES)
def test_package_declares_all(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), (
        f"{module_name} is a package but declares no __all__"
    )
    assert module.__all__, f"{module_name}.__all__ is empty"


@pytest.mark.parametrize(
    "module_name",
    [
        name
        for name in ALL_MODULES
        if hasattr(importlib.import_module(name), "__all__")
    ],
)
def test_declared_exports_resolve(module_name):
    """__all__ matches what the module exports: no phantoms, no privates."""
    module = importlib.import_module(module_name)
    exported = list(module.__all__)
    assert exported == sorted(exported), (
        f"{module_name}.__all__ is not sorted"
    )
    assert len(exported) == len(set(exported)), (
        f"{module_name}.__all__ has duplicates"
    )
    for name in exported:
        is_dunder = name.startswith("__") and name.endswith("__")
        assert is_dunder or not name.startswith("_"), (
            f"{module_name}.__all__ exports private name {name!r}"
        )
        assert hasattr(module, name), (
            f"{module_name}.__all__ declares {name!r} "
            "but the module does not define it"
        )


class TestParallelReExports:
    def test_runtime_facade_exports_parallel_symbols(self):
        import repro.runtime as runtime
        import repro.runtime.parallel as parallel

        for name in EXPECTED_RUNTIME_PARALLEL_EXPORTS:
            assert name in runtime.__all__, name
            assert getattr(runtime, name) is getattr(parallel, name), name

    def test_parallel_module_all_is_complete(self):
        import repro.runtime.parallel as parallel

        assert set(EXPECTED_RUNTIME_PARALLEL_EXPORTS) == set(
            parallel.__all__
        )

    def test_serve_facade_exports_parallel_symbols(self):
        import repro.runtime.parallel as parallel
        import repro.serve as serve

        for name in EXPECTED_SERVE_PARALLEL_EXPORTS:
            assert name in serve.__all__, name
            assert getattr(serve, name) is getattr(parallel, name), name


class TestTasksReExports:
    def test_tasks_package_surface(self):
        import repro.tasks as tasks

        for name in EXPECTED_TASKS_EXPORTS:
            assert name in tasks.__all__, name

    def test_top_level_reexports_registry(self):
        import repro.tasks as tasks

        for name in EXPECTED_TASKS_EXPORTS:
            if name == "TaskRegistryError":
                continue  # lives on repro.runtime, not the top level
            assert name in repro.__all__, name
            assert getattr(repro, name) is getattr(tasks, name), name

    def test_runtime_exports_task_registry_error(self):
        import repro.runtime as runtime
        from repro.runtime.errors import TaskRegistryError

        assert "TaskRegistryError" in runtime.__all__
        assert runtime.TaskRegistryError is TaskRegistryError
