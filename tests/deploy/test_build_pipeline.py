"""Tests for pipeline construction with an injected extractor."""

from repro.core.base import DetailExtractor
from repro.datasets.base import Dataset
from repro.deploy.scenarios import build_trained_pipeline
from repro.goalspotter.detector import DetectorConfig
from repro.models.training import FineTuneConfig


class StubExtractor(DetailExtractor):
    name = "stub"

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {"Action": "", "Amount": "", "Qualifier": "",
                "Baseline": "", "Deadline": ""}


def test_build_pipeline_with_injected_extractor():
    """Passing an extractor skips extractor training but still trains the
    detector on generated blocks."""
    dataset = Dataset("empty-ok", ("Action",), [])
    fast_detector = DetectorConfig(
        dim=32,
        num_layers=1,
        num_heads=2,
        ffn_dim=64,
        num_merges=150,
        finetune=FineTuneConfig(epochs=1, learning_rate=2e-3),
    )
    pipeline = build_trained_pipeline(
        dataset,
        seed=0,
        detector_blocks=120,
        detector_config=fast_detector,
        extractor=StubExtractor(),
    )
    assert pipeline.extractor.name == "stub"
    probabilities = pipeline.detector.predict_proba(
        ["Reduce waste by 20% by 2030."]
    )
    assert 0.0 <= probabilities[0] <= 1.0
