"""Tests for the deployment scenario runners (small-scale)."""

import numpy as np
import pytest

from repro.core.base import DetailExtractor
from repro.datasets.reports import ReportGenerator, build_deployment_corpus
from repro.deploy.scenarios import (
    records_table,
    run_scenario_1,
    run_scenario_2,
)
from repro.goalspotter.pipeline import GoalSpotter


class StubDetector:
    """Flags blocks whose details-bearing grammar markers are present."""

    class config:
        threshold = 0.5

    def predict_proba(self, texts):
        import re

        scores = []
        for text in texts:
            has_percent = "%" in text or "percent" in text
            has_future_year = bool(re.search(r"20[3-4]\d", text))
            scores.append(0.9 if (has_percent or has_future_year) else 0.1)
        return np.array(scores)


class StubExtractor(DetailExtractor):
    name = "stub"

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {
            "Action": "Reduce", "Amount": "10%", "Qualifier": "waste",
            "Baseline": "", "Deadline": "",
        }


@pytest.fixture(scope="module")
def pipeline():
    return GoalSpotter(StubDetector(), StubExtractor())


@pytest.fixture(scope="module")
def result(pipeline):
    reports = build_deployment_corpus(seed=0, scale=0.01)
    return run_scenario_1(pipeline, reports=reports)


class TestScenario1:
    def test_summary_covers_all_companies(self, result):
        companies = [row[0] for row in result.summary_rows]
        assert companies == [f"C{i}" for i in range(1, 15)]

    def test_totals_consistent(self, result):
        docs, pages, objectives = result.totals
        assert docs == sum(row[1] for row in result.summary_rows)
        assert objectives == len(result.records)

    def test_store_filled(self, result):
        assert result.store.count() == len(result.records)

    def test_top_records_capped(self, result):
        for records in result.top_records.values():
            assert len(records) <= 2

    def test_detected_counts_positive(self, result):
        detected = sum(row[3] for row in result.summary_rows)
        assert detected > 0


class TestScenario2:
    def test_single_report_records(self, pipeline):
        records = run_scenario_2(pipeline, num_pages=10, num_objectives=5, top_k=4)
        assert len(records) <= 4
        scores = [record.score for record in records]
        assert scores == sorted(scores, reverse=True)

    def test_custom_report(self, pipeline):
        report = ReportGenerator(seed=3).generate_report("X", "r", 5, 3)
        records = run_scenario_2(pipeline, report=report)
        assert all(record.company == "X" for record in records)


class TestRecordsTable:
    def test_rows_shape(self, pipeline):
        records = run_scenario_2(pipeline, num_pages=6, num_objectives=4)
        rows = records_table(records)
        for row in rows:
            assert len(row) == 2 + 5  # company, objective, five fields

    def test_long_text_truncated(self, pipeline):
        records = run_scenario_2(pipeline, num_pages=6, num_objectives=4)
        rows = records_table(records, max_text=20)
        assert all(len(row[1]) <= 20 for row in rows)
