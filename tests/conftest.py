"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schema import AnnotatedObjective
from repro.datasets.base import Dataset
from repro.datasets.generator import ObjectiveGenerator


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the tests/golden/ fixtures from the current code "
        "instead of comparing against them (review the diff before "
        "committing!)",
    )


@pytest.fixture(scope="session")
def update_golden(request: pytest.FixtureRequest) -> bool:
    """Whether this run should rewrite golden fixtures (--update-golden)."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def paper_example() -> AnnotatedObjective:
    """The paper's worked example (Figure 3 / Table 3)."""
    return AnnotatedObjective(
        text=(
            "We co-founded The Climate Pledge, a commitment to reach "
            "net-zero carbon by 2040."
        ),
        details={
            "Action": "reach",
            "Amount": "net-zero",
            "Qualifier": "carbon",
            "Baseline": "",
            "Deadline": "2040",
        },
    )


@pytest.fixture
def table1_objectives() -> list[AnnotatedObjective]:
    """The paper's Table 1 rows."""
    return [
        AnnotatedObjective(
            "We co-founded The Climate Pledge, a commitment to reach "
            "net-zero carbon by 2040.",
            {
                "Action": "reach",
                "Amount": "net-zero",
                "Qualifier": "carbon",
                "Deadline": "2040",
            },
        ),
        AnnotatedObjective(
            "Restore 100% of our global water use by 2025.",
            {
                "Action": "Restore",
                "Amount": "100%",
                "Qualifier": "global water use",
                "Deadline": "2025",
            },
        ),
        AnnotatedObjective(
            "Reduce energy consumption by 20% by 2025 (baseline 2017).",
            {
                "Action": "Reduce",
                "Amount": "20%",
                "Qualifier": "energy consumption",
                "Baseline": "2017",
                "Deadline": "2025",
            },
        ),
    ]


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """A small generated dataset shared across integration tests."""
    generator = ObjectiveGenerator(seed=99)
    return Dataset(
        "tiny",
        ("Action", "Amount", "Qualifier", "Baseline", "Deadline"),
        generator.generate_many(80),
    )
