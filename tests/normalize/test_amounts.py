"""Tests for amount normalization."""

import pytest

from repro.normalize.amounts import AmountKind, normalize_amount


class TestNormalizeAmount:
    @pytest.mark.parametrize(
        "raw,kind,value",
        [
            ("20%", AmountKind.PERCENT, 20.0),
            ("8.1%", AmountKind.PERCENT, 8.1),
            ("25 percent", AmountKind.PERCENT, 25.0),
            ("net-zero", AmountKind.NET_ZERO, 0.0),
            ("net zero", AmountKind.NET_ZERO, 0.0),
            ("carbon neutral", AmountKind.NET_ZERO, 0.0),
            ("Zero", AmountKind.NET_ZERO, 0.0),
            ("double", AmountKind.MULTIPLIER, 2.0),
            ("halve", AmountKind.MULTIPLIER, 0.5),
            ("1 million", AmountKind.COUNT, 1e6),
            ("100 million", AmountKind.COUNT, 1e8),
            ("10,000", AmountKind.COUNT, 10_000.0),
            ("250", AmountKind.COUNT, 250.0),
            ("$50 million", AmountKind.MONEY, 5e7),
            ("$1 billion", AmountKind.MONEY, 1e9),
            ("1.5 million tonnes", AmountKind.MASS, 1.5e6),
            ("500,000 tonnes", AmountKind.MASS, 500_000.0),
        ],
    )
    def test_known_forms(self, raw, kind, value):
        normalized = normalize_amount(raw)
        assert normalized.kind == kind
        assert normalized.value == pytest.approx(value)

    def test_empty_is_unknown(self):
        assert normalize_amount("").kind == AmountKind.UNKNOWN
        assert not normalize_amount("").is_quantified

    def test_prose_is_unknown(self):
        assert normalize_amount("a substantial share").kind == (
            AmountKind.UNKNOWN
        )

    def test_raw_preserved(self):
        assert normalize_amount("20%").raw == "20%"

    def test_money_unit(self):
        assert normalize_amount("$10 million").unit == "USD"

    def test_mass_unit(self):
        assert normalize_amount("2 million tonnes").unit == "tonnes"
