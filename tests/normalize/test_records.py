"""Tests for full-record normalization."""

from repro.normalize import (
    ActionDirection,
    AmountKind,
    normalize_details,
)


class TestNormalizeDetails:
    def test_paper_table1_row3(self):
        normalized = normalize_details(
            {
                "Action": "Reduce",
                "Amount": "20%",
                "Qualifier": "energy consumption",
                "Baseline": "2017",
                "Deadline": "2025",
            }
        )
        assert normalized.action == ActionDirection.DECREASE
        assert normalized.amount.kind == AmountKind.PERCENT
        assert normalized.amount.value == 20.0
        assert normalized.baseline_year == 2017
        assert normalized.deadline_year == 2025
        assert normalized.horizon_years == 8
        assert normalized.is_time_bound
        assert normalized.is_quantified

    def test_empty_record(self):
        normalized = normalize_details({})
        assert normalized.action == ActionDirection.UNKNOWN
        assert not normalized.is_quantified
        assert not normalized.is_time_bound
        assert normalized.horizon_years is None

    def test_net_zero_pledge(self):
        normalized = normalize_details(
            {"Action": "reach", "Amount": "net-zero", "Deadline": "2040"}
        )
        assert normalized.action == ActionDirection.ACHIEVE
        assert normalized.amount.kind == AmountKind.NET_ZERO
        assert normalized.deadline_year == 2040

    def test_horizon_requires_both_years(self):
        only_deadline = normalize_details({"Deadline": "2030"})
        assert only_deadline.horizon_years is None
