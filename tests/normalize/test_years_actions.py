"""Tests for year and action normalization."""

import pytest

from repro.normalize.actions import ActionDirection, normalize_action
from repro.normalize.years import normalize_year


class TestNormalizeYear:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("2025", 2025),
            ("the end of 2025", 2025),
            ("By 2023", 2023),
            ("1998", 1998),
            ("", None),
            ("someday", None),
            ("2525", None),  # outside the plausible range
        ],
    )
    def test_cases(self, raw, expected):
        assert normalize_year(raw) == expected


class TestNormalizeAction:
    @pytest.mark.parametrize(
        "raw,direction",
        [
            ("Reduce", ActionDirection.DECREASE),
            ("reducing", ActionDirection.DECREASE),
            ("will install", ActionDirection.TRANSFORM),
            ("will be implemented", ActionDirection.TRANSFORM),
            ("Reached", ActionDirection.ACHIEVE),
            ("Increase", ActionDirection.INCREASE),
            ("empowering", ActionDirection.INCREASE),
            ("Keep", ActionDirection.MAINTAIN),
            ("Uses", ActionDirection.ENGAGE),
            ("", ActionDirection.UNKNOWN),
            ("zorble", ActionDirection.UNKNOWN),
        ],
    )
    def test_cases(self, raw, direction):
        assert normalize_action(raw) == direction
