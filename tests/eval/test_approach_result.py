"""Tests for ApproachResult row formatting."""

from repro.eval.protocol import ApproachResult


def make_result(train_seconds=0.0, inference_seconds=0.0):
    return ApproachResult(
        approach="X",
        dataset="d",
        precision=0.5,
        recall=0.25,
        f1=0.333,
        train_seconds=train_seconds,
        inference_seconds=inference_seconds,
        runs=1,
    )


class TestApproachResult:
    def test_sub_minute_formats_as_less_than_one(self):
        assert make_result(10.0, 5.0).row()[4] == "< 1"

    def test_minutes_rounded(self):
        assert make_result(110.0, 10.0).row()[4] == "2"

    def test_metrics_formatting(self):
        row = make_result().row()
        assert row[1] == "0.50"
        assert row[2] == "0.25"
        assert row[3] == "0.33"

    def test_total_seconds(self):
        assert make_result(60.0, 30.0).total_seconds == 90.0
