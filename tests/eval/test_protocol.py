"""Tests for the evaluation run protocol."""

import pytest

from repro.core.base import DetailExtractor
from repro.core.schema import AnnotatedObjective
from repro.datasets.base import Dataset
from repro.eval.protocol import evaluate_extractor, run_comparison


class OracleExtractor(DetailExtractor):
    """Returns the gold annotations (memorized at fit time by text)."""

    name = "oracle"

    def __init__(self, fields):
        self.fields = fields
        self.memory = {}

    def fit(self, objectives):
        self.memory = {o.text: dict(o.details) for o in objectives}
        return self

    def extract(self, text):
        details = {field: "" for field in self.fields}
        details.update(self.memory.get(text, {}))
        return details


class NullExtractor(DetailExtractor):
    name = "null"

    def __init__(self, fields):
        self.fields = fields

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {field: "" for field in self.fields}


@pytest.fixture
def dataset():
    objectives = [
        AnnotatedObjective(f"Reduce waste by {i}%.", {"Amount": f"{i}%"})
        for i in range(1, 41)
    ]
    return Dataset("toy", ("Amount",), objectives)


class TestEvaluateExtractor:
    def test_null_extractor_zero_metrics(self, dataset):
        from repro.datasets.base import train_test_split

        train, test = train_test_split(dataset, 0.2, seed=0)
        report, fit_s, inf_s = evaluate_extractor(
            NullExtractor(dataset.fields), train, test
        )
        assert report.f1 == 0.0
        assert fit_s >= 0.0 and inf_s >= 0.0


class TestRunComparison:
    def test_null_extractor(self, dataset):
        result = run_comparison(
            lambda seed: NullExtractor(dataset.fields),
            dataset,
            "null",
            runs=2,
        )
        assert result.f1 == 0.0
        assert result.runs == 2
        assert len(result.per_run_f1) == 2

    def test_row_format(self, dataset):
        result = run_comparison(
            lambda seed: NullExtractor(dataset.fields), dataset, "null", runs=1
        )
        row = result.row()
        assert row[0] == "null"
        assert row[4] == "< 1"  # sub-minute run

    def test_each_run_uses_different_split(self, dataset):
        """An extractor that memorizes training data cannot score 1.0 on
        a *held-out* split; if splits were identical across runs the seeds
        would not matter."""
        result = run_comparison(
            lambda seed: OracleExtractor(dataset.fields),
            dataset,
            "oracle",
            runs=3,
        )
        # Oracle never saw the test texts, so F1 must be 0 on every run —
        # proving the split is genuinely held out.
        assert result.f1 == 0.0

    def test_total_seconds(self, dataset):
        result = run_comparison(
            lambda seed: NullExtractor(dataset.fields), dataset, "null", runs=1
        )
        assert result.total_seconds == pytest.approx(
            result.train_seconds + result.inference_seconds
        )
