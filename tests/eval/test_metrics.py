"""Tests for the paper's evaluation measures."""

import pytest
from hypothesis import given, strategies as st

from repro.eval.metrics import (
    FieldCounts,
    evaluate_extractions,
    precision_recall_f1,
    values_match,
)

FIELDS = ("Action", "Amount")


class TestValuesMatch:
    def test_exact(self):
        assert values_match("Reduce", "Reduce")

    def test_case_insensitive(self):
        assert values_match("reduce", "Reduce")

    def test_whitespace_normalized(self):
        assert values_match("energy  consumption", "energy consumption")

    def test_edge_punctuation_ignored(self):
        assert values_match("2040.", "2040")

    def test_empty_gold_never_matches(self):
        assert not values_match("", "")
        assert not values_match("x", "")

    def test_different_values(self):
        assert not values_match("20%", "30%")

    def test_partial_value_is_not_match(self):
        assert not values_match("energy", "energy consumption")


class TestFieldCounts:
    def test_true_positive(self):
        counts = FieldCounts()
        counts.update("20%", "20%")
        assert (counts.tp, counts.fp, counts.fn) == (1, 0, 0)

    def test_wrong_value_is_fp_and_fn(self):
        """Paper semantics: extracting the wrong value both pollutes the
        output (FP) and misses the right one (FN)."""
        counts = FieldCounts()
        counts.update("20%", "30%")
        assert (counts.tp, counts.fp, counts.fn) == (0, 1, 1)

    def test_spurious_extraction_is_fp(self):
        counts = FieldCounts()
        counts.update("20%", "")
        assert (counts.tp, counts.fp, counts.fn) == (0, 1, 0)

    def test_missed_extraction_is_fn(self):
        counts = FieldCounts()
        counts.update("", "20%")
        assert (counts.tp, counts.fp, counts.fn) == (0, 0, 1)

    def test_both_absent_counts_nothing(self):
        counts = FieldCounts()
        counts.update("", "")
        assert (counts.tp, counts.fp, counts.fn) == (0, 0, 0)

    def test_merge(self):
        a = FieldCounts(1, 2, 3)
        a.merge(FieldCounts(10, 20, 30))
        assert (a.tp, a.fp, a.fn) == (11, 22, 33)


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert precision_recall_f1(10, 0, 0) == (1.0, 1.0, 1.0)

    def test_zero_counts(self):
        assert precision_recall_f1(0, 0, 0) == (0.0, 0.0, 0.0)

    def test_hand_computed(self):
        precision, recall, f1 = precision_recall_f1(6, 2, 4)
        assert precision == pytest.approx(0.75)
        assert recall == pytest.approx(0.6)
        assert f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
    def test_bounds(self, tp, fp, fn):
        precision, recall, f1 = precision_recall_f1(tp, fp, fn)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0
        assert 0.0 <= f1 <= 1.0
        assert min(precision, recall) - 1e-9 <= f1 <= max(precision, recall) + 1e-9


class TestEvaluateExtractions:
    def test_hand_counted_report(self):
        predictions = [
            {"Action": "Reduce", "Amount": "20%"},   # both right
            {"Action": "Cut", "Amount": ""},          # action wrong, amount FN
            {"Action": "", "Amount": "5%"},           # spurious amount
        ]
        gold = [
            {"Action": "Reduce", "Amount": "20%"},
            {"Action": "Increase", "Amount": "10%"},
            {"Action": "", "Amount": ""},
        ]
        report = evaluate_extractions(predictions, gold, FIELDS)
        action = report.per_field["Action"]
        amount = report.per_field["Amount"]
        assert (action.tp, action.fp, action.fn) == (1, 1, 1)
        assert (amount.tp, amount.fp, amount.fn) == (1, 1, 1)
        assert report.precision == pytest.approx(2 / 4)
        assert report.recall == pytest.approx(2 / 4)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_extractions([{}], [{}, {}], FIELDS)

    def test_field_f1_accessor(self):
        report = evaluate_extractions(
            [{"Action": "a"}], [{"Action": "a"}], FIELDS
        )
        assert report.field_f1("Action") == 1.0
        assert report.field_f1("Amount") == 0.0

    def test_summary_keys(self):
        report = evaluate_extractions([], [], FIELDS)
        assert set(report.summary()) == {"precision", "recall", "f1"}

    def test_fields_outside_schema_ignored(self):
        report = evaluate_extractions(
            [{"Other": "x", "Action": "a"}], [{"Action": "a"}], FIELDS
        )
        assert report.precision == 1.0
