"""Tests for table rendering."""

import pytest

from repro.eval.tables import render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["Approach", "F1"],
            [["CRF", "0.61"], ["GoalSpotter", "0.85"]],
        )
        lines = text.splitlines()
        assert "Approach" in lines[0]
        assert "-" in lines[1]
        assert "GoalSpotter" in lines[3]

    def test_title(self):
        text = render_table(["a"], [["b"]], title="Table 4")
        assert text.startswith("Table 4")

    def test_alignment(self):
        text = render_table(["col"], [["longer-value"], ["x"]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3].rstrip()) or len(
            lines[2].rstrip()
        ) >= len("longer-value")

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text
