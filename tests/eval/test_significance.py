"""Tests for the paired bootstrap significance test."""

import pytest

from repro.eval.significance import BootstrapResult, paired_bootstrap

FIELDS = ("Amount",)


def _gold(n):
    return [{"Amount": f"{i}%"} for i in range(n)]


def _perfect(n):
    return [{"Amount": f"{i}%"} for i in range(n)]


def _noisy(n, wrong_every=3):
    return [
        {"Amount": f"{i}%" if i % wrong_every else "999%"}
        for i in range(n)
    ]


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self):
        gold = _gold(60)
        result = paired_bootstrap(
            _perfect(60), _noisy(60), gold, FIELDS, samples=200
        )
        assert result.delta > 0
        assert result.p_value < 0.05
        assert result.significant()

    def test_identical_systems_not_significant(self):
        gold = _gold(40)
        predictions = _noisy(40)
        result = paired_bootstrap(
            predictions, predictions, gold, FIELDS, samples=100
        )
        assert result.delta == pytest.approx(0.0)
        assert not result.significant()
        assert result.p_value == 1.0  # ties count for B in the one-sided test

    def test_f1_values_reported(self):
        gold = _gold(30)
        result = paired_bootstrap(
            _perfect(30), _noisy(30), gold, FIELDS, samples=50
        )
        assert result.f1_a == pytest.approx(1.0)
        assert result.f1_b < 1.0

    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap([{}], [{}, {}], [{}], FIELDS)

    def test_empty_gold_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap([], [], [], FIELDS)

    def test_deterministic_given_seed(self):
        gold = _gold(30)
        a = paired_bootstrap(
            _perfect(30), _noisy(30), gold, FIELDS, samples=50, seed=3
        )
        b = paired_bootstrap(
            _perfect(30), _noisy(30), gold, FIELDS, samples=50, seed=3
        )
        assert a == b

    def test_result_dataclass(self):
        result = BootstrapResult(0.9, 0.5, 0.4, 0.01, 100)
        assert result.significant()
        assert not BootstrapResult(0.5, 0.9, -0.4, 0.99, 100).significant()
