"""Tests for ASCII figure rendering."""

import pytest

from repro.eval.figures import render_bars


class TestRenderBars:
    def test_basic_chart(self):
        chart = render_bars({"Action": 0.9, "Baseline": 0.45}, maximum=1.0)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 36  # 0.9 * 40
        assert lines[1].count("#") == 18

    def test_title(self):
        chart = render_bars({"a": 1.0}, title="Figure 4")
        assert chart.startswith("Figure 4")

    def test_values_printed(self):
        chart = render_bars({"a": 0.57}, maximum=1.0)
        assert "0.57" in chart

    def test_auto_scale(self):
        chart = render_bars({"big": 200.0, "small": 100.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            render_bars({"x": -1.0})

    def test_empty(self):
        assert render_bars({}) == ""
        assert render_bars({}, title="t") == "t"

    def test_overflow_clipped(self):
        chart = render_bars({"x": 5.0}, maximum=1.0, width=10)
        assert chart.count("#") == 10
