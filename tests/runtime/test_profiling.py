"""Tests for the runtime perf counters and run statistics."""

import json

from repro.runtime.profiling import PerfCounters, RunStats


class TestPerfCounters:
    def test_add_and_get(self):
        counters = PerfCounters()
        counters.add("sequences", 3)
        counters.add("sequences", 2)
        assert counters.get("sequences") == 5

    def test_get_default(self):
        assert PerfCounters().get("missing", default=-1.0) == -1.0

    def test_timer_accumulates(self):
        counters = PerfCounters()
        with counters.timer("work_seconds"):
            pass
        first = counters.get("work_seconds")
        with counters.timer("work_seconds"):
            pass
        assert counters.get("work_seconds") >= first >= 0.0

    def test_timer_records_on_exception(self):
        counters = PerfCounters()
        try:
            with counters.timer("work_seconds"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert counters.get("work_seconds") >= 0.0
        assert "work_seconds" in counters.as_dict()


class TestRunStats:
    def test_derived_ratios(self):
        stats = RunStats(
            wall_seconds=2.0,
            sequences=4,
            microbatches=2,
            total_tokens=100,
            padded_tokens=125,
            bpe_cache_hits=30,
            bpe_cache_misses=10,
        )
        assert stats.tokens_per_second == 50.0
        assert stats.padding_waste == 1.0 - 100 / 125
        assert stats.bpe_cache_hit_rate == 0.75

    def test_zero_denominators_are_safe(self):
        stats = RunStats()
        assert stats.tokens_per_second == 0.0
        assert stats.padding_waste == 0.0
        assert stats.bpe_cache_hit_rate == 0.0

    def test_as_dict_is_json_serializable(self):
        stats = RunStats(
            wall_seconds=1.0,
            total_tokens=10,
            padded_tokens=20,
            timings={"model_seconds": 0.5},
            extra={"normalize_cache_hits": 2.0},
        )
        payload = json.loads(json.dumps(stats.as_dict()))
        assert payload["tokens_per_second"] == 10.0
        assert payload["padding_waste"] == 0.5
        assert payload["timings"]["model_seconds"] == 0.5
        assert payload["extra"]["normalize_cache_hits"] == 2.0

    def test_from_counters_collects_timings(self):
        counters = PerfCounters()
        counters.add("sequences", 3)
        counters.add("microbatches", 2)
        counters.add("total_tokens", 30)
        counters.add("padded_tokens", 40)
        counters.add("model_seconds", 0.25)
        stats = RunStats.from_counters(
            counters,
            wall_seconds=1.0,
            bpe_cache_hits=5,
            bpe_cache_misses=5,
            extra={"normalize_cache_hits": 1.0},
        )
        assert stats.sequences == 3
        assert stats.microbatches == 2
        assert stats.total_tokens == 30
        assert stats.padded_tokens == 40
        assert stats.timings == {"model_seconds": 0.25}
        assert stats.bpe_cache_hit_rate == 0.5
        assert stats.extra["normalize_cache_hits"] == 1.0
