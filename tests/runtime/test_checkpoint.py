"""Durable-training tests: bitwise resume, corruption rollback, chaos.

The headline contract of :mod:`repro.runtime.checkpoint`:

* kill a training run at *any* optimizer-step boundary, resume from the
  latest good checkpoint, and the final weights/optimizer/history are
  bit-for-bit identical to the never-interrupted run — for
  token-classifier fine-tuning, MLM pre-training (static and dynamic
  masking), and distillation;
* a single flipped or truncated byte in any artifact is detected at load
  (typed ``ArtifactError``) and resume rolls back to the previous
  last-good checkpoint instead of loading garbage;
* a crash storm (seeded fault injector, PR-2 conventions) never prevents
  the run from eventually completing with the uninterrupted result.
"""

import json
import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.distill import distill_encoder
from repro.models.mlm import pretrain_mlm
from repro.models.token_classifier import TokenClassifier
from repro.models.training import (
    FineTuneConfig,
    fit_sequence_classifier,
    fit_token_classifier,
)
from repro.models.zoo import ModelSpec, PretrainSpec
from repro.nn.encoder import EncoderConfig
from repro.runtime.checkpoint import (
    MANIFEST_NAME,
    CheckpointManager,
    config_fingerprint,
    verify_manifest,
)
from repro.runtime.errors import ArtifactError, ModelError
from repro.runtime.resilience import FaultInjector, FaultSpec
from repro.text.vocab import Vocabulary

pytestmark = pytest.mark.checkpoint

# -- tiny-but-real fixtures --------------------------------------------------
# dropout > 0 on purpose: the resume contract must cover the dropout
# generators' draws, which is the hard part of bitwise equivalence.

ENCODER = EncoderConfig(
    vocab_size=40,
    dim=16,
    num_layers=1,
    num_heads=2,
    ffn_dim=32,
    max_len=12,
    dropout=0.1,
)
FINETUNE = FineTuneConfig(epochs=3, batch_size=4, seed=13)
NUM_STEPS = 9  # 3 epochs x ceil(10 / 4) steps


def build_classifier(seed: int = 7) -> TokenClassifier:
    return TokenClassifier(ENCODER, num_labels=3, rng=np.random.default_rng(seed))


def make_dataset(num: int = 10) -> tuple[list[list[int]], list[list[int]]]:
    rng = np.random.default_rng(0)
    sequences = [
        [int(x) for x in rng.integers(1, 40, size=int(rng.integers(3, 12)))]
        for __ in range(num)
    ]
    labels = [[x % 3 for x in seq] for seq in sequences]
    return sequences, labels


def make_vocab() -> Vocabulary:
    return Vocabulary([f"tok{i}" for i in range(20)])


def make_spec(dynamic: bool, epochs: int = 2) -> ModelSpec:
    return ModelSpec(
        name="tiny",
        family="roberta" if dynamic else "bert",
        distilled=False,
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        dropout=0.1,
        pretrain=PretrainSpec(
            dynamic_masking=dynamic, epochs=epochs, mask_prob=0.3
        ),
    )


def mlm_sequences(vocab: Vocabulary, num: int = 8) -> list[list[int]]:
    rng = np.random.default_rng(0)
    return [
        [int(x) for x in rng.integers(5, len(vocab), size=int(rng.integers(3, 10)))]
        for __ in range(num)
    ]


def assert_states_equal(left: dict, right: dict, context: str = "") -> None:
    assert sorted(left) == sorted(right), context
    for name in left:
        a, b = np.asarray(left[name]), np.asarray(right[name])
        assert a.dtype == b.dtype and a.shape == b.shape, (context, name)
        # float.hex-grade equality: compare raw bytes, not approximate values
        assert a.tobytes() == b.tobytes(), (context, name)


def kill_then_resume_classifier(tmp_path, kill_at: int, every: int = 1):
    """Train with a crash injected at ``kill_at``; resume to completion."""
    sequences, labels = make_dataset()
    crash_dir = tmp_path / f"ckpt-{kill_at}-{every}"
    injector = FaultInjector(
        [FaultSpec(stage="train_step", error="model", nth_calls=(kill_at,))],
        seed=1,
    )
    interrupted = build_classifier()
    manager = CheckpointManager(crash_dir, every=every, fault_injector=injector)
    with pytest.raises(ModelError):
        fit_token_classifier(
            interrupted, sequences, labels, FINETUNE, checkpoint=manager
        )
    resumed_model = build_classifier()
    resumed_manager = CheckpointManager(crash_dir, every=every)
    history = fit_token_classifier(
        resumed_model, sequences, labels, FINETUNE, checkpoint=resumed_manager
    )
    return resumed_model, history, resumed_manager


# -- bitwise resume: fine-tuning ---------------------------------------------


class TestBitwiseResumeFineTune:
    @pytest.fixture(scope="class")
    def uninterrupted(self):
        sequences, labels = make_dataset()
        model = build_classifier()
        history = fit_token_classifier(model, sequences, labels, FINETUNE)
        return model.state_dict(), history

    def test_checkpointing_never_changes_a_fresh_run(
        self, tmp_path, uninterrupted
    ):
        baseline_state, baseline_history = uninterrupted
        sequences, labels = make_dataset()
        model = build_classifier()
        manager = CheckpointManager(tmp_path / "ckpt", every=1)
        history = fit_token_classifier(
            model, sequences, labels, FINETUNE, checkpoint=manager
        )
        assert history == baseline_history
        assert_states_equal(model.state_dict(), baseline_state)
        assert manager.saves == NUM_STEPS + 1  # every step + the final marker

    def test_kill_at_every_step_boundary_resumes_bitwise(
        self, tmp_path, uninterrupted
    ):
        baseline_state, baseline_history = uninterrupted
        for kill_at in range(1, NUM_STEPS + 1):
            model, history, manager = kill_then_resume_classifier(
                tmp_path, kill_at
            )
            assert history == baseline_history, kill_at
            assert_states_equal(
                model.state_dict(), baseline_state, f"kill_at={kill_at}"
            )
            if kill_at > 1:
                assert manager.resumed_from == kill_at - 1

    @settings(max_examples=12, deadline=None)
    @given(
        kill_at=st.integers(min_value=1, max_value=NUM_STEPS),
        every=st.integers(min_value=1, max_value=4),
    )
    def test_resume_equals_uninterrupted_property(
        self, tmp_path_factory, uninterrupted, kill_at, every
    ):
        baseline_state, baseline_history = uninterrupted
        tmp_path = tmp_path_factory.mktemp("prop")
        model, history, __ = kill_then_resume_classifier(
            tmp_path, kill_at, every=every
        )
        assert history == baseline_history
        assert_states_equal(
            model.state_dict(),
            baseline_state,
            f"kill_at={kill_at} every={every}",
        )

    def test_resuming_a_completed_run_is_a_noop(self, tmp_path, uninterrupted):
        baseline_state, baseline_history = uninterrupted
        sequences, labels = make_dataset()
        first = build_classifier()
        fit_token_classifier(
            first,
            sequences,
            labels,
            FINETUNE,
            checkpoint=CheckpointManager(tmp_path / "done", every=1),
        )
        again = build_classifier()
        manager = CheckpointManager(tmp_path / "done", every=1)
        history = fit_token_classifier(
            again, sequences, labels, FINETUNE, checkpoint=manager
        )
        assert history == baseline_history
        assert_states_equal(again.state_dict(), baseline_state)
        assert manager.saves == 0  # nothing retrained, nothing rewritten

    def test_config_change_refuses_to_resume(self, tmp_path):
        sequences, labels = make_dataset()
        with pytest.raises(ModelError):
            fit_token_classifier(
                build_classifier(),
                sequences,
                labels,
                FINETUNE,
                checkpoint=CheckpointManager(
                    tmp_path / "cfg",
                    every=1,
                    fault_injector=FaultInjector(
                        [
                            FaultSpec(
                                stage="train_step",
                                error="model",
                                nth_calls=(4,),
                            )
                        ],
                        seed=1,
                    ),
                ),
            )
        different = FineTuneConfig(epochs=3, batch_size=4, seed=14)
        with pytest.raises(ArtifactError):
            fit_token_classifier(
                build_classifier(),
                sequences,
                labels,
                different,
                checkpoint=CheckpointManager(tmp_path / "cfg", every=1),
            )

    def test_sequence_classifier_resumes_bitwise(self, tmp_path):
        from repro.models.sequence_classifier import SequenceClassifier

        rng = np.random.default_rng(0)
        sequences = [
            [int(x) for x in rng.integers(1, 40, size=6)] for __ in range(8)
        ]
        labels = [i % 2 for i in range(8)]
        config = FineTuneConfig(epochs=2, batch_size=4, seed=13)

        def build():
            return SequenceClassifier(
                ENCODER, num_classes=2, rng=np.random.default_rng(3)
            )

        baseline = build()
        base_history = fit_sequence_classifier(
            baseline, sequences, labels, config
        )
        injector = FaultInjector(
            [FaultSpec(stage="train_step", error="model", nth_calls=(3,))],
            seed=1,
        )
        with pytest.raises(ModelError):
            fit_sequence_classifier(
                build(),
                sequences,
                labels,
                config,
                checkpoint=CheckpointManager(
                    tmp_path / "seq", every=1, fault_injector=injector
                ),
            )
        resumed = build()
        history = fit_sequence_classifier(
            resumed,
            sequences,
            labels,
            config,
            checkpoint=CheckpointManager(tmp_path / "seq", every=1),
        )
        assert history == base_history
        assert_states_equal(resumed.state_dict(), baseline.state_dict())


# -- bitwise resume: MLM pre-training and distillation -----------------------


class TestBitwiseResumePretrain:
    @pytest.mark.parametrize("dynamic", [True, False])
    def test_mlm_kill_and_resume_bitwise(self, tmp_path, dynamic):
        vocab = make_vocab()
        sequences = mlm_sequences(vocab)
        spec = make_spec(dynamic)
        baseline = pretrain_mlm(
            spec, sequences, vocab, np.random.default_rng(5),
            max_len=12, batch_size=4,
        )
        total_steps = 2 * 2  # 2 epochs x 2 batches
        for kill_at in range(1, total_steps + 1):
            crash_dir = tmp_path / f"mlm-{dynamic}-{kill_at}"
            injector = FaultInjector(
                [
                    FaultSpec(
                        stage="train_step",
                        error="model",
                        nth_calls=(kill_at,),
                    )
                ],
                seed=1,
            )
            with pytest.raises(ModelError):
                pretrain_mlm(
                    spec, sequences, vocab, np.random.default_rng(5),
                    max_len=12, batch_size=4,
                    checkpoint=CheckpointManager(
                        crash_dir, every=1, fault_injector=injector
                    ),
                )
            resumed = pretrain_mlm(
                spec, sequences, vocab, np.random.default_rng(5),
                max_len=12, batch_size=4,
                checkpoint=CheckpointManager(crash_dir, every=1),
            )
            assert_states_equal(
                resumed.state_dict(),
                baseline.state_dict(),
                f"dynamic={dynamic} kill_at={kill_at}",
            )

    def test_distill_kill_and_resume_bitwise(self, tmp_path):
        vocab = make_vocab()
        sequences = mlm_sequences(vocab)
        teacher = pretrain_mlm(
            make_spec(True), sequences, vocab, np.random.default_rng(5),
            max_len=12, batch_size=4,
        )
        student_spec = make_spec(True)
        baseline = distill_encoder(
            teacher, student_spec, sequences, vocab,
            np.random.default_rng(9), max_len=12, batch_size=4,
        )
        for kill_at in range(1, 5):
            crash_dir = tmp_path / f"distill-{kill_at}"
            injector = FaultInjector(
                [
                    FaultSpec(
                        stage="train_step",
                        error="model",
                        nth_calls=(kill_at,),
                    )
                ],
                seed=1,
            )
            with pytest.raises(ModelError):
                distill_encoder(
                    teacher, student_spec, sequences, vocab,
                    np.random.default_rng(9), max_len=12, batch_size=4,
                    checkpoint=CheckpointManager(
                        crash_dir, every=1, fault_injector=injector
                    ),
                )
            resumed = distill_encoder(
                teacher, student_spec, sequences, vocab,
                np.random.default_rng(9), max_len=12, batch_size=4,
                checkpoint=CheckpointManager(crash_dir, every=1),
            )
            assert_states_equal(
                resumed.state_dict(),
                baseline.state_dict(),
                f"kill_at={kill_at}",
            )

    def test_mlm_counters_report_progress_and_resume(self, tmp_path):
        from repro.runtime.profiling import PerfCounters

        vocab = make_vocab()
        sequences = mlm_sequences(vocab)
        spec = make_spec(True)
        counters = PerfCounters()
        pretrain_mlm(
            spec, sequences, vocab, np.random.default_rng(5),
            max_len=12, batch_size=4, counters=counters,
        )
        assert counters.get("train_steps") == 4
        assert counters.get("train_epochs") == 2
        assert counters.get("train_loss_total") > 0
        assert counters.get("resumed_from_step") == 0

        injector = FaultInjector(
            [FaultSpec(stage="train_step", error="model", nth_calls=(3,))],
            seed=1,
        )
        with pytest.raises(ModelError):
            pretrain_mlm(
                spec, sequences, vocab, np.random.default_rng(5),
                max_len=12, batch_size=4,
                checkpoint=CheckpointManager(
                    tmp_path / "ctr", every=1, fault_injector=injector
                ),
            )
        resumed_counters = PerfCounters()
        pretrain_mlm(
            spec, sequences, vocab, np.random.default_rng(5),
            max_len=12, batch_size=4,
            checkpoint=CheckpointManager(tmp_path / "ctr", every=1),
            counters=resumed_counters,
        )
        assert resumed_counters.get("resumed_from_step") == 2
        assert resumed_counters.get("train_steps") == 2  # only the remainder


# -- corruption detection and last-good rollback -----------------------------


def flip_one_byte(path) -> None:
    data = bytearray(path.read_bytes())
    assert data, f"cannot corrupt empty file {path}"
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCorruptionRollback:
    @pytest.fixture()
    def two_checkpoints(self, tmp_path):
        """A checkpoint dir holding steps 4 and 5 plus trained baseline."""
        sequences, labels = make_dataset()
        injector = FaultInjector(
            [FaultSpec(stage="train_step", error="model", nth_calls=(6,))],
            seed=1,
        )
        model = build_classifier()
        manager = CheckpointManager(
            tmp_path / "ckpt", every=1, keep=2, fault_injector=injector
        )
        with pytest.raises(ModelError):
            fit_token_classifier(
                model, sequences, labels, FINETUNE, checkpoint=manager
            )
        directory = tmp_path / "ckpt"
        assert sorted(p.name for p in directory.glob("step-*")) == [
            "step-00000004",
            "step-00000005",
        ]
        return directory, sequences, labels

    @pytest.mark.parametrize(
        "artifact",
        ["model.npz", "optimizer.npz", "losses.npz", "state.json"],
    )
    def test_single_byte_flip_detected_and_rolled_back(
        self, two_checkpoints, artifact
    ):
        directory, __, __labels = two_checkpoints
        flip_one_byte(directory / "step-00000005" / artifact)
        manager = CheckpointManager(directory, every=1)
        with pytest.raises(ArtifactError) as excinfo:
            manager.load(directory / "step-00000005")
        assert excinfo.value.path is not None
        state = manager.load_latest()
        assert state is not None and state.step == 4
        assert manager.rolled_back

    def test_truncated_artifact_detected_and_rolled_back(
        self, two_checkpoints
    ):
        directory, __, __labels = two_checkpoints
        target = directory / "step-00000005" / "model.npz"
        target.write_bytes(target.read_bytes()[:-7])
        manager = CheckpointManager(directory, every=1)
        state = manager.load_latest()
        assert state is not None and state.step == 4
        assert manager.rolled_back

    def test_corrupt_manifest_rolls_back(self, two_checkpoints):
        directory, __, __labels = two_checkpoints
        (directory / "step-00000005" / MANIFEST_NAME).write_text("{not json")
        manager = CheckpointManager(directory, every=1)
        state = manager.load_latest()
        assert state is not None and state.step == 4
        assert manager.rolled_back

    def test_corrupt_pointer_still_loads_newest(self, two_checkpoints):
        directory, __, __labels = two_checkpoints
        (directory / "LATEST").write_text("garbage")
        manager = CheckpointManager(directory, every=1)
        state = manager.load_latest()
        assert state is not None and state.step == 5
        assert not manager.rolled_back

    def test_rollback_resume_still_matches_uninterrupted(
        self, two_checkpoints
    ):
        directory, sequences, labels = two_checkpoints
        baseline = build_classifier()
        baseline_history = fit_token_classifier(
            baseline, sequences, labels, FINETUNE
        )
        flip_one_byte(directory / "step-00000005" / "model.npz")
        resumed = build_classifier()
        manager = CheckpointManager(directory, every=1)
        history = fit_token_classifier(
            resumed, sequences, labels, FINETUNE, checkpoint=manager
        )
        assert manager.resumed_from == 4
        assert manager.rolled_back
        assert history == baseline_history
        assert_states_equal(resumed.state_dict(), baseline.state_dict())

    def test_all_checkpoints_corrupt_raises_first_error(
        self, two_checkpoints
    ):
        directory, __, __labels = two_checkpoints
        for step_dir in directory.glob("step-*"):
            flip_one_byte(step_dir / "model.npz")
        with pytest.raises(ArtifactError):
            CheckpointManager(directory, every=1).load_latest()

    def test_empty_directory_resumes_fresh(self, tmp_path):
        manager = CheckpointManager(tmp_path / "nothing", every=1)
        assert manager.load_latest() is None
        assert manager.resumed_from is None

    def test_resume_false_ignores_checkpoints(self, two_checkpoints):
        directory, __, __labels = two_checkpoints
        manager = CheckpointManager(directory, every=1, resume=False)
        assert manager.load_latest() is None

    def test_retention_prunes_old_checkpoints(self, tmp_path):
        sequences, labels = make_dataset()
        manager = CheckpointManager(tmp_path / "keep", every=1, keep=2)
        fit_token_classifier(
            build_classifier(), sequences, labels, FINETUNE,
            checkpoint=manager,
        )
        names = sorted(p.name for p in (tmp_path / "keep").glob("step-*"))
        assert len(names) == 2
        assert names[-1] == f"step-{NUM_STEPS:08d}"


# -- crash window in the save path -------------------------------------------


class TestAtomicPublish:
    def test_crash_before_commit_leaves_previous_checkpoint_good(
        self, tmp_path
    ):
        sequences, labels = make_dataset()
        injector = FaultInjector(
            [
                FaultSpec(
                    stage="checkpoint_commit",
                    error="model",
                    nth_calls=(3,),
                )
            ],
            seed=1,
        )
        manager = CheckpointManager(
            tmp_path / "ckpt", every=1, fault_injector=injector
        )
        with pytest.raises(ModelError):
            fit_token_classifier(
                build_classifier(), sequences, labels, FINETUNE,
                checkpoint=manager,
            )
        reader = CheckpointManager(tmp_path / "ckpt", every=1)
        state = reader.load_latest()
        assert state is not None and state.step == 2
        assert not reader.rolled_back

    def test_crash_at_checkpoint_entry_keeps_previous(self, tmp_path):
        sequences, labels = make_dataset()
        injector = FaultInjector(
            [FaultSpec(stage="checkpoint", error="model", nth_calls=(4,))],
            seed=1,
        )
        manager = CheckpointManager(
            tmp_path / "ckpt", every=1, fault_injector=injector
        )
        with pytest.raises(ModelError):
            fit_token_classifier(
                build_classifier(), sequences, labels, FINETUNE,
                checkpoint=manager,
            )
        state = CheckpointManager(tmp_path / "ckpt", every=1).load_latest()
        assert state is not None and state.step == 3


# -- chaos: crash storm across all durable sites -----------------------------


@pytest.mark.chaos
class TestCrashStorm:
    def test_storm_of_crashes_converges_to_uninterrupted_result(
        self, tmp_path
    ):
        """PR-2 seeding conventions: one storm per seed, rate-based faults
        at every durable-training site; keep resuming until the run
        completes, then demand the uninterrupted result, bitwise."""
        sequences, labels = make_dataset()
        baseline = build_classifier()
        baseline_history = fit_token_classifier(
            baseline, sequences, labels, FINETUNE
        )
        for seed in range(3):
            specs = [
                FaultSpec(stage="train_step", error="model", rate=0.12),
                FaultSpec(stage="checkpoint", error="model", rate=0.06),
                FaultSpec(stage="checkpoint_commit", error="model", rate=0.06),
            ]
            crash_dir = tmp_path / f"storm-{seed}"
            attempts = 0
            while True:
                attempts += 1
                assert attempts < 60, "storm never converged"
                model = build_classifier()
                manager = CheckpointManager(
                    crash_dir,
                    every=1,
                    fault_injector=FaultInjector(specs, seed=seed + attempts),
                )
                try:
                    history = fit_token_classifier(
                        model, sequences, labels, FINETUNE,
                        checkpoint=manager,
                    )
                except ModelError:
                    continue
                break
            assert history == baseline_history, f"seed={seed}"
            assert_states_equal(
                model.state_dict(), baseline.state_dict(), f"seed={seed}"
            )


# -- manifest + fingerprint units --------------------------------------------


class TestManifestUnits:
    def test_fingerprint_is_order_insensitive_and_value_sensitive(self):
        a = config_fingerprint(alpha=1, beta="x")
        b = config_fingerprint(beta="x", alpha=1)
        c = config_fingerprint(alpha=2, beta="x")
        assert a == b
        assert a != c

    def test_verify_manifest_reports_expected_and_actual_digest(
        self, tmp_path
    ):
        from repro.runtime.checkpoint import write_manifest

        (tmp_path / "blob.bin").write_bytes(b"payload")
        manifest = write_manifest(tmp_path, ["blob.bin"], kind="test")
        assert verify_manifest(tmp_path, kind="test") == manifest
        flip_one_byte(tmp_path / "blob.bin")
        with pytest.raises(ArtifactError) as excinfo:
            verify_manifest(tmp_path, kind="test")
        error = excinfo.value
        assert error.expected != error.actual
        assert error.expected == manifest["artifacts"]["blob.bin"]["sha256"]
        assert json.loads(
            json.dumps(error.context())
        )["path"].endswith("blob.bin")

    def test_kind_mismatch_is_detected(self, tmp_path):
        from repro.runtime.checkpoint import write_manifest

        (tmp_path / "blob.bin").write_bytes(b"payload")
        write_manifest(tmp_path, ["blob.bin"], kind="test")
        with pytest.raises(ArtifactError):
            verify_manifest(tmp_path, kind="other")

    def test_missing_manifest_optional_vs_required(self, tmp_path):
        assert verify_manifest(tmp_path, required=False) is None
        with pytest.raises(ArtifactError):
            verify_manifest(tmp_path, required=True)

    def test_stale_tmp_dirs_are_pruned_on_save(self, tmp_path):
        sequences, labels = make_dataset()
        directory = tmp_path / "ckpt"
        directory.mkdir()
        stale = directory / "step-00000001.tmp"
        stale.mkdir()
        (stale / "junk").write_text("x")
        fit_token_classifier(
            build_classifier(), sequences, labels, FINETUNE,
            checkpoint=CheckpointManager(directory, every=1),
        )
        assert not stale.exists()
        shutil.rmtree(directory)


# -- graceful drain (ISSUE 10): SIGINT-era commit-then-stop -------------------


@pytest.mark.durable
class TestGracefulDrain:
    """``request_drain`` commits at the next step and raises, off-cadence."""

    def test_drain_commits_off_cadence_and_resume_is_bitwise(self, tmp_path):
        from repro.runtime.errors import RunInterrupted

        sequences, labels = make_dataset()
        baseline = build_classifier()
        fit_token_classifier(baseline, sequences, labels, FINETUNE)

        drained = build_classifier()
        manager = CheckpointManager(tmp_path / "ckpt", every=4)
        original = manager.maybe_save

        def maybe_save(model, optimizer, loop_rng, *, step, **kwargs):
            if step == 5:  # a signal between cadence steps 4 and 8
                manager.request_drain()
            return original(model, optimizer, loop_rng, step=step, **kwargs)

        manager.maybe_save = maybe_save
        with pytest.raises(RunInterrupted, match="--resume"):
            fit_token_classifier(
                drained, sequences, labels, FINETUNE, checkpoint=manager
            )
        assert manager.drained_at_step == 5  # committed despite every=4

        resumed = build_classifier()
        resumed_manager = CheckpointManager(tmp_path / "ckpt", every=4)
        fit_token_classifier(
            resumed, sequences, labels, FINETUNE, checkpoint=resumed_manager
        )
        assert resumed_manager.resumed_from == 5
        assert_states_equal(
            resumed.state_dict(), baseline.state_dict(), "drain-resume"
        )

    def test_drain_at_the_final_step_does_not_interrupt(self, tmp_path):
        sequences, labels = make_dataset()
        manager = CheckpointManager(tmp_path / "ckpt", every=1)
        # A signal landing after the last step: the done checkpoint wins
        # and training finishes normally instead of raising.
        manager.request_drain()
        original = manager.maybe_save

        def maybe_save(model, optimizer, loop_rng, *, step, **kwargs):
            if not kwargs.get("done"):
                manager._drain_requested = False  # only the final call drains
            else:
                manager.request_drain()
            return original(model, optimizer, loop_rng, step=step, **kwargs)

        manager.maybe_save = maybe_save
        fit_token_classifier(
            build_classifier(), sequences, labels, FINETUNE, checkpoint=manager
        )
        assert manager.drained_at_step is None
