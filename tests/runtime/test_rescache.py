"""Unit tests for the content-addressed result cache."""

import pickle
import threading

import numpy as np
import pytest

from repro.runtime import rescache
from repro.runtime.profiling import PerfCounters
from repro.runtime.rescache import CacheStats, ResultCache, result_key

pytestmark = pytest.mark.cache


class TestResultKey:
    def test_deterministic(self):
        assert result_key([1, 2, 3], "fp") == result_key([1, 2, 3], "fp")

    def test_single_id_flip_changes_key(self):
        base = result_key([1, 2, 3], "fp")
        assert result_key([1, 2, 4], "fp") != base
        assert result_key([1, 2], "fp") != base
        assert result_key([3, 2, 1], "fp") != base

    def test_fingerprint_pins_weights(self):
        """A hot-swapped checkpoint must never share cache entries."""
        assert result_key([1, 2], "sha-a") != result_key([1, 2], "sha-b")

    def test_variant_separates_numeric_paths(self):
        fp32 = result_key([1, 2], "fp", variant="")
        int8 = result_key([1, 2], "fp", variant="int8")
        assert fp32 != int8

    def test_text_and_ids_never_collide(self):
        # The payload is prefixed by kind, so a text that happens to
        # decode to the same bytes as an id sequence keys differently.
        ids = np.asarray([101], dtype=np.int64).tobytes().decode("latin-1")
        assert result_key([101], "fp") != result_key(ids, "fp")

    def test_accepts_generators(self):
        assert result_key(iter([5, 6]), "fp") == result_key([5, 6], "fp")


class TestCacheStats:
    def test_snapshot_and_hit_rate(self):
        stats = CacheStats()
        stats.hits, stats.misses = 3, 1
        snap = stats.snapshot()
        assert snap["hits"] == 3
        assert snap["misses"] == 1
        assert snap["hit_rate"] == pytest.approx(0.75)
        assert stats.lookups == 4

    def test_zero_lookups_rate(self):
        assert CacheStats().hit_rate == 0.0


class TestResultCache:
    def test_get_put_roundtrip(self):
        cache = ResultCache(capacity=4)
        key = result_key([1, 2], "fp")
        assert cache.get(key) is None
        cache.put(key, np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(
            cache.get(key), np.arange(6.0).reshape(2, 3)
        )
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_put_copies_and_freezes_arrays(self):
        cache = ResultCache(capacity=2)
        value = np.ones(3)
        cache.put("k", value)
        value[:] = 7.0  # producer mutation must not leak into the cache
        np.testing.assert_array_equal(cache.get("k"), np.ones(3))
        with pytest.raises(ValueError):
            cache.get("k")[0] = 0.0

    def test_capacity_is_enforced(self):
        cache = ResultCache(capacity=3)
        for index in range(10):
            cache.put(f"k{index}", index)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_put_returns_eviction_count(self):
        cache = ResultCache(capacity=2)
        assert cache.put("a", 1) == 0
        assert cache.put("b", 2) == 0
        assert cache.put("c", 3) == 1

    def test_reinsert_overwrites_without_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 9) == 0
        assert cache.get("a") == 9
        assert len(cache) == 2

    def test_eviction_is_seeded_deterministic(self):
        """Same seed + same operation sequence -> same survivors."""
        def run(seed):
            cache = ResultCache(capacity=8, seed=seed)
            for index in range(50):
                cache.put(f"k{index}", index)
            return set(cache._entries)

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_peek_does_not_count(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        assert cache.stats.lookups == 0

    def test_clear_keeps_stats(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_pickle_resets_entries_and_stats(self):
        """Broadcast copies start empty: per-shard stats stay honest."""
        cache = ResultCache(capacity=13, seed=21)
        cache.put("a", np.ones(2))
        cache.get("a")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.capacity == 13
        assert clone.seed == 21
        assert len(clone) == 0
        assert clone.stats.lookups == 0
        # The original is untouched.
        assert len(cache) == 1

    def test_drain_counters_emits_documented_names_and_resets(self):
        cache = ResultCache(capacity=2)
        cache.get("missing")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts one; "c" itself is always resident
        assert cache.get("c") == 3
        counters = PerfCounters()
        cache.drain_counters(counters)
        values = counters.snapshot()
        assert values[rescache.MISSES] == 1
        assert values[rescache.HITS] == 1
        assert values[rescache.EVICTIONS] == 1
        assert cache.stats.lookups == 0
        assert cache.stats.evictions == 0
        # A second drain adds nothing (everything was reset).
        cache.drain_counters(counters)
        assert counters.snapshot() == values

    def test_thread_safety_smoke(self):
        cache = ResultCache(capacity=16)

        def hammer(worker):
            for index in range(200):
                key = f"k{(worker * 7 + index) % 32}"
                cache.put(key, index)
                cache.get(key)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 16
        assert cache.stats.lookups == 800
