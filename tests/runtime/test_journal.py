"""Unit tests for the crash-safe run journal (DESIGN §6i)."""

import json

import pytest

from repro.runtime.errors import ArtifactError, ModelError
from repro.runtime.journal import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    RunJournal,
    input_digest,
    rows_digest,
)
from repro.runtime.resilience import FaultInjector, FaultSpec

pytestmark = pytest.mark.durable

ROWS = [
    [{"Action": "Reduce", "Amount": "20%"}, {"Action": "", "Amount": ""}],
    [{"Action": "Offset", "Amount": "1Mt"}],
    [{"Action": "Plant", "Amount": "5k trees"}],
]


def _begin(journal, *, config_hash="cfg", digest="in", extra=None):
    journal.begin(
        kind="extraction",
        config_hash=config_hash,
        input_digest=digest,
        num_items=5,
        segments=[(0, 2), (2, 3), (3, 5)],
        extra=extra,
    )
    return journal


def _fresh(tmp_path, **kwargs):
    return _begin(RunJournal(tmp_path / "run"), **kwargs)


class TestDigests:
    def test_rows_digest_is_order_and_key_order_sensitive(self):
        base = rows_digest([{"a": 1, "b": 2}])
        assert rows_digest([{"b": 2, "a": 1}]) != base
        assert rows_digest([{"a": 1, "b": 2}, {}]) != base

    def test_input_digest_is_boundary_safe(self):
        # Length prefixes: ["ab", "c"] must not collide with ["a", "bc"].
        assert input_digest(["ab", "c"]) != input_digest(["a", "bc"])
        assert input_digest([]) != input_digest([""])


class TestCommitAndReplay:
    def test_commit_replay_roundtrip_is_byte_exact(self, tmp_path):
        journal = _fresh(tmp_path)
        for index, rows in enumerate(ROWS):
            assert journal.commit_segment(index, rows) is True
        journal.mark_complete()
        assert journal.rows() == [row for rows in ROWS for row in rows]

        replayed = _begin(RunJournal(tmp_path / "run"))
        assert replayed.complete
        assert replayed.replayed_segments == 3
        assert replayed.rows() == journal.rows()
        assert replayed.result_digest == journal.result_digest
        # Byte-exact, not merely equal: floats and key order round-trip.
        assert json.dumps(replayed.rows()) == json.dumps(journal.rows())

    def test_float_rows_roundtrip_shortest_repr(self, tmp_path):
        rows = [{"Score": 0.1 + 0.2, "Label": "x"}]
        journal = RunJournal(tmp_path / "run")
        journal.begin(
            kind="classification",
            config_hash="c",
            input_digest="i",
            num_items=1,
            segments=[(0, 1)],
        )
        journal.commit_segment(0, rows)
        replayed = RunJournal(tmp_path / "run")
        replayed.begin(
            kind="classification",
            config_hash="c",
            input_digest="i",
            num_items=1,
            segments=[(0, 1)],
        )
        assert replayed.segments[0].rows[0]["Score"] == rows[0]["Score"]

    def test_pending_shrinks_as_segments_commit(self, tmp_path):
        journal = _fresh(tmp_path)
        assert journal.pending() == [0, 1, 2]
        journal.commit_segment(1, ROWS[1])
        assert journal.pending() == [0, 2]
        with pytest.raises(ArtifactError, match="incomplete"):
            journal.rows()

    def test_duplicate_commit_is_first_write_wins(self, tmp_path):
        journal = _fresh(tmp_path)
        assert journal.commit_segment(0, ROWS[0]) is True
        assert journal.commit_segment(0, ROWS[0]) is False
        assert journal.stats()["duplicate_commits"] == 1
        # Only one line on disk: the dupe never reached the WAL.
        lines = (tmp_path / "run" / JOURNAL_NAME).read_bytes().splitlines()
        assert len(lines) == 1

    def test_conflicting_recommit_raises(self, tmp_path):
        journal = _fresh(tmp_path)
        journal.commit_segment(0, ROWS[0])
        with pytest.raises(ArtifactError, match="different"):
            journal.commit_segment(0, ROWS[1])

    def test_quarantine_payloads_roundtrip(self, tmp_path):
        payload = {"report_id": "r1", "error": "ModelError", "stage": "x"}
        journal = _fresh(tmp_path)
        journal.commit_segment(0, ROWS[0], quarantine=[payload])
        journal.commit_segment(1, ROWS[1])
        journal.commit_segment(2, ROWS[2])
        replayed = _begin(RunJournal(tmp_path / "run"))
        assert replayed.quarantine_payloads() == [payload]


class TestManifest:
    def test_resume_with_changed_config_is_refused(self, tmp_path):
        _fresh(tmp_path).commit_segment(0, ROWS[0])
        with pytest.raises(ArtifactError, match="config_hash"):
            _begin(RunJournal(tmp_path / "run"), config_hash="other")

    def test_resume_with_changed_corpus_is_refused(self, tmp_path):
        _fresh(tmp_path)
        with pytest.raises(ArtifactError, match="input_digest"):
            _begin(RunJournal(tmp_path / "run"), digest="edited")

    def test_resume_with_changed_plan_is_refused(self, tmp_path):
        _fresh(tmp_path)
        journal = RunJournal(tmp_path / "run")
        with pytest.raises(ArtifactError, match="segments"):
            journal.begin(
                kind="extraction",
                config_hash="cfg",
                input_digest="in",
                num_items=5,
                segments=[(0, 5)],
            )

    def test_extra_metadata_does_not_pin_resume(self, tmp_path):
        _fresh(tmp_path, extra={"host": "a"})
        _fresh(tmp_path, extra={"host": "b"})  # must not raise

    def test_no_resume_wipes_prior_run(self, tmp_path):
        journal = _fresh(tmp_path)
        journal.commit_segment(0, ROWS[0])
        fresh = RunJournal(tmp_path / "run", resume=False)
        _begin(fresh, config_hash="retrained")
        assert fresh.pending() == [0, 1, 2]

    def test_commit_before_begin_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="begin"):
            RunJournal(tmp_path / "run").commit_segment(0, ROWS[0])

    def test_out_of_plan_entry_is_refused_on_replay(self, tmp_path):
        journal = _fresh(tmp_path)
        journal.commit_segment(0, ROWS[0])
        # Re-open with a compatible manifest but a different plan width
        # by tampering with the on-disk manifest's plan for index 0.
        manifest_path = tmp_path / "run" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["segments"][0] = [0, 1]
        manifest_path.write_text(json.dumps(manifest))
        journal = RunJournal(tmp_path / "run")
        with pytest.raises(ArtifactError, match="bounds"):
            journal.begin(
                kind="extraction",
                config_hash="cfg",
                input_digest="in",
                num_items=5,
                segments=[(0, 1), (2, 3), (3, 5)],
            )


class TestTornWrites:
    def test_torn_tail_without_newline_is_truncated(self, tmp_path):
        journal = _fresh(tmp_path)
        journal.commit_segment(0, ROWS[0])
        journal.commit_segment(1, ROWS[1])
        path = tmp_path / "run" / JOURNAL_NAME
        good = path.read_bytes()
        path.write_bytes(good + b'deadbeef {"type":"segm')
        replayed = _begin(RunJournal(tmp_path / "run"))
        assert replayed.truncated_tail
        assert sorted(replayed.segments) == [0, 1]
        assert path.read_bytes() == good

    def test_checksum_failed_final_line_is_truncated(self, tmp_path):
        journal = _fresh(tmp_path)
        journal.commit_segment(0, ROWS[0])
        path = tmp_path / "run" / JOURNAL_NAME
        good = path.read_bytes()
        bad = bytearray(good * 2)
        bad[-10] ^= 0xFF  # corrupt the *final* line only
        path.write_bytes(bytes(bad))
        replayed = _begin(RunJournal(tmp_path / "run"))
        assert replayed.truncated_tail
        assert sorted(replayed.segments) == [0]
        assert path.read_bytes() == good

    def test_midfile_corruption_is_a_hard_error(self, tmp_path):
        journal = _fresh(tmp_path)
        journal.commit_segment(0, ROWS[0])
        journal.commit_segment(1, ROWS[1])
        path = tmp_path / "run" / JOURNAL_NAME
        raw = bytearray(path.read_bytes())
        raw[10] ^= 0xFF  # first line, not the tail
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="mid-file"):
            _begin(RunJournal(tmp_path / "run"))

    @pytest.mark.chaos
    @pytest.mark.parametrize("site", ["journal_commit", "journal_publish"])
    def test_crash_at_either_boundary_never_loses_committed_work(
        self, tmp_path, site
    ):
        injector = FaultInjector(
            [FaultSpec(stage=site, error="model", nth_calls=(2,))], seed=0
        )
        journal = RunJournal(tmp_path / "run", fault_injector=injector)
        _begin(journal)
        journal.commit_segment(0, ROWS[0])
        with pytest.raises(ModelError):
            journal.commit_segment(1, ROWS[1])
        resumed = _begin(RunJournal(tmp_path / "run"))
        # Segment 0 always survives; segment 1 either fully committed
        # (crash after the write hit disk) or left no trace.
        assert 0 in resumed.segments
        for index in resumed.segments:
            assert resumed.segments[index].rows == tuple(ROWS[index])
        for index in resumed.pending():
            resumed.commit_segment(index, ROWS[index])
        resumed.mark_complete()
        assert resumed.rows() == [row for rows in ROWS for row in rows]


class TestCompletion:
    def test_mark_complete_requires_all_segments(self, tmp_path):
        journal = _fresh(tmp_path)
        journal.commit_segment(0, ROWS[0])
        with pytest.raises(ArtifactError, match="cannot mark"):
            journal.mark_complete()

    def test_completion_digest_is_verified_on_replay(self, tmp_path):
        journal = _fresh(tmp_path)
        for index, rows in enumerate(ROWS):
            journal.commit_segment(index, rows)
        journal.mark_complete()
        assert journal.mark_complete() is None  # idempotent
        replayed = _begin(RunJournal(tmp_path / "run"))
        assert replayed.complete
        assert replayed.result_digest == journal.result_digest
