"""Numeric-equivalence guarantees of the batched inference runtime.

The bucketed scheduler's whole contract is that it changes throughput and
nothing else: a sequence's logits must be bitwise-identical no matter which
microbatch (or pad width) it lands in, and inference mode must be a pure
cache-skipping optimization with zero numeric effect.
"""

import numpy as np
import pytest

from repro.models.sequence_classifier import SequenceClassifier
from repro.models.token_classifier import TokenClassifier
from repro.nn.batching import pad_sequences
from repro.nn.encoder import EncoderConfig
from repro.nn.module import inference_mode
from repro.runtime.scheduler import plan_batches


@pytest.fixture
def config():
    return EncoderConfig(
        vocab_size=50, dim=16, num_layers=2, num_heads=2, ffn_dim=32,
        max_len=24, dropout=0.1,
    )


@pytest.fixture
def mixed_sequences(rng):
    """Lengths spanning singletons to beyond max_len, shuffled."""
    lengths = [1, 2, 3, 3, 5, 7, 8, 11, 15, 20, 24, 30, 4, 2, 19, 9]
    return [list(rng.integers(1, 50, size=length)) for length in lengths]


class TestBucketedEqualsNaive:
    def test_token_logits_bitwise_identical(
        self, config, rng, mixed_sequences
    ):
        model = TokenClassifier(config, num_labels=4, rng=rng)
        naive = model.predict_logits(
            mixed_sequences, batch_size=4, sort_by_length=False
        )
        for token_budget in (32, 64, 4096):
            bucketed = model.predict_logits(
                mixed_sequences, token_budget=token_budget
            )
            for naive_logits, bucketed_logits in zip(naive, bucketed):
                assert np.array_equal(naive_logits, bucketed_logits)

    def test_token_predictions_identical(self, config, rng, mixed_sequences):
        model = TokenClassifier(config, num_labels=4, rng=rng)
        naive = model.predict(mixed_sequences, sort_by_length=False)
        bucketed = model.predict(mixed_sequences, token_budget=48)
        assert len(naive) == len(bucketed)
        for naive_labels, bucketed_labels in zip(naive, bucketed):
            assert np.array_equal(naive_labels, bucketed_labels)

    def test_sequence_predictions_match(self, config, rng, mixed_sequences):
        model = SequenceClassifier(config, num_classes=3, rng=rng)
        naive = model.predict_proba(mixed_sequences, sort_by_length=False)
        bucketed = model.predict_proba(mixed_sequences, token_budget=48)
        # bitwise, not allclose: width-invariant pooling + row-invariant
        # head make sequence scores independent of batch packing too
        assert np.array_equal(naive, bucketed)
        singles = np.concatenate(
            [
                model.predict_proba([sequence], sort_by_length=False)
                for sequence in mixed_sequences
            ]
        )
        assert np.array_equal(naive, singles)

    def test_logits_independent_of_pad_width(self, config, rng):
        """The core invariant: pad width never changes a real row's output."""
        model = TokenClassifier(config, num_labels=4, rng=rng)
        model.eval()
        sequence = list(rng.integers(1, 50, size=9))
        with inference_mode():
            outputs = []
            for width in (9, 16, 24):
                ids, mask = pad_sequences(
                    [sequence], max_len=config.max_len, width=width
                )
                outputs.append(model(ids, mask)[0, :9])
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(outputs[0], outputs[2])


class TestInferenceModeIsPureOptimization:
    def test_inference_mode_outputs_identical(self, config, rng):
        model = TokenClassifier(config, num_labels=4, rng=rng)
        model.eval()
        ids = rng.integers(1, 50, size=(3, 10))
        mask = np.ones((3, 10), dtype=np.float32)
        plain = model(ids, mask)
        with inference_mode():
            optimized = model(ids, mask)
        assert np.array_equal(plain, optimized)

    def test_eval_matches_train_with_zero_dropout(self, rng):
        config = EncoderConfig(
            vocab_size=50, dim=16, num_layers=2, num_heads=2, ffn_dim=32,
            max_len=24, dropout=0.0,
        )
        model = TokenClassifier(config, num_labels=4, rng=rng)
        ids = rng.integers(1, 50, size=(3, 10))
        mask = np.ones((3, 10), dtype=np.float32)
        model.train()
        train_out = model(ids, mask)
        model.eval()
        eval_out = model(ids, mask)
        assert np.array_equal(train_out, eval_out)

    def test_inference_mode_skips_backward_caches(self, config, rng):
        model = TokenClassifier(config, num_labels=4, rng=rng)
        model.eval()
        ids = rng.integers(1, 50, size=(2, 8))
        mask = np.ones((2, 8), dtype=np.float32)
        with inference_mode():
            model(ids, mask)
        attention = model.encoder.layers[0].attention
        assert attention._cache is None
        assert model.encoder.layers[0].ffn._pre_activation is None
        assert model.encoder._positions is None


class TestSchedulerMatchesModelChunking:
    def test_arrival_plan_reproduces_legacy_chunk_widths(self, config):
        """The naive path is itself scheduler-driven; widths must agree."""
        lengths = [5, 24, 2, 17, 9, 1, 30, 3]
        batch_size = 3
        plan = plan_batches(
            lengths,
            token_budget=batch_size * config.max_len,
            max_len=config.max_len,
            max_rows=batch_size,
            sort_by_length=False,
        )
        expected_widths = []
        for start in range(0, len(lengths), batch_size):
            chunk = lengths[start : start + batch_size]
            expected_widths.append(
                min(max(max(chunk), 1), config.max_len)
            )
        assert [m.width for m in plan.microbatches] == expected_widths
