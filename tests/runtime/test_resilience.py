"""Tests for retry policies, circuit breakers, fault injection, quarantine."""

import dataclasses

import pytest

from repro.datasets.reports import Page, SustainabilityReport, TextBlock
from repro.runtime.errors import (
    CircuitOpenError,
    InputError,
    ModelError,
    NumericalError,
    StageTimeout,
)
from repro.runtime.profiling import PerfCounters
from repro.runtime.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    QuarantineQueue,
    RetryPolicy,
    run_stage,
    sanitize_report,
    validate_report,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def no_sleep(_delay: float) -> None:
    pass


class TestRetryPolicy:
    def test_backoff_is_deterministic_per_stage(self):
        policy = RetryPolicy(max_retries=4, seed=42)
        assert policy.delays("extract") == policy.delays("extract")
        # Different stages draw different jitter streams.
        assert policy.delays("extract") != policy.delays("detect")

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_retries=6, base_delay=0.1, max_delay=0.5, jitter=0.0
        )
        assert policy.delays("s") == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_jitter_bounds(self):
        policy = RetryPolicy(
            max_retries=50, base_delay=1.0, max_delay=1.0, jitter=0.5
        )
        for delay in policy.delays("s"):
            assert 1.0 <= delay <= 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"jitter": -1.0},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRunStage:
    def test_success_passes_result_through(self):
        assert run_stage(lambda: 42, stage="s") == 42

    def test_retries_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("boom")
            return "ok"

        counters = PerfCounters()
        result = run_stage(
            flaky,
            stage="s",
            policy=RetryPolicy(max_retries=3, base_delay=0.0),
            counters=counters,
            sleep=no_sleep,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert counters.get("retries") == 2
        assert counters.get("stage_failures") == 2

    def test_exhausted_retries_raise_with_history(self):
        def always_fails():
            raise ValueError("boom")

        with pytest.raises(ModelError) as excinfo:
            run_stage(
                always_fails,
                stage="extract",
                policy=RetryPolicy(max_retries=2, base_delay=0.0),
                report_id="doc-1",
                sleep=no_sleep,
            )
        error = excinfo.value
        assert error.attempts == 3
        assert len(error.history) == 3
        assert error.stage == "extract"
        assert error.report_id == "doc-1"

    def test_input_error_is_not_retried(self):
        calls = []

        def bad_input():
            calls.append(1)
            raise InputError("malformed")

        with pytest.raises(InputError):
            run_stage(
                bad_input,
                stage="s",
                policy=RetryPolicy(max_retries=5, base_delay=0.0),
                sleep=no_sleep,
            )
        assert len(calls) == 1

    def test_deadline_budget_raises_stage_timeout(self):
        clock = FakeClock()

        def slow_failure():
            clock.advance(0.6)
            raise ValueError("boom")

        with pytest.raises(StageTimeout) as excinfo:
            run_stage(
                slow_failure,
                stage="s",
                policy=RetryPolicy(
                    max_retries=10, base_delay=0.0, deadline=1.0
                ),
                clock=clock,
                sleep=no_sleep,
            )
        assert excinfo.value.history  # carries the attempts so far
        assert excinfo.value.attempts == 2

    def test_numerical_error_is_retryable(self):
        calls = []

        def nan_once():
            calls.append(1)
            if len(calls) == 1:
                raise NumericalError("nan in logits")
            return "recovered"

        result = run_stage(
            nan_once,
            stage="s",
            policy=RetryPolicy(max_retries=1, base_delay=0.0),
            sleep=no_sleep,
        )
        assert result == "recovered"

    def test_open_breaker_fails_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=100.0, clock=clock
        )
        breaker.record_failure()  # trips at threshold 1
        calls = []
        with pytest.raises(CircuitOpenError):
            run_stage(
                lambda: calls.append(1),
                stage="s",
                breaker=breaker,
                sleep=no_sleep,
            )
        assert not calls  # fn never invoked


class TestCircuitBreaker:
    def test_transitions_closed_open_half_open_closed(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=10.0, clock=clock
        )
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # one trial admitted
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_time=5.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_zero_recovery_time_never_blocks(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=0.0)
        breaker.record_failure()
        assert breaker.allow()


class TestFaultInjector:
    def test_same_seed_same_pattern(self):
        def pattern(seed):
            injector = FaultInjector(
                [FaultSpec(stage="extract", rate=0.3)], seed=seed
            )
            fired = []
            for call in range(50):
                try:
                    injector.check("extract")
                except ModelError:
                    fired.append(call)
            return fired

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_reset_replays_pattern(self):
        injector = FaultInjector(
            [FaultSpec(stage="extract", rate=0.4)], seed=3
        )

        def observe():
            fired = []
            for call in range(30):
                try:
                    injector.check("extract")
                except ModelError:
                    fired.append(call)
            return fired

        first = observe()
        injector.reset()
        assert observe() == first

    def test_nth_call_targeting(self):
        injector = FaultInjector(
            [FaultSpec(stage="forward", error="numerical", nth_calls=(2, 4))]
        )
        injector.check("forward")  # call 1: clean
        with pytest.raises(NumericalError) as excinfo:
            injector.check("forward")  # call 2: injected
        assert excinfo.value.injected
        injector.check("forward")  # call 3: clean
        with pytest.raises(NumericalError):
            injector.check("forward")  # call 4: injected
        assert injector.calls("forward") == 4
        assert injector.injected("forward") == 2

    def test_stage_isolation(self):
        injector = FaultInjector(
            [FaultSpec(stage="extract", rate=1.0)], seed=0
        )
        injector.check("detect")  # other stages unaffected
        with pytest.raises(ModelError):
            injector.check("extract")

    def test_error_kinds(self):
        injector = FaultInjector(
            [FaultSpec(stage="s", error="input", nth_calls=(1,))]
        )
        with pytest.raises(InputError):
            injector.check("s")

    def test_wrap(self):
        injector = FaultInjector(
            [FaultSpec(stage="s", nth_calls=(2,))]
        )
        wrapped = injector.wrap("s", lambda x: x + 1)
        assert wrapped(1) == 2
        with pytest.raises(ModelError):
            wrapped(1)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(stage="s", error="nope")
        with pytest.raises(ValueError):
            FaultSpec(stage="s", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(stage="s", nth_calls=(0,))


class TestQuarantine:
    def make_report(self, report_id="r1"):
        return SustainabilityReport(
            company="ACME",
            report_id=report_id,
            pages=[Page(blocks=[TextBlock("text", False)])],
        )

    def test_entries_carry_full_provenance(self):
        queue = QuarantineQueue()
        error = ModelError("boom", stage="extract")
        error.attempts = 3
        error.history = ["ModelError: boom"] * 3
        queue.put(self.make_report("r7"), "extract", error)
        assert len(queue) == 1
        payload = queue.as_dicts()[0]
        assert payload["report_id"] == "r7"
        assert payload["company"] == "ACME"
        assert payload["stage"] == "extract"
        assert payload["attempts"] == 3
        assert len(payload["history"]) == 3

    def test_drain_clears(self):
        queue = QuarantineQueue()
        queue.put(self.make_report(), "detect", ModelError("x"))
        entries = queue.drain()
        assert len(entries) == 1
        assert len(queue) == 0
        assert queue.report_ids() == []


class TestValidation:
    def make_report(self, blocks, report_id="r1"):
        return SustainabilityReport(
            company="ACME",
            report_id=report_id,
            pages=[Page(blocks=list(blocks))],
        )

    def test_valid_report_passes(self):
        validate_report(self.make_report([TextBlock("fine", False)]))

    def test_non_str_block_rejected_with_provenance(self):
        report = self.make_report(
            [TextBlock("ok", False), TextBlock(None, False)]
        )
        with pytest.raises(InputError) as excinfo:
            validate_report(report)
        assert excinfo.value.report_id == "r1"
        assert excinfo.value.page == 0

    def test_empty_report_rejected(self):
        report = SustainabilityReport("ACME", "r1", pages=[])
        with pytest.raises(InputError):
            validate_report(report)
        with pytest.raises(InputError):
            validate_report(self.make_report([]))

    def test_absurd_block_length_rejected(self):
        report = self.make_report([TextBlock("x" * 100, False)])
        with pytest.raises(InputError):
            validate_report(report, max_block_chars=99)

    def test_non_report_rejected(self):
        with pytest.raises(InputError):
            validate_report("not a report")

    def test_sanitize_drops_and_truncates(self):
        counters = PerfCounters()
        report = self.make_report(
            [
                TextBlock("keep me", False),
                TextBlock(None, False),
                TextBlock("y" * 100, False),
            ]
        )
        clean = sanitize_report(report, max_block_chars=10, counters=counters)
        texts = [b.text for b in clean.pages[0].blocks]
        assert texts == ["keep me", "y" * 10]
        assert counters.get("sanitized_blocks") == 2

    def test_sanitize_clean_report_returns_same_object(self):
        report = self.make_report([TextBlock("fine", False)])
        assert sanitize_report(report) is report

    def test_sanitize_preserves_block_metadata(self):
        block = TextBlock("z" * 100, True, details={"Action": "cut"})
        clean = sanitize_report(
            self.make_report([block]), max_block_chars=10
        )
        kept = clean.pages[0].blocks[0]
        assert kept.is_objective
        assert kept.details == {"Action": "cut"}
        assert dataclasses.asdict(kept)["text"] == "z" * 10
