"""Hypothesis property: parallel corpus runs are bitwise-deterministic.

The headline guarantee of :mod:`repro.runtime.parallel` — ``workers=N``
is bitwise-identical to ``workers=1`` — as a property over random
corpora: identical records, identical quarantine contents, and merged
``RunStats`` whose counters equal the sum of the per-shard counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import DetailExtractor
from repro.datasets.reports import Page, SustainabilityReport, TextBlock
from repro.goalspotter.pipeline import GoalSpotter
from repro.runtime.parallel import process_reports_parallel
from repro.runtime.resilience import FaultInjector, FaultSpec

pytestmark = pytest.mark.parallel


class PropDetector:
    """Deterministic pure function of the text (picklable stub)."""

    class config:
        threshold = 0.5

    def predict_proba(self, texts):
        return np.array(
            [0.9 if ("%" in t or "goal" in t) else 0.1 for t in texts]
        )


class PropExtractor(DetailExtractor):
    name = "prop"

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {"Action": text[:12], "Amount": str(len(text)),
                "Qualifier": "", "Baseline": "", "Deadline": ""}


_WORDS = st.sampled_from(
    ["reduce", "goal", "20%", "emissions", "by", "2030", "the", "note"]
)
_BLOCK = st.builds(
    lambda words: TextBlock(text=" ".join(words), is_objective=False),
    st.lists(_WORDS, min_size=1, max_size=8),
)
_PAGE = st.builds(Page, st.lists(_BLOCK, min_size=1, max_size=3))


@st.composite
def corpora(draw, min_reports=2, max_reports=6):
    count = draw(st.integers(min_reports, max_reports))
    return [
        SustainabilityReport(
            company=f"C{index}",
            report_id=f"r{index}",
            pages=draw(st.lists(_PAGE, min_size=1, max_size=2)),
        )
        for index in range(count)
    ]


def _pipeline(**kwargs):
    return GoalSpotter(PropDetector(), PropExtractor(), **kwargs)


def _quarantine_key(entry):
    return (entry.report_id, entry.company, entry.stage,
            type(entry.error).__name__, str(entry.error))


#: last_run_stats counters that must sum exactly across shards.
_SUMMED = ("blocks", "detected_blocks", "extraction_units", "records",
           "retries", "failures", "degraded_records", "failed_records",
           "fallback_documents", "quarantined_documents",
           "sanitized_blocks")


class TestParallelDeterminism:
    @given(corpus=corpora(), workers=st.integers(2, 4))
    @settings(max_examples=12, deadline=None)
    def test_records_identical_to_sequential(self, corpus, workers):
        sequential = _pipeline().process_reports(list(corpus))
        parallel = process_reports_parallel(
            _pipeline(), corpus, workers=workers
        )
        assert parallel == sequential

    @given(corpus=corpora(), workers=st.integers(2, 3))
    @settings(max_examples=8, deadline=None)
    def test_merged_counters_sum_per_shard_counters(self, corpus, workers):
        pipeline = _pipeline()
        records = process_reports_parallel(
            pipeline, corpus, workers=workers, on_error="degrade"
        )
        stats = pipeline.last_run_stats
        shards = [shard for shard in stats["shards"] if shard]
        for key in _SUMMED:
            assert stats[key] == sum(shard[key] for shard in shards), key
        assert stats["records"] == len(records)
        assert stats["num_shards"] == len(stats["shards"])

    @given(corpus=corpora(min_reports=3), num_shards=st.integers(2, 4))
    @settings(max_examples=8, deadline=None)
    def test_chaos_identical_across_worker_counts(self, corpus, num_shards):
        """Same shard layout + same faults: worker count is invisible.

        A rate-based fault injector fires deterministically per shard
        (per-shard seeds derive from the base injector's seed and the
        shard index), so with ``num_shards`` pinned, the records *and*
        the quarantine must match between workers=1 and workers=k even
        under injected faults.
        """
        def run(workers):
            pipeline = _pipeline(
                fault_injector=FaultInjector(
                    [FaultSpec(stage="extract", error="model", rate=0.4)],
                    seed=17,
                ),
                on_error="degrade",
            )
            records = process_reports_parallel(
                pipeline, corpus, workers=workers, num_shards=num_shards
            )
            return records, [
                _quarantine_key(entry) for entry in pipeline.quarantine
            ]

        records_one, quarantine_one = run(1)
        records_many, quarantine_many = run(3)
        assert records_many == records_one
        assert quarantine_many == quarantine_one
