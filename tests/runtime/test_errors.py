"""Tests for the structured failure taxonomy."""

import pytest

from repro.runtime.errors import (
    ERROR_CLASSES,
    CircuitOpenError,
    InputError,
    ModelError,
    NumericalError,
    ReproError,
    StageTimeout,
    classify_error,
)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(InputError, ReproError)
        assert issubclass(ModelError, ReproError)
        assert issubclass(NumericalError, ModelError)
        assert issubclass(StageTimeout, ReproError)
        assert issubclass(CircuitOpenError, ModelError)

    def test_retryability(self):
        assert ModelError("x").retryable
        assert NumericalError("x").retryable
        assert not InputError("x").retryable
        assert not StageTimeout("x").retryable
        assert not CircuitOpenError("x").retryable

    def test_context_carries_provenance(self):
        error = InputError(
            "bad block", stage="validate", report_id="C1-doc-004", page=7
        )
        context = error.context()
        assert context["error"] == "InputError"
        assert context["stage"] == "validate"
        assert context["report_id"] == "C1-doc-004"
        assert context["page"] == 7
        assert context["attempts"] == 0
        assert context["injected"] is False

    def test_error_classes_registry(self):
        assert ERROR_CLASSES["input"] is InputError
        assert ERROR_CLASSES["model"] is ModelError
        assert ERROR_CLASSES["numerical"] is NumericalError
        assert ERROR_CLASSES["timeout"] is StageTimeout


class TestClassifyError:
    def test_repro_error_passes_through(self):
        original = NumericalError("nan", stage="forward")
        assert classify_error(original) is original

    def test_repro_error_gains_missing_stage(self):
        original = ModelError("boom")
        classified = classify_error(original, stage="extract")
        assert classified is original
        assert classified.stage == "extract"

    def test_existing_stage_not_overwritten(self):
        original = ModelError("boom", stage="detect")
        assert classify_error(original, stage="extract").stage == "detect"

    def test_floating_point_error_becomes_numerical(self):
        classified = classify_error(
            FloatingPointError("overflow"), stage="forward"
        )
        assert isinstance(classified, NumericalError)
        assert classified.stage == "forward"
        assert isinstance(classified.__cause__, FloatingPointError)

    def test_foreign_exception_becomes_model_error(self):
        raw = ValueError("shape mismatch")
        classified = classify_error(raw, stage="extract")
        assert isinstance(classified, ModelError)
        assert not isinstance(classified, NumericalError)
        assert "ValueError" in str(classified)
        assert classified.__cause__ is raw

    @pytest.mark.parametrize("kind", sorted(ERROR_CLASSES))
    def test_registry_instances_classify_to_themselves(self, kind):
        error = ERROR_CLASSES[kind]("x")
        assert classify_error(error) is error
