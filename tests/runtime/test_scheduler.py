"""Property and example tests for the length-bucketed batch planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.scheduler import Microbatch, plan_batches

lengths_strategy = st.lists(
    st.integers(min_value=0, max_value=300), min_size=0, max_size=120
)
budget_strategy = st.integers(min_value=1, max_value=512)
max_len_strategy = st.one_of(
    st.none(), st.integers(min_value=1, max_value=128)
)


class TestPlanIsPermutationPartition:
    @given(
        lengths=lengths_strategy,
        token_budget=budget_strategy,
        max_len=max_len_strategy,
        max_rows=st.one_of(st.none(), st.integers(1, 16)),
        sort_by_length=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_index_exactly_once(
        self, lengths, token_budget, max_len, max_rows, sort_by_length
    ):
        plan = plan_batches(
            lengths,
            token_budget=token_budget,
            max_len=max_len,
            max_rows=max_rows,
            sort_by_length=sort_by_length,
        )
        flat = [
            index
            for microbatch in plan.microbatches
            for index in microbatch.indices
        ]
        assert sorted(flat) == list(range(len(lengths)))

    @given(
        lengths=lengths_strategy,
        token_budget=budget_strategy,
        max_len=max_len_strategy,
    )
    @settings(max_examples=200, deadline=None)
    def test_order_restoration_is_exact(self, lengths, token_budget, max_len):
        """Scattering microbatch rows back by index recovers arrival order."""
        plan = plan_batches(lengths, token_budget=token_budget, max_len=max_len)
        restored = [None] * len(lengths)
        for microbatch in plan.microbatches:
            for row, index in enumerate(microbatch.indices):
                assert restored[index] is None  # no double-writes
                restored[index] = (microbatch, row)
        assert all(slot is not None for slot in restored)

    @given(
        lengths=lengths_strategy,
        token_budget=budget_strategy,
        max_len=max_len_strategy,
        max_rows=st.one_of(st.none(), st.integers(1, 16)),
        sort_by_length=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_budget_respected_unless_singleton_oversized(
        self, lengths, token_budget, max_len, max_rows, sort_by_length
    ):
        plan = plan_batches(
            lengths,
            token_budget=token_budget,
            max_len=max_len,
            max_rows=max_rows,
            sort_by_length=sort_by_length,
        )
        for microbatch in plan.microbatches:
            if microbatch.padded_tokens > token_budget:
                # Only a single sequence longer than the whole budget may
                # exceed it, and then only as a singleton.
                assert microbatch.rows == 1
            if max_rows is not None:
                assert microbatch.rows <= max_rows

    @given(
        lengths=lengths_strategy,
        token_budget=budget_strategy,
        max_len=st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=100, deadline=None)
    def test_widths_cover_clipped_lengths(self, lengths, token_budget, max_len):
        """Every row fits its microbatch width; no width exceeds max_len."""
        plan = plan_batches(lengths, token_budget=token_budget, max_len=max_len)
        for microbatch in plan.microbatches:
            assert 1 <= microbatch.width <= max_len
            for index in microbatch.indices:
                effective = max(1, min(lengths[index], max_len))
                assert effective <= microbatch.width


class TestPlanBatchesExamples:
    def test_empty_input(self):
        plan = plan_batches([])
        assert plan.microbatches == ()
        assert plan.total_tokens == 0
        assert plan.padding_waste == 0.0

    def test_sorting_is_stable_on_ties(self):
        plan = plan_batches([4, 4, 4], token_budget=1000)
        assert plan.microbatches[0].indices == (0, 1, 2)

    def test_bucketing_reduces_padding_vs_arrival(self):
        # Alternating short/long: arrival-order chunks pad every short
        # sequence to the long width; sorting separates them.
        lengths = [2, 50] * 10
        arrival = plan_batches(
            lengths, token_budget=4 * 50, max_rows=4, sort_by_length=False
        )
        bucketed = plan_batches(lengths, token_budget=4 * 50)
        assert bucketed.padding_waste < arrival.padding_waste

    def test_arrival_mode_reproduces_fixed_chunking(self):
        """sort=False + max_rows reproduces the legacy fixed-size chunks."""
        lengths = [7, 3, 9, 2, 5, 8, 1]
        batch_size, max_len = 3, 16
        plan = plan_batches(
            lengths,
            token_budget=batch_size * max_len,
            max_len=max_len,
            max_rows=batch_size,
            sort_by_length=False,
        )
        assert [m.indices for m in plan.microbatches] == [
            (0, 1, 2),
            (3, 4, 5),
            (6,),
        ]
        assert [m.width for m in plan.microbatches] == [9, 8, 1]

    def test_oversized_singleton_allowed(self):
        plan = plan_batches([100], token_budget=10)
        assert plan.microbatches == (Microbatch((0,), 100),)

    def test_zero_length_treated_as_one(self):
        plan = plan_batches([0, 0], token_budget=10)
        assert plan.total_tokens == 2

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            plan_batches([1], token_budget=0)

    def test_invalid_max_rows_rejected(self):
        with pytest.raises(ValueError):
            plan_batches([1], max_rows=0)
