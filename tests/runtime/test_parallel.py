"""Unit tests for the data-parallel sharded corpus runtime."""

import numpy as np
import pytest

from repro.core.base import DetailExtractor
from repro.datasets.reports import ReportGenerator
from repro.goalspotter.pipeline import GoalSpotter
from repro.runtime.parallel import (
    PipelineBroadcast,
    broadcast_pipeline,
    estimate_report_cost,
    estimate_text_cost,
    extract_batch_parallel,
    plan_shards,
    process_reports_parallel,
    resolve_workers,
    restore_pipeline,
    shard_seed,
)

pytestmark = pytest.mark.parallel


# Module-level stubs: worker processes unpickle the broadcast skeleton by
# qualified name, so these must not be defined inside test functions.
class StubDetector:
    class config:
        threshold = 0.5

    def predict_proba(self, texts):
        return np.array(
            [0.9 if ("%" in t or "20" in t) else 0.1 for t in texts]
        )


class StubExtractor(DetailExtractor):
    name = "stub"

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {"Action": "Reduce", "Amount": "", "Qualifier": "",
                "Baseline": "", "Deadline": ""}


class UppercaseExtractor(DetailExtractor):
    """Input-dependent stub, so shuffled shard outputs would be caught."""

    name = "upper"

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {"Action": text[:20].upper(), "Amount": str(len(text)),
                "Qualifier": "", "Baseline": "", "Deadline": ""}


def _corpus(count, seed=5, pages=3, objectives=2):
    generator = ReportGenerator(seed=seed)
    return [
        generator.generate_report(f"C{i}", f"r{i}", pages, objectives)
        for i in range(count)
    ]


def _pipeline(**kwargs):
    return GoalSpotter(StubDetector(), StubExtractor(), **kwargs)


class TestPlanShards:
    def test_contiguous_and_exhaustive(self):
        costs = [5, 1, 9, 2, 2, 7, 3, 1]
        shards = plan_shards(costs, 3)
        assert shards[0].start == 0
        assert shards[-1].stop == len(costs)
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start
        assert [shard.index for shard in shards] == list(range(len(shards)))

    def test_costs_are_slice_sums(self):
        costs = [4, 4, 4, 4, 10]
        for shard in plan_shards(costs, 2):
            assert shard.cost == sum(costs[shard.start : shard.stop])

    def test_minimizes_makespan(self):
        # Brute-force check on small inputs: the planner's max shard cost
        # equals the best over every contiguous 2-way split.
        costs = [3, 1, 4, 1, 5, 9, 2, 6]
        planned = max(shard.cost for shard in plan_shards(costs, 2))
        best = min(
            max(sum(costs[:cut]), sum(costs[cut:]))
            for cut in range(1, len(costs))
        )
        assert planned == best

    def test_more_shards_than_items(self):
        shards = plan_shards([5, 5], 8)
        assert len(shards) == 2
        assert all(shard.size == 1 for shard in shards)

    def test_single_shard(self):
        shards = plan_shards([1, 2, 3], 1)
        assert len(shards) == 1
        assert shards[0].cost == 6

    def test_empty_costs(self):
        assert plan_shards([], 4) == []

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_shards([1], 0)
        with pytest.raises(ValueError):
            plan_shards([1, -2], 2)


class TestCostEstimates:
    def test_text_cost_counts_words(self):
        assert estimate_text_cost("reduce emissions by 20%") == 4
        assert estimate_text_cost("") == 1  # never zero-cost

    def test_report_cost_sums_blocks(self):
        report = _corpus(1)[0]
        blocks = [
            block.text for page in report.pages for block in page.blocks
        ]
        assert estimate_report_cost(report) == sum(
            estimate_text_cost(text) for text in blocks
        )


class TestResolveWorkers:
    def test_auto_values_use_cpu_count(self):
        import os

        expected = max(1, os.cpu_count() or 1)
        assert resolve_workers(None) == expected
        assert resolve_workers(0) == expected
        assert resolve_workers("auto") == expected

    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("2") == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestShardSeed:
    def test_deterministic(self):
        assert shard_seed(7, 2) == shard_seed(7, 2)

    def test_varies_by_shard_and_base(self):
        seeds = {shard_seed(7, index) for index in range(16)}
        assert len(seeds) == 16
        assert shard_seed(7, 0) != shard_seed(8, 0)

    def test_non_negative_31_bit(self):
        for index in range(64):
            assert 0 <= shard_seed(123456789, index) < 2**31


class TestBroadcast:
    def test_roundtrip_preserves_configuration(self):
        pipeline = _pipeline(on_error="degrade", max_block_chars=1234)
        broadcast = broadcast_pipeline(pipeline)
        assert isinstance(broadcast, PipelineBroadcast)
        clone = restore_pipeline(broadcast)
        assert clone.on_error == "degrade"
        assert clone.max_block_chars == 1234
        assert isinstance(clone.detector, StubDetector)

    def test_caller_pipeline_untouched(self):
        pipeline = _pipeline()
        report = _corpus(1)[0]
        pipeline.process_report(report)  # populate run state
        stats_before = pipeline.last_run_stats
        broadcast_pipeline(pipeline)
        assert pipeline.last_run_stats is stats_before
        assert pipeline.detector is not None

    def test_clone_starts_with_clean_run_state(self):
        pipeline = _pipeline(on_error="degrade")
        pipeline.process_reports(_corpus(2))
        clone = restore_pipeline(broadcast_pipeline(pipeline))
        assert clone.last_run_stats is None
        assert len(clone.quarantine) == 0
        assert clone._breakers == {}


class TestProcessReportsParallel:
    def test_matches_sequential(self):
        corpus = _corpus(8)
        sequential = _pipeline().process_reports(list(corpus))
        for workers in (1, 2, 3):
            pipeline = _pipeline()
            parallel = process_reports_parallel(
                pipeline, corpus, workers=workers
            )
            assert parallel == sequential

    def test_order_restored_with_input_dependent_extractor(self):
        corpus = _corpus(9, seed=3)
        sequential = GoalSpotter(
            StubDetector(), UppercaseExtractor()
        ).process_reports(list(corpus))
        parallel = process_reports_parallel(
            GoalSpotter(StubDetector(), UppercaseExtractor()),
            corpus,
            workers=3,
            num_shards=5,
        )
        assert parallel == sequential

    def test_goalspotter_workers_kwarg_dispatches(self):
        corpus = _corpus(6)
        sequential = _pipeline().process_reports(list(corpus))
        via_call = _pipeline().process_reports(corpus, workers=2)
        via_ctor = _pipeline(workers=2).process_reports(corpus)
        assert via_call == sequential
        assert via_ctor == sequential

    def test_merged_stats_sum_shards(self):
        pipeline = _pipeline()
        records = process_reports_parallel(
            pipeline, _corpus(8), workers=2, num_shards=4
        )
        stats = pipeline.last_run_stats
        assert stats["workers"] == 2
        assert stats["num_shards"] == len(stats["shards"]) == 4
        for key in ("blocks", "detected_blocks", "extraction_units"):
            assert stats[key] == sum(
                shard[key] for shard in stats["shards"] if shard
            )
        assert stats["records"] == len(records)
        assert stats["broadcast_bytes"] > 0

    def test_empty_corpus(self):
        pipeline = _pipeline()
        assert process_reports_parallel(pipeline, [], workers=4) == []

    def test_single_report(self):
        corpus = _corpus(1)
        sequential = _pipeline().process_reports(list(corpus))
        assert (
            process_reports_parallel(_pipeline(), corpus, workers=4)
            == sequential
        )


class TestExtractBatchParallel:
    def test_matches_sequential_and_restores_order(self):
        texts = [
            f"Reduce emissions by {i}% by 20{30 + i}" for i in range(12)
        ]
        extractor = UppercaseExtractor()
        sequential = extractor.extract_batch(list(texts))
        for workers in (1, 2, 3):
            assert (
                extract_batch_parallel(extractor, texts, workers=workers)
                == sequential
            )

    def test_empty_input(self):
        assert extract_batch_parallel(StubExtractor(), [], workers=4) == []
