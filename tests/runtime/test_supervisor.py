"""Unit tests for lease-based worker supervision (DESIGN §6i).

The supervisor is exercised against a scripted in-process transport and
a fake clock, so hangs, crashes, heartbeats, and drains are all
deterministic — no real processes, signals, or wall-clock sleeps.
"""

import threading

import pytest

from repro.runtime.errors import (
    ArtifactError,
    InputError,
    ModelError,
    ReproError,
    RunInterrupted,
    StageTimeout,
)
from repro.runtime.journal import RunJournal
from repro.runtime.supervisor import (
    GracefulShutdown,
    RunSupervisor,
    SegmentOutcome,
    SegmentWork,
    SupervisorConfig,
    plan_segments,
)

pytestmark = pytest.mark.durable

SEGMENTS = [(0, 2), (2, 4), (4, 6)]
ROWS = {0: [{"i": 0}, {"i": 1}], 1: [{"i": 2}, {"i": 3}], 2: [{"i": 4}, {"i": 5}]}


def _works():
    return [
        SegmentWork(
            index=index,
            start=start,
            stop=stop,
            kind="extraction",
            items=("a", "b"),
            mode="raise",
            fields=("Action",),
        )
        for index, (start, stop) in enumerate(SEGMENTS)
    ]


def _journal(tmp_path):
    journal = RunJournal(tmp_path / "run")
    journal.begin(
        kind="extraction",
        config_hash="cfg",
        input_digest="in",
        num_items=6,
        segments=SEGMENTS,
    )
    return journal


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class Handle:
    def __init__(self, work, generation):
        self.work = work
        self.generation = generation
        self.polls = 0


class ManualTransport:
    """Scripted transport: behavior per (segment index, grant generation).

    ``"ok"`` completes on the first poll, ``"slow:N"`` on the Nth,
    ``"hang"`` never, ``"fail"``/``"crash"`` return a typed error
    outcome (non-retryable / retryable).
    """

    capacity = 2

    def __init__(self, script):
        self.script = script
        self.grants = []
        self.closed = None
        self.heartbeats = {}

    def _behavior(self, handle):
        return self.script.get(
            (handle.work.index, handle.generation),
            self.script.get(handle.work.index, "ok"),
        )

    def submit(self, work):
        generation = sum(1 for h in self.grants if h.work.index == work.index)
        handle = Handle(work, generation)
        self.grants.append(handle)
        return handle

    def poll(self, handle):
        handle.polls += 1
        behavior = self._behavior(handle)
        if behavior == "hang":
            return None
        if behavior.startswith("slow:"):
            if handle.polls < int(behavior.split(":")[1]):
                return None
            behavior = "ok"
        if behavior in ("fail", "crash"):
            error = (
                InputError("poison segment", stage="extract")
                if behavior == "fail"
                else ReproError("worker killed", stage="run")
            )
            payload = error.context()
            payload["retryable"] = behavior == "crash"
            return SegmentOutcome(
                index=handle.work.index, rows=[], quarantine=[], error=payload
            )
        return SegmentOutcome(
            index=handle.work.index,
            rows=ROWS[handle.work.index],
            quarantine=[],
        )

    def heartbeat(self, handle):
        return self.heartbeats.get(handle.work.index)

    def close(self, *, force=False):
        self.closed = "force" if force else "clean"


def _run(tmp_path, script, *, config=None, drain_event=None, clock=None):
    clock = clock or FakeClock()
    journal = _journal(tmp_path)
    transport = ManualTransport(script)
    supervisor = RunSupervisor(
        journal,
        transport,
        config=config
        or SupervisorConfig(lease_timeout=1.0, poll_interval=0.25),
        drain_event=drain_event,
        clock=clock,
        sleep=clock.sleep,
    )
    return journal, transport, supervisor


class TestHappyPath:
    def test_all_segments_commit(self, tmp_path):
        journal, transport, supervisor = _run(tmp_path, {})
        supervisor.run(_works())
        journal.mark_complete()
        assert journal.rows() == [row for i in range(3) for row in ROWS[i]]
        assert supervisor.stats["leases_granted"] == 3
        assert supervisor.stats["reaped"] == 0

    def test_grants_respect_capacity(self, tmp_path):
        journal, transport, supervisor = _run(
            tmp_path, {0: "slow:3", 1: "slow:3", 2: "slow:3"}
        )
        supervisor.run(_works())
        # With capacity 2, the third grant can only follow a completion.
        first_two = {h.work.index for h in transport.grants[:2]}
        assert first_two == {0, 1}
        assert len(transport.grants) == 3

    def test_only_pending_segments_run(self, tmp_path):
        journal = _journal(tmp_path)
        journal.commit_segment(1, ROWS[1])
        clock = FakeClock()
        transport = ManualTransport({})
        supervisor = RunSupervisor(
            journal, transport, clock=clock, sleep=clock.sleep
        )
        supervisor.run([w for w in _works() if w.index != 1])
        assert {h.work.index for h in transport.grants} == {0, 2}
        journal.mark_complete()


class TestReaping:
    def test_hung_worker_is_reaped_and_regranted(self, tmp_path):
        journal, transport, supervisor = _run(
            tmp_path, {(0, 0): "hang", (0, 1): "ok"}
        )
        supervisor.run(_works())
        assert supervisor.stats["reaped"] == 1
        assert supervisor.stats["regrants"] == 1
        journal.mark_complete()
        assert journal.segments[0].rows == tuple(ROWS[0])

    def test_stale_result_from_reaped_grant_still_counts(self, tmp_path):
        # First grant is slow enough to get reaped, but finishes before
        # its replacement: first finisher wins, the journal dedupes.
        journal, transport, supervisor = _run(
            tmp_path, {(0, 0): "slow:9", (0, 1): "hang"}
        )
        supervisor.run(_works())
        assert supervisor.stats["reaped"] >= 1
        assert journal.segments[0].rows == tuple(ROWS[0])
        assert journal.stats()["duplicate_commits"] == 0

    def test_heartbeat_extends_the_lease(self, tmp_path):
        clock = FakeClock()
        journal, transport, supervisor = _run(
            tmp_path, {(0, 0): "slow:12"}, clock=clock
        )
        # The worker never "completes" within lease_timeout of its grant,
        # but keeps heartbeating — the lease must not be reaped.
        original_poll = transport.poll

        def poll(handle):
            if handle.work.index == 0:
                transport.heartbeats[0] = clock.now
            return original_poll(handle)

        transport.poll = poll
        supervisor.run(_works())
        assert supervisor.stats["reaped"] == 0

    def test_exhausted_regrants_raise_stage_timeout(self, tmp_path):
        journal, transport, supervisor = _run(
            tmp_path,
            {0: "hang"},
            config=SupervisorConfig(
                lease_timeout=1.0, poll_interval=0.25, max_regrants=2
            ),
        )
        with pytest.raises(StageTimeout, match="hung through 3 grants"):
            supervisor.run(_works())
        assert transport.closed == "force"
        # Healthy segments committed before the raise stay durable.
        assert set(journal.segments) >= {1, 2}


class TestFailures:
    def test_nonretryable_failure_raises_typed_error(self, tmp_path):
        journal, transport, supervisor = _run(tmp_path, {1: "fail"})
        with pytest.raises(InputError, match="poison segment"):
            supervisor.run(_works())
        assert transport.closed == "force"
        assert 1 not in journal.segments

    def test_retryable_crash_is_regranted(self, tmp_path):
        journal, transport, supervisor = _run(
            tmp_path, {(2, 0): "crash", (2, 1): "ok"}
        )
        supervisor.run(_works())
        assert supervisor.stats["worker_failures"] == 1
        assert supervisor.stats["regrants"] == 1
        journal.mark_complete()

    def test_crash_storm_past_max_regrants_raises(self, tmp_path):
        journal, transport, supervisor = _run(
            tmp_path,
            {2: "crash"},
            config=SupervisorConfig(
                lease_timeout=1.0, poll_interval=0.25, max_regrants=1
            ),
        )
        with pytest.raises(ReproError, match="worker killed"):
            supervisor.run(_works())


class TestDeadlineAndDrain:
    def test_run_deadline_raises_with_journal_intact(self, tmp_path):
        journal, transport, supervisor = _run(
            tmp_path,
            {0: "hang", 1: "hang", 2: "hang"},
            config=SupervisorConfig(
                lease_timeout=50.0,
                poll_interval=0.25,
                run_deadline=2.0,
                max_regrants=99,
            ),
        )
        with pytest.raises(StageTimeout, match="deadline"):
            supervisor.run(_works())
        assert transport.closed == "force"

    def test_drain_commits_in_flight_then_interrupts(self, tmp_path):
        drain = threading.Event()
        journal, transport, supervisor = _run(
            tmp_path, {0: "slow:2", 1: "slow:2", 2: "slow:2"}, drain_event=drain
        )
        # The signal lands once work is in flight (after the first grants).
        original_submit = transport.submit

        def submit(work):
            drain.set()
            return original_submit(work)

        transport.submit = submit
        with pytest.raises(RunInterrupted, match="--resume"):
            supervisor.run(_works())
        assert supervisor.stats["drained"] is True
        # The two in-flight leases (capacity 2) commit; nothing new grants.
        assert sorted(journal.segments) == [0, 1]
        assert transport.closed == "clean"

    def test_drain_with_hung_worker_gives_up_after_grace(self, tmp_path):
        drain = threading.Event()
        journal, transport, supervisor = _run(
            tmp_path,
            {0: "slow:2", 1: "hang"},
            config=SupervisorConfig(
                lease_timeout=50.0, poll_interval=0.25, drain_timeout=3.0
            ),
            drain_event=drain,
        )
        original_submit = transport.submit

        def submit(work):
            drain.set()
            return original_submit(work)

        transport.submit = submit
        with pytest.raises(RunInterrupted):
            supervisor.run(_works())
        assert 0 in journal.segments
        assert 1 not in journal.segments
        assert transport.closed == "force"

    def test_request_drain_equals_event(self, tmp_path):
        journal, transport, supervisor = _run(tmp_path, {0: "slow:2"})
        supervisor.request_drain()
        with pytest.raises(RunInterrupted):
            supervisor.run(_works())


class TestPlanSegments:
    def test_plan_is_contiguous_and_worker_independent(self):
        costs = [3, 1, 4, 1, 5, 9, 2, 6]
        plan = plan_segments(costs, 3)
        assert plan[0].start == 0
        assert plan[-1].stop == len(costs)
        for left, right in zip(plan, plan[1:]):
            assert left.stop == right.start
        assert len(plan) == 3  # ceil(8 / 3)

    def test_rejects_bad_segment_items(self):
        with pytest.raises(ValueError):
            plan_segments([1, 2], 0)

    def test_empty_corpus(self):
        assert plan_segments([], 4) == []


class TestGracefulShutdown:
    def test_handler_sets_event_and_runs_callback(self):
        import os
        import signal

        calls = []
        with GracefulShutdown(
            (signal.SIGUSR1,), on_signal=lambda: calls.append(1)
        ) as shutdown:
            os.kill(os.getpid(), signal.SIGUSR1)
            assert shutdown.requested
            assert shutdown.signal_name == "SIGUSR1"
            assert calls == [1]
        # Handler restored on exit.
        assert signal.getsignal(signal.SIGUSR1) != shutdown._handle

    def test_second_signal_escalates(self):
        import signal

        with GracefulShutdown((signal.SIGUSR2,)) as shutdown:
            assert signal.getsignal(signal.SIGUSR2) == shutdown._handle
            shutdown._handle(signal.SIGUSR2, None)
            # After the first delivery the original disposition is back.
            assert signal.getsignal(signal.SIGUSR2) != shutdown._handle
