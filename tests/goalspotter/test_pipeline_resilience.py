"""Chaos suite: the pipeline under injected faults and malformed input.

Property tested (ISSUE 2): under any injected fault pattern,
``process_reports(on_error="skip")`` returns exactly the records of the
non-faulted documents in order, and ``"degrade"`` never returns fewer
records than ``"skip"``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import DetailExtractor
from repro.datasets.reports import Page, SustainabilityReport, TextBlock
from repro.goalspotter.pipeline import GoalSpotter
from repro.runtime.errors import InputError
from repro.runtime.resilience import FaultInjector, FaultSpec, RetryPolicy

pytestmark = pytest.mark.chaos

FAST_RETRY = RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0)


class StubDetector:
    """Deterministic detector: flags blocks containing a % sign."""

    class config:
        threshold = 0.5

    def predict_proba(self, texts):
        return np.array([0.9 if "%" in t else 0.1 for t in texts])


class StubExtractor(DetailExtractor):
    name = "stub"

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {
            "Action": "Reduce",
            "Amount": "20%",
            "Qualifier": text[:10],
            "Baseline": "",
            "Deadline": "",
        }


class PoisonedExtractor(StubExtractor):
    """Fails (every attempt) on any unit mentioning a poisoned doc tag."""

    def __init__(self, poisoned_tags):
        self.poisoned_tags = set(poisoned_tags)

    def extract_batch(self, texts):
        for text in texts:
            if any(tag in text for tag in self.poisoned_tags):
                raise ValueError(f"poisoned unit: {text[:30]}")
        return [self.extract(text) for text in texts]

    def extract(self, text):
        if any(tag in text for tag in self.poisoned_tags):
            raise ValueError(f"poisoned unit: {text[:30]}")
        return super().extract(text)


def make_corpus(num_docs, blocks_per_doc=3):
    """Each doc gets objective blocks tagged with its own identity."""
    reports = []
    for doc in range(num_docs):
        blocks = [
            TextBlock(f"cut waste 5% [tag-{doc:03d}] block {b}", True)
            for b in range(blocks_per_doc)
        ]
        blocks.append(TextBlock("narrative noise, nothing here", False))
        reports.append(
            SustainabilityReport(
                company=f"C{doc % 3}",
                report_id=f"doc-{doc:03d}",
                pages=[Page(blocks=blocks)],
            )
        )
    return reports


def make_pipeline(extractor, **kwargs):
    kwargs.setdefault("retry_policy", FAST_RETRY)
    return GoalSpotter(StubDetector(), extractor, **kwargs)


class TestFaultIsolationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        num_docs=st.integers(min_value=1, max_value=6),
        faulted=st.sets(st.integers(min_value=0, max_value=5)),
    )
    def test_skip_returns_exactly_the_non_faulted_docs_in_order(
        self, num_docs, faulted
    ):
        faulted = {doc for doc in faulted if doc < num_docs}
        tags = {f"tag-{doc:03d}" for doc in faulted}
        corpus = make_corpus(num_docs)

        clean = make_pipeline(StubExtractor())
        expected = [
            record
            for record in clean.process_reports(corpus)
            if record.report_id not in {f"doc-{d:03d}" for d in faulted}
        ]

        pipeline = make_pipeline(PoisonedExtractor(tags))
        records = pipeline.process_reports(corpus, on_error="skip")

        assert [
            (r.company, r.report_id, r.page, r.objective, r.details, r.score)
            for r in records
        ] == [
            (r.company, r.report_id, r.page, r.objective, r.details, r.score)
            for r in expected
        ]
        assert all(r.status == "ok" for r in records)
        assert sorted(pipeline.quarantine.report_ids()) == sorted(
            f"doc-{d:03d}" for d in faulted
        )

    @settings(max_examples=25, deadline=None)
    @given(
        num_docs=st.integers(min_value=1, max_value=6),
        faulted=st.sets(st.integers(min_value=0, max_value=5)),
        with_fallback=st.booleans(),
    )
    def test_degrade_never_returns_fewer_records_than_skip(
        self, num_docs, faulted, with_fallback
    ):
        faulted = {doc for doc in faulted if doc < num_docs}
        tags = {f"tag-{doc:03d}" for doc in faulted}
        corpus = make_corpus(num_docs)

        skip_pipeline = make_pipeline(PoisonedExtractor(tags))
        skip_records = skip_pipeline.process_reports(corpus, on_error="skip")

        fallback = StubExtractor() if with_fallback else None
        degrade_pipeline = make_pipeline(
            PoisonedExtractor(tags), fallback_extractor=fallback
        )
        degrade_records = degrade_pipeline.process_reports(
            corpus, on_error="degrade"
        )

        assert len(degrade_records) >= len(skip_records)
        # Degrade mode yields records for every document.
        assert {r.report_id for r in degrade_records} == {
            report.report_id for report in corpus
        }
        expected_status = "degraded" if with_fallback else "failed"
        for record in degrade_records:
            if record.report_id in {f"doc-{d:03d}" for d in faulted}:
                assert record.status == expected_status
            else:
                assert record.status == "ok"


class TestAcceptanceScenario:
    def test_20_percent_extract_faults_degrade_completes(self):
        """ISSUE 2 acceptance: seeded injector failing 20% of extract
        calls; degrade completes with records for every doc, recoverable
        faults retried (not quarantined), stats observable."""
        corpus = make_corpus(20)
        # Call #1 is the optimistic corpus-batched call: fault it so the
        # run drops to per-document isolation, where every document's
        # extract call then fails with probability 0.2.
        injector = FaultInjector(
            [
                FaultSpec(stage="extract", nth_calls=(1,)),
                FaultSpec(stage="extract", rate=0.2),
            ],
            seed=11,
        )
        pipeline = make_pipeline(
            StubExtractor(),
            fallback_extractor=StubExtractor(),
            fault_injector=injector,
            retry_policy=RetryPolicy(
                max_retries=4, base_delay=0.0, jitter=0.0
            ),
        )
        records = pipeline.process_reports(corpus, on_error="degrade")
        assert {r.report_id for r in records} == {
            report.report_id for report in corpus
        }
        assert len(pipeline.quarantine) == 0  # everything was recoverable
        stats = pipeline.last_run_stats
        assert injector.injected("extract") > 0
        assert stats["retries"] > 0
        assert stats["failures"] >= stats["retries"]
        assert stats["degraded_records"] == sum(
            1 for r in records if r.status == "degraded"
        )
        assert stats["quarantined_documents"] == 0
        assert stats["on_error"] == "degrade"
        assert not stats["fast_path"]

    def test_clean_run_stays_on_fast_path(self):
        corpus = make_corpus(4)
        pipeline = make_pipeline(StubExtractor())
        records = pipeline.process_reports(corpus, on_error="degrade")
        stats = pipeline.last_run_stats
        assert stats["fast_path"]
        assert stats["retries"] == 0
        assert stats["failures"] == 0
        assert all(r.status == "ok" for r in records)

    def test_nan_logits_classified_and_degraded(self):
        class NanDetectorModelExtractor(StubExtractor):
            """Extractor whose first batch call trips the NaN guard."""

            def __init__(self):
                self.calls = 0

            def extract_batch(self, texts):
                self.calls += 1
                if self.calls <= 4:
                    from repro.runtime.errors import NumericalError

                    raise NumericalError("nan in logits", stage="forward")
                return super().extract_batch(texts)

        pipeline = make_pipeline(
            NanDetectorModelExtractor(),
            retry_policy=RetryPolicy(max_retries=0, base_delay=0.0),
        )
        records = pipeline.process_reports(make_corpus(2), on_error="degrade")
        assert records
        assert all(r.status == "failed" for r in records)
        assert all(
            all(value == "" for value in r.details.values()) for r in records
        )


class TestInputHandling:
    def test_raise_mode_rejects_malformed_blocks(self):
        report = SustainabilityReport(
            "ACME",
            "bad-doc",
            pages=[Page(blocks=[TextBlock(None, False)])],
        )
        pipeline = make_pipeline(StubExtractor())
        with pytest.raises(InputError) as excinfo:
            pipeline.process_reports([report])
        assert excinfo.value.report_id == "bad-doc"
        assert excinfo.value.page == 0

    def test_raise_mode_rejects_empty_report(self):
        pipeline = make_pipeline(StubExtractor())
        with pytest.raises(InputError):
            pipeline.process_reports(
                [SustainabilityReport("ACME", "empty", pages=[])]
            )

    def test_skip_mode_sanitizes_and_quarantines_empty(self):
        good = make_corpus(1)[0]
        bad_block = SustainabilityReport(
            "ACME",
            "dirty",
            pages=[
                Page(blocks=[TextBlock(None, False), TextBlock("ok 5%", True)])
            ],
        )
        empty = SustainabilityReport(
            "ACME",
            "hollow",
            pages=[Page(blocks=[TextBlock(None, False)])],
        )
        pipeline = make_pipeline(StubExtractor())
        records = pipeline.process_reports(
            [good, bad_block, empty], on_error="skip"
        )
        assert {r.report_id for r in records} == {good.report_id, "dirty"}
        assert pipeline.quarantine.report_ids() == ["hollow"]
        stats = pipeline.last_run_stats
        assert stats["sanitized_blocks"] >= 1
        assert stats["quarantined_documents"] == 1

    def test_invalid_on_error_rejected(self):
        pipeline = make_pipeline(StubExtractor())
        with pytest.raises(ValueError):
            pipeline.process_reports([], on_error="explode")
        with pytest.raises(ValueError):
            GoalSpotter(StubDetector(), StubExtractor(), on_error="explode")

    def test_detect_stage_failure_quarantines_under_degrade(self):
        class BrokenDetector(StubDetector):
            def predict_proba(self, texts):
                raise RuntimeError("detector weights corrupted")

        pipeline = GoalSpotter(
            BrokenDetector(),
            StubExtractor(),
            retry_policy=FAST_RETRY,
        )
        records = pipeline.process_reports(make_corpus(2), on_error="degrade")
        assert records == []
        assert len(pipeline.quarantine) == 2
        for entry in pipeline.quarantine:
            assert entry.stage == "detect"
            assert entry.error.attempts == 3
