"""Tests for the integrated GoalSpotter pipeline."""

import numpy as np
import pytest

from repro.core.base import DetailExtractor
from repro.datasets.reports import ReportGenerator
from repro.goalspotter.pipeline import ExtractedRecord, GoalSpotter


class StubDetector:
    """Deterministic detector: flags blocks containing a % sign or year."""

    class config:
        threshold = 0.5

    def predict_proba(self, texts):
        return np.array(
            [0.9 if ("%" in t or "20" in t) else 0.1 for t in texts]
        )


class StubExtractor(DetailExtractor):
    name = "stub"

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {"Action": "Reduce", "Amount": "", "Qualifier": "",
                "Baseline": "", "Deadline": ""}


@pytest.fixture
def pipeline():
    return GoalSpotter(StubDetector(), StubExtractor())


@pytest.fixture
def report():
    return ReportGenerator(seed=1).generate_report("ACME", "r0", 6, 4)


class TestGoalSpotter:
    def test_records_have_provenance(self, pipeline, report):
        records = pipeline.process_report(report)
        assert records
        for record in records:
            assert record.company == "ACME"
            assert record.report_id == "r0"
            assert 0 <= record.page < report.num_pages

    def test_empty_corpus(self, pipeline):
        assert pipeline.process_reports([]) == []

    def test_details_attached(self, pipeline, report):
        records = pipeline.process_report(report)
        assert all(r.details["Action"] == "Reduce" for r in records)

    def test_scores_above_threshold(self, pipeline, report):
        records = pipeline.process_report(report)
        assert all(r.score >= 0.5 for r in records)

    def test_top_records_per_company(self):
        records = [
            ExtractedRecord("A", "r", 0, f"obj {i}", {}, score=i / 10)
            for i in range(5)
        ] + [
            ExtractedRecord("B", "r", 0, "other", {}, score=0.7)
        ]
        top = GoalSpotter.top_records_per_company(records, top_k=2)
        assert list(top) == ["A", "B"]
        assert len(top["A"]) == 2
        assert top["A"][0].score == 0.4  # highest first

    def test_record_as_row(self):
        record = ExtractedRecord(
            "A", "r", 0, "obj", {"Action": "Cut"}, 0.9
        )
        row = record.as_row(("Action", "Amount"))
        assert row == ["A", "obj", "Cut", ""]

    @pytest.mark.kg
    def test_reporting_year_threads_into_records(self, pipeline, report):
        report.reporting_year = 2023
        assert all(
            record.reporting_year == 2023
            for record in pipeline.process_report(report)
        )
        assert all(
            record.reporting_year == 2023
            for record in pipeline.process_reports([report])
        )

    @pytest.mark.kg
    def test_reporting_year_defaults_to_none(self, pipeline, report):
        records = pipeline.process_reports([report])
        assert records
        assert all(record.reporting_year is None for record in records)


class TestSegmentation:
    def test_segmenting_pipeline_splits_multi_target_blocks(self):
        pipeline = GoalSpotter(StubDetector(), StubExtractor(), segment=True)
        report = ReportGenerator(seed=2).generate_report("ACME", "r", 3, 0)
        # Inject a known multi-target objective block.
        from repro.datasets.reports import TextBlock

        report.pages[0].blocks.append(
            TextBlock(
                text=(
                    "Reduce waste by 20% by 2030, and expand renewable "
                    "electricity across all sites."
                ),
                is_objective=True,
            )
        )
        records = pipeline.process_report(report)
        reduce_records = [r for r in records if "Reduce waste" in r.objective]
        expand_records = [r for r in records if "expand renewable" in r.objective]
        assert reduce_records and expand_records
        # Clauses, not the full block, are the extraction units.
        assert all(
            "expand renewable" not in r.objective for r in reduce_records
        )

    def test_non_segmenting_pipeline_keeps_blocks_whole(self):
        pipeline = GoalSpotter(StubDetector(), StubExtractor(), segment=False)
        report = ReportGenerator(seed=2).generate_report("ACME", "r", 3, 2)
        records = pipeline.process_report(report)
        block_texts = {b.text for b in report.blocks()}
        assert all(r.objective in block_texts for r in records)
