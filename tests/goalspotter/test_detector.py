"""Tests for the objective detector."""

import numpy as np
import pytest

from repro.datasets.reports import ReportGenerator
from repro.goalspotter.detector import DetectorConfig, ObjectiveDetector
from repro.models.training import FineTuneConfig


@pytest.fixture(scope="module")
def trained_detector():
    generator = ReportGenerator(seed=0)
    texts, labels = [], []
    rng = np.random.default_rng(0)
    for __ in range(300):
        if rng.random() < 0.5:
            block = generator._objective_block()
        else:
            block = generator._noise_block()
        texts.append(block.text)
        labels.append(int(block.is_objective))
    config = DetectorConfig(
        finetune=FineTuneConfig(epochs=3, learning_rate=1.5e-3)
    )
    return ObjectiveDetector(config).fit(texts, labels), generator


class TestObjectiveDetector:
    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            ObjectiveDetector().fit([], [])

    def test_fit_mismatched_raises(self):
        with pytest.raises(ValueError):
            ObjectiveDetector().fit(["a"], [])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ObjectiveDetector().predict(["x"])

    def test_probabilities_in_range(self, trained_detector):
        detector, generator = trained_detector
        probs = detector.predict_proba(["Reduce waste by 20% by 2030."])
        assert 0.0 <= probs[0] <= 1.0

    def test_detects_held_out_blocks(self, trained_detector):
        """Accuracy on fresh blocks should be far above chance."""
        detector, generator = trained_detector
        texts, labels = [], []
        for __ in range(100):
            block = (
                generator._objective_block()
                if len(texts) % 2 == 0
                else generator._noise_block()
            )
            texts.append(block.text)
            labels.append(block.is_objective)
        predictions = detector.predict(texts)
        accuracy = np.mean(predictions == np.array(labels))
        assert accuracy > 0.8

    def test_empty_block_text_handled(self, trained_detector):
        detector, __ = trained_detector
        probs = detector.predict_proba(["...", ""])
        assert len(probs) == 2
