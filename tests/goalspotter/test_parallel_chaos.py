"""Chaos under parallelism: faults stay confined to their shard.

Satellite of the parallel runtime: inject faults into exactly one shard
(via ``shard_faults``) and prove the blast radius is that shard alone —
its documents degrade or quarantine, while every other shard's records
are byte-identical to a clean run.
"""

import numpy as np
import pytest

from repro.core.base import DetailExtractor
from repro.datasets.reports import ReportGenerator
from repro.goalspotter.pipeline import STATUS_OK, GoalSpotter
from repro.runtime.errors import ModelError
from repro.runtime.parallel import (
    estimate_report_cost,
    plan_shards,
    process_reports_parallel,
)
from repro.runtime.resilience import FaultSpec

pytestmark = [pytest.mark.parallel, pytest.mark.chaos]

NUM_SHARDS = 3
FAULTED_SHARD = 1


class ChaosDetector:
    class config:
        threshold = 0.5

    def predict_proba(self, texts):
        return np.array(
            [0.9 if ("%" in t or "20" in t) else 0.1 for t in texts]
        )


class ChaosExtractor(DetailExtractor):
    name = "chaos-stub"

    def fit(self, objectives):
        return self

    def extract(self, text):
        return {"Action": text[:10], "Amount": str(len(text)),
                "Qualifier": "", "Baseline": "", "Deadline": ""}


def _corpus():
    generator = ReportGenerator(seed=23)
    return [
        generator.generate_report(f"Chaos-{i}", f"c{i}", 2, 2)
        for i in range(7)
    ]


def _pipeline(**kwargs):
    return GoalSpotter(ChaosDetector(), ChaosExtractor(), **kwargs)


def _shard_membership(corpus):
    """report_id -> shard index, replaying the runtime's own planner."""
    costs = [estimate_report_cost(report) for report in corpus]
    membership = {}
    for shard in plan_shards(costs, NUM_SHARDS):
        for report in corpus[shard.start : shard.stop]:
            membership[report.report_id] = shard.index
    return membership


@pytest.fixture(scope="module")
def corpus():
    return _corpus()


@pytest.fixture(scope="module")
def clean_records(corpus):
    return process_reports_parallel(
        _pipeline(), corpus, workers=2, num_shards=NUM_SHARDS
    )


class TestShardFaultIsolation:
    def test_extract_faults_degrade_only_the_targeted_shard(
        self, corpus, clean_records
    ):
        membership = _shard_membership(corpus)
        assert set(membership.values()) == set(range(NUM_SHARDS))

        pipeline = _pipeline(on_error="degrade")
        chaotic = process_reports_parallel(
            pipeline,
            corpus,
            workers=2,
            num_shards=NUM_SHARDS,
            shard_faults={
                FAULTED_SHARD: [
                    FaultSpec(stage="extract", error="model", rate=1.0)
                ]
            },
        )

        clean_by_shard = {}
        for record in clean_records:
            clean_by_shard.setdefault(
                membership[record.report_id], []
            ).append(record)
        chaotic_by_shard = {}
        for record in chaotic:
            chaotic_by_shard.setdefault(
                membership[record.report_id], []
            ).append(record)

        for shard_index in range(NUM_SHARDS):
            if shard_index == FAULTED_SHARD:
                # Blast radius: every record of the faulted shard left the
                # ok path (degraded details, flagged status).
                assert chaotic_by_shard[shard_index]
                assert all(
                    record.status != STATUS_OK
                    for record in chaotic_by_shard[shard_index]
                )
            else:
                # Untouched shards are byte-identical to the clean run.
                assert (
                    chaotic_by_shard[shard_index]
                    == clean_by_shard[shard_index]
                )
        assert len(pipeline.quarantine) == 0  # degraded, not dropped

    def test_detect_faults_quarantine_only_the_targeted_shard(
        self, corpus, clean_records
    ):
        membership = _shard_membership(corpus)
        pipeline = _pipeline(on_error="skip")
        chaotic = process_reports_parallel(
            pipeline,
            corpus,
            workers=2,
            num_shards=NUM_SHARDS,
            shard_faults={
                FAULTED_SHARD: [
                    FaultSpec(stage="detect", error="model", rate=1.0)
                ]
            },
        )
        faulted_ids = {
            report_id
            for report_id, shard in membership.items()
            if shard == FAULTED_SHARD
        }
        # Every faulted-shard document is quarantined, nothing else is.
        assert set(pipeline.quarantine.report_ids()) == faulted_ids
        # Surviving records are exactly the clean run minus that shard.
        expected = [
            record
            for record in clean_records
            if record.report_id not in faulted_ids
        ]
        assert chaotic == expected
        stats = pipeline.last_run_stats
        assert stats["quarantined_documents"] == len(faulted_ids)

    def test_raise_mode_surfaces_lowest_faulted_shard_error(self, corpus):
        pipeline = _pipeline()
        with pytest.raises(ModelError) as excinfo:
            process_reports_parallel(
                pipeline,
                corpus,
                workers=2,
                num_shards=NUM_SHARDS,
                shard_faults={
                    FAULTED_SHARD: [
                        FaultSpec(stage="extract", error="model", rate=1.0)
                    ],
                    FAULTED_SHARD + 1: [
                        FaultSpec(stage="detect", error="model", rate=1.0)
                    ],
                },
            )
        # Shard order decides which failure surfaces: the extract fault
        # lives in the lower-indexed shard, so it wins deterministically.
        assert excinfo.value.injected
        assert excinfo.value.stage == "extract"
