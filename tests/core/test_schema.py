"""Tests for the AnnotatedObjective schema."""

import pytest

from repro.core.schema import (
    AnnotatedObjective,
    NETZEROFACTS_FIELDS,
    SUSTAINABILITY_FIELDS,
)


class TestFieldSets:
    def test_paper_field_inventories(self):
        assert SUSTAINABILITY_FIELDS == (
            "Action", "Amount", "Qualifier", "Baseline", "Deadline",
        )
        assert NETZEROFACTS_FIELDS == (
            "TargetValue", "ReferenceYear", "TargetYear",
        )


class TestAnnotatedObjective:
    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            AnnotatedObjective("")
        with pytest.raises(ValueError):
            AnnotatedObjective("   ")

    def test_present_details_drops_empty(self):
        objective = AnnotatedObjective(
            "x", {"Action": "do", "Deadline": "", "Baseline": "  "}
        )
        assert objective.present_details() == {"Action": "do"}

    def test_has_detail(self):
        objective = AnnotatedObjective("x", {"Action": "do", "Amount": ""})
        assert objective.has_detail("Action")
        assert not objective.has_detail("Amount")
        assert not objective.has_detail("Deadline")

    def test_details_copied_defensively(self):
        source = {"Action": "do"}
        objective = AnnotatedObjective("x", source)
        source["Action"] = "mutated"
        assert objective.details["Action"] == "do"
