"""Tests for word-label <-> subword-piece projection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alignment import (
    pieces_to_word_labels,
    word_labels_to_piece_targets,
)
from repro.core.iob import LabelScheme
from repro.nn.loss import IGNORE_INDEX

SCHEME = LabelScheme(["A", "B"])


class TestWordLabelsToPieceTargets:
    def test_first_strategy_marks_continuations_ignored(self):
        # word 0 -> 2 pieces, word 1 -> 1 piece.
        targets = word_labels_to_piece_targets(
            ["B-A", "O"], [0, 0, 1], SCHEME, "first"
        )
        assert targets == [SCHEME.id_of("B-A"), IGNORE_INDEX, SCHEME.id_of("O")]

    def test_all_strategy_converts_b_to_i(self):
        targets = word_labels_to_piece_targets(
            ["B-A"], [0, 0, 0], SCHEME, "all"
        )
        assert targets == [
            SCHEME.id_of("B-A"), SCHEME.id_of("I-A"), SCHEME.id_of("I-A"),
        ]

    def test_all_strategy_repeats_inside_and_outside(self):
        targets = word_labels_to_piece_targets(
            ["I-B", "O"], [0, 0, 1, 1], SCHEME, "all"
        )
        assert targets == [
            SCHEME.id_of("I-B"), SCHEME.id_of("I-B"),
            SCHEME.id_of("O"), SCHEME.id_of("O"),
        ]

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            word_labels_to_piece_targets(["O"], [0], SCHEME, "middle")

    def test_word_id_out_of_range(self):
        with pytest.raises(IndexError):
            word_labels_to_piece_targets(["O"], [0, 1], SCHEME, "first")


class TestPiecesToWordLabels:
    def test_first_piece_wins(self):
        labels = pieces_to_word_labels(
            [SCHEME.id_of("B-A"), SCHEME.id_of("O"), SCHEME.id_of("O")],
            [0, 0, 1],
            SCHEME,
            num_words=2,
        )
        assert labels == ["B-A", "O"]

    def test_truncated_words_default_outside(self):
        labels = pieces_to_word_labels(
            [SCHEME.id_of("B-B")], [0], SCHEME, num_words=3
        )
        assert labels == ["B-B", "O", "O"]

    def test_piece_beyond_num_words_ignored(self):
        labels = pieces_to_word_labels(
            [SCHEME.id_of("B-A"), SCHEME.id_of("B-B")],
            [0, 5],
            SCHEME,
            num_words=1,
        )
        assert labels == ["B-A"]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["O", "B-A", "I-A", "B-B", "I-B"]),
            st.integers(1, 4),  # pieces per word
        ),
        min_size=1,
        max_size=12,
    )
)
def test_projection_roundtrip_property(word_specs):
    """project -> fold-back recovers the word labels (first strategy)."""
    word_labels = [label for label, __ in word_specs]
    word_ids = [
        word_index
        for word_index, (__, pieces) in enumerate(word_specs)
        for __ in range(pieces)
    ]
    targets = word_labels_to_piece_targets(
        word_labels, word_ids, SCHEME, "first"
    )
    # Replace IGNORE_INDEX with O id, as a model prediction would.
    predicted = [
        t if t != IGNORE_INDEX else SCHEME.id_of("O") for t in targets
    ]
    recovered = pieces_to_word_labels(
        predicted, word_ids, SCHEME, num_words=len(word_labels)
    )
    assert recovered == word_labels
