"""Cross-matcher coverage properties on generated corpora."""

from hypothesis import given, settings, strategies as st

from repro.core.matching import ExactMatcher, FuzzyMatcher, LowercaseMatcher
from repro.core.weak_labeling import WeakLabelingStats, weakly_label_objective
from repro.datasets.generator import ObjectiveGenerator


def _coverage(objectives, matcher):
    stats = WeakLabelingStats()
    for objective in objectives:
        weakly_label_objective(objective, matcher=matcher, stats=stats)
    return stats.coverage


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_fuzzy_dominates_lowercase_dominates_exact(seed):
    """Coverage is monotone in matcher leniency on any generated corpus."""
    objectives = ObjectiveGenerator(seed=seed).generate_many(60)
    exact = _coverage(objectives, ExactMatcher())
    lowercase = _coverage(objectives, LowercaseMatcher())
    fuzzy = _coverage(objectives, FuzzyMatcher())
    assert exact <= lowercase <= fuzzy


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_exact_coverage_is_high(seed):
    """Annotations are near-verbatim, so even exact matching covers most."""
    objectives = ObjectiveGenerator(seed=seed).generate_many(60)
    assert _coverage(objectives, ExactMatcher()) > 0.9
