"""Tests for exact/lowercase/fuzzy token matchers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.matching import (
    ExactMatcher,
    FuzzyMatcher,
    LowercaseMatcher,
    _edit_distance_at_most_one,
)


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("abc", "abc", True),
            ("abc", "abd", True),   # substitution
            ("abc", "abcd", True),  # insertion
            ("abcd", "abc", True),  # deletion
            ("abc", "axd", False),  # two edits
            ("abc", "abcde", False),
            ("", "a", True),
            ("", "", True),
        ],
    )
    def test_cases(self, a, b, expected):
        assert _edit_distance_at_most_one(a, b) is expected

    @given(st.text(max_size=10))
    def test_reflexive(self, word):
        assert _edit_distance_at_most_one(word, word)

    @given(st.text(min_size=1, max_size=10), st.integers(0, 9))
    def test_single_deletion_always_matches(self, word, position):
        position = position % len(word)
        shorter = word[:position] + word[position + 1:]
        assert _edit_distance_at_most_one(word, shorter)


class TestExactMatcher:
    def test_find_basic(self):
        matcher = ExactMatcher()
        assert matcher.find(["a", "b", "c", "b"], ["b", "c"]) == 1

    def test_find_not_present(self):
        assert ExactMatcher().find(["a", "b"], ["z"]) == -1

    def test_find_empty_needle(self):
        assert ExactMatcher().find(["a"], []) == -1

    def test_needle_longer_than_haystack(self):
        assert ExactMatcher().find(["a"], ["a", "b"]) == -1

    def test_case_sensitive(self):
        assert ExactMatcher().find(["Reduce"], ["reduce"]) == -1

    def test_forbidden_positions_skip_match(self):
        matcher = ExactMatcher()
        haystack = ["x", "a", "b", "a", "b"]
        # First occurrence is blocked; matcher must take the second.
        assert matcher.find(
            haystack, ["a", "b"], forbidden=[False, True, False, False, False]
        ) == 3

    def test_all_occurrences_forbidden(self):
        matcher = ExactMatcher()
        assert matcher.find(["a"], ["a"], forbidden=[True]) == -1

    def test_find_all(self):
        matcher = ExactMatcher()
        assert matcher.find_all(["a", "b", "a", "b"], ["a", "b"]) == [0, 2]


class TestLowercaseMatcher:
    def test_case_insensitive(self):
        assert LowercaseMatcher().find(["Reduce"], ["reduce"]) == 0


class TestFuzzyMatcher:
    def test_exact_still_matches(self):
        assert FuzzyMatcher().token_match("carbon", "carbon")

    def test_case_insensitive(self):
        assert FuzzyMatcher().token_match("Carbon", "carbon")

    def test_plural_suffix(self):
        assert FuzzyMatcher().token_match("emissions", "emission")

    def test_gerund_suffix(self):
        assert FuzzyMatcher().token_match("reducing", "reduce")

    def test_typo_on_long_token(self):
        assert FuzzyMatcher().token_match("sustainabilty", "sustainability")

    def test_no_typo_tolerance_on_short_tokens(self):
        assert not FuzzyMatcher().token_match("cat", "cut")

    def test_completely_different(self):
        assert not FuzzyMatcher().token_match("water", "carbon")

    def test_find_with_inflection(self):
        matcher = FuzzyMatcher()
        haystack = ["We", "are", "reducing", "emissions"]
        assert matcher.find(haystack, ["reduce"]) == 2
