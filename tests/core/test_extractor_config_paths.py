"""Config-dependent behaviour of WeakSupervisionExtractor (no training)."""

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.core.schema import AnnotatedObjective
from repro.datasets.generator import GeneratorConfig, ObjectiveGenerator


def _divergent_corpus():
    """Objectives whose annotations often differ lexically from the text."""
    config = GeneratorConfig(annotation_divergence=0.5)
    return ObjectiveGenerator(config, seed=11).generate_many(120)


class TestMatcherConfig:
    def test_fuzzy_config_covers_more_than_exact(self):
        objectives = _divergent_corpus()
        coverages = {}
        for matcher in ("exact", "fuzzy"):
            extractor = WeakSupervisionExtractor(
                ExtractorConfig(matcher=matcher)
            )
            extractor.prepare_weak_labels(objectives)
            coverages[matcher] = extractor.weak_stats.coverage
        assert coverages["fuzzy"] > coverages["exact"]


class TestNormalizationConfig:
    def test_normalization_folds_unicode(self):
        objective = AnnotatedObjective(
            "Reduce CO₂ emissions by 20% – by 2030.",
            {"Action": "Reduce", "Qualifier": "CO2 emissions"},
        )
        normalizing = WeakSupervisionExtractor(ExtractorConfig())
        words, labels = normalizing.prepare_weak_labels([objective])
        assert "CO2" in words[0]
        assert "B-Qualifier" in labels[0]

        raw = WeakSupervisionExtractor(ExtractorConfig(normalize=False))
        __, raw_labels = raw.prepare_weak_labels([objective])
        assert "B-Qualifier" not in raw_labels[0]  # CO₂ != CO2 unnormalized


class TestWeakLabelOutputs:
    def test_labels_parallel_and_valid(self):
        extractor = WeakSupervisionExtractor(ExtractorConfig())
        objectives = ObjectiveGenerator(seed=4).generate_many(50)
        words, labels = extractor.prepare_weak_labels(objectives)
        from repro.core.iob import iob_to_spans

        assert len(words) == len(labels) == 50
        for word_seq, label_seq in zip(words, labels):
            assert len(word_seq) == len(label_seq)
            iob_to_spans(label_seq, repair=False)
