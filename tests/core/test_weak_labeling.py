"""Tests for Algorithm 1 (weak supervision token labeling)."""

from hypothesis import given, settings, strategies as st

from repro.core.iob import iob_to_spans
from repro.core.matching import FuzzyMatcher
from repro.core.schema import AnnotatedObjective
from repro.core.weak_labeling import (
    WeakLabelingStats,
    weak_token_labels,
    weakly_label_objective,
)
from repro.datasets.generator import ObjectiveGenerator


class TestPaperWorkedExample:
    def test_table3_reproduced_exactly(self, paper_example):
        """The paper's Table 3, token by token."""
        tokens, labels = weakly_label_objective(paper_example)
        expected = [
            ("We", "O"), ("co", "O"), ("-", "O"), ("founded", "O"),
            ("The", "O"), ("Climate", "O"), ("Pledge", "O"), (",", "O"),
            ("a", "O"), ("commitment", "O"), ("to", "O"),
            ("reach", "B-Action"),
            ("net", "B-Amount"), ("-", "I-Amount"), ("zero", "I-Amount"),
            ("carbon", "B-Qualifier"),
            ("by", "O"),
            ("2040", "B-Deadline"),
            (".", "O"),
        ]
        assert [(t.text, l) for t, l in zip(tokens, labels)] == expected

    def test_table1_rows_fully_matched(self, table1_objectives):
        stats = WeakLabelingStats()
        for objective in table1_objectives:
            weakly_label_objective(objective, stats=stats)
        assert stats.coverage == 1.0


class TestWeakTokenLabels:
    def test_empty_annotations_all_outside(self):
        labels = weak_token_labels(["a", "b"], {})
        assert labels == ["O", "O"]

    def test_labels_parallel_to_tokens(self):
        labels = weak_token_labels(["x"] * 7, {"Action": "x"})
        assert len(labels) == 7

    def test_unmatched_value_recorded(self):
        stats = WeakLabelingStats()
        labels = weak_token_labels(
            ["nothing", "here"], {"Action": "reduce"}, stats=stats
        )
        assert labels == ["O", "O"]
        assert stats.unmatched == [("Action", "reduce")]
        assert stats.coverage == 0.0

    def test_empty_value_skipped(self):
        labels = weak_token_labels(["a"], {"Action": "  "})
        assert labels == ["O"]

    def test_first_occurrence_wins(self):
        labels = weak_token_labels(
            ["by", "2025", "and", "2025"], {"Deadline": "2025"}
        )
        assert labels == ["O", "B-Deadline", "O", "O"]

    def test_no_overwrite_of_earlier_annotation(self):
        # "20%" appears inside the longer qualifier value; longest-first
        # processing labels the qualifier, and the amount must find its
        # own (different) occurrence or none — never corrupt the qualifier.
        tokens = ["cut", "waste", "by", "20%"]
        labels = weak_token_labels(
            tokens, {"Qualifier": "waste by 20%", "Amount": "20%"}
        )
        assert labels == ["O", "B-Qualifier", "I-Qualifier", "I-Qualifier"]

    def test_shared_year_disambiguation(self):
        # Deadline and baseline share no year here; both must land.
        tokens = "Reduce waste by 20% by 2025 ( baseline 2017 )".split()
        labels = weak_token_labels(
            tokens,
            {"Amount": "20%", "Deadline": "2025", "Baseline": "2017"},
        )
        assert labels[tokens.index("2025")] == "B-Deadline"
        assert labels[tokens.index("2017")] == "B-Baseline"

    def test_multi_token_value_gets_bio_prefixes(self):
        labels = weak_token_labels(
            ["improve", "energy", "use", "now"],
            {"Qualifier": "energy use"},
        )
        assert labels == ["O", "B-Qualifier", "I-Qualifier", "O"]

    def test_stats_accumulate(self):
        stats = WeakLabelingStats()
        weak_token_labels(["a"], {"Action": "a"}, stats=stats)
        weak_token_labels(["b"], {"Action": "zz"}, stats=stats)
        assert stats.annotations_total == 2
        assert stats.annotations_matched == 1
        assert 0.0 < stats.coverage < 1.0

    def test_stats_merge(self):
        a = WeakLabelingStats(2, 1, [("Action", "x")])
        b = WeakLabelingStats(3, 3, [])
        a.merge(b)
        assert a.annotations_total == 5
        assert a.annotations_matched == 4

    def test_fuzzy_matcher_recovers_inflection(self):
        tokens = ["We", "are", "reducing", "waste"]
        labels = weak_token_labels(
            tokens, {"Action": "reduce"}, matcher=FuzzyMatcher()
        )
        assert labels == ["O", "O", "B-Action", "O"]


class TestAlgorithmInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_output_is_valid_iob(self, seed):
        """Algorithm 1 output decodes strictly (no dangling I- labels)."""
        generator = ObjectiveGenerator(seed=seed)
        objective = generator.generate()
        __, labels = weakly_label_objective(objective)
        iob_to_spans(labels, repair=False)  # must not raise

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_one_span_per_annotated_field_at_most(self, seed):
        generator = ObjectiveGenerator(seed=seed)
        objective = generator.generate()
        __, labels = weakly_label_objective(objective)
        spans = iob_to_spans(labels, repair=False)
        fields = [span.field for span in spans]
        assert len(fields) == len(set(fields))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matched_spans_reproduce_annotation_tokens(self, seed):
        """Tokens under a span equal the tokenized annotation value."""
        from repro.text.words import WordTokenizer

        tokenizer = WordTokenizer()
        generator = ObjectiveGenerator(seed=seed)
        objective = generator.generate()
        tokens, labels = weakly_label_objective(objective)
        words = [t.text for t in tokens]
        for span in iob_to_spans(labels, repair=False):
            value = objective.present_details()[span.field]
            assert words[span.start : span.end] == tokenizer.words(value)
