"""Tests for IOB label schemes, encoding, and span conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.core.iob import LabelScheme, Span, iob_to_spans, spans_to_iob


class TestLabelScheme:
    def test_outside_is_zero(self):
        scheme = LabelScheme(["Action"])
        assert scheme.id_of("O") == 0

    def test_label_layout(self):
        scheme = LabelScheme(["A", "B"])
        assert scheme.labels == ("O", "B-A", "I-A", "B-B", "I-B")

    def test_len(self):
        assert len(LabelScheme(["A", "B", "C"])) == 7

    def test_encode_decode_roundtrip(self):
        scheme = LabelScheme(["Action", "Amount"])
        labels = ["O", "B-Action", "I-Action", "B-Amount", "O"]
        assert scheme.decode(scheme.encode(labels)) == labels

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            LabelScheme(["A"]).id_of("B-Z")

    def test_out_of_range_id_raises(self):
        with pytest.raises(IndexError):
            LabelScheme(["A"]).label_of(99)

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            LabelScheme([])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            LabelScheme(["A", "A"])


class TestSpan:
    def test_length(self):
        assert len(Span("A", 2, 5)) == 3

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            Span("A", 3, 3)
        with pytest.raises(ValueError):
            Span("A", -1, 2)


class TestSpansToIob:
    def test_single_span(self):
        labels = spans_to_iob([Span("Action", 1, 3)], length=4)
        assert labels == ["O", "B-Action", "I-Action", "O"]

    def test_adjacent_spans_keep_boundaries(self):
        labels = spans_to_iob(
            [Span("A", 0, 2), Span("B", 2, 3)], length=3
        )
        assert labels == ["B-A", "I-A", "B-B"]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            spans_to_iob([Span("A", 0, 2), Span("B", 1, 3)], length=4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            spans_to_iob([Span("A", 0, 5)], length=3)


class TestIobToSpans:
    def test_simple_decode(self):
        spans = iob_to_spans(["O", "B-A", "I-A", "O", "B-B"])
        assert spans == [Span("A", 1, 3), Span("B", 4, 5)]

    def test_dangling_inside_repaired(self):
        spans = iob_to_spans(["O", "I-A", "I-A"], repair=True)
        assert spans == [Span("A", 1, 3)]

    def test_dangling_inside_strict_raises(self):
        with pytest.raises(ValueError):
            iob_to_spans(["O", "I-A"], repair=False)

    def test_field_switch_inside(self):
        spans = iob_to_spans(["B-A", "I-B"], repair=True)
        assert spans == [Span("A", 0, 1), Span("B", 1, 2)]

    def test_b_after_b_starts_new_span(self):
        spans = iob_to_spans(["B-A", "B-A"])
        assert spans == [Span("A", 0, 1), Span("A", 1, 2)]

    def test_malformed_label_raises(self):
        with pytest.raises(ValueError):
            iob_to_spans(["X-A"])
        with pytest.raises(ValueError):
            iob_to_spans(["Banana"])

    def test_empty_sequence(self):
        assert iob_to_spans([]) == []

    def test_span_reaching_end(self):
        spans = iob_to_spans(["O", "B-A", "I-A"])
        assert spans == [Span("A", 1, 3)]


@given(
    st.lists(
        st.tuples(st.sampled_from(["X", "Y"]), st.integers(0, 8), st.integers(1, 4)),
        max_size=4,
    )
)
def test_spans_iob_roundtrip_property(raw):
    """Non-overlapping spans survive spans->iob->spans exactly."""
    spans = []
    cursor = 0
    for field, gap, width in raw:
        start = cursor + gap
        spans.append(Span(field, start, start + width))
        cursor = start + width + 1  # ensure an O gap between spans
    length = (spans[-1].end + 1) if spans else 5
    labels = spans_to_iob(spans, length)
    assert iob_to_spans(labels, repair=False) == spans
