"""Tests for IOB-constrained Viterbi decoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constrained import (
    constrained_decode,
    start_mask,
    transition_mask,
)
from repro.core.iob import LabelScheme, iob_to_spans

SCHEME = LabelScheme(["A", "B"])
# labels: O=0 B-A=1 I-A=2 B-B=3 I-B=4


def decode_labels(logits):
    return SCHEME.decode(constrained_decode(np.asarray(logits), SCHEME))


class TestMasks:
    def test_inside_requires_open_span(self):
        mask = transition_mask(SCHEME)
        assert mask[SCHEME.id_of("O"), SCHEME.id_of("I-A")] < -1e20
        assert mask[SCHEME.id_of("B-B"), SCHEME.id_of("I-A")] < -1e20
        assert mask[SCHEME.id_of("B-A"), SCHEME.id_of("I-A")] == 0
        assert mask[SCHEME.id_of("I-A"), SCHEME.id_of("I-A")] == 0

    def test_start_mask_blocks_inside(self):
        mask = start_mask(SCHEME)
        assert mask[SCHEME.id_of("I-A")] < -1e20
        assert mask[SCHEME.id_of("B-A")] == 0
        assert mask[SCHEME.id_of("O")] == 0


class TestConstrainedDecode:
    def test_clean_argmax_is_kept(self):
        logits = np.full((3, 5), -5.0)
        logits[0, SCHEME.id_of("B-A")] = 5
        logits[1, SCHEME.id_of("I-A")] = 5
        logits[2, SCHEME.id_of("O")] = 5
        assert decode_labels(logits) == ["B-A", "I-A", "O"]

    def test_dangling_inside_becomes_legal(self):
        """Argmax would emit I-A at position 0; constrained decode cannot."""
        logits = np.full((2, 5), -5.0)
        logits[0, SCHEME.id_of("I-A")] = 5
        logits[0, SCHEME.id_of("B-A")] = 4
        logits[1, SCHEME.id_of("I-A")] = 5
        labels = decode_labels(logits)
        assert labels == ["B-A", "I-A"]
        iob_to_spans(labels, repair=False)  # must be strictly valid

    def test_field_switch_disallowed_mid_span(self):
        logits = np.full((2, 5), -5.0)
        logits[0, SCHEME.id_of("B-B")] = 5
        logits[1, SCHEME.id_of("I-A")] = 5  # illegal continuation
        logits[1, SCHEME.id_of("I-B")] = 4.5
        assert decode_labels(logits) == ["B-B", "I-B"]

    def test_empty_sequence(self):
        assert constrained_decode(np.zeros((0, 5)), SCHEME).shape == (0,)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            constrained_decode(np.zeros((2, 3)), SCHEME)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 12))
    def test_output_always_strictly_valid(self, seed, length):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(length, len(SCHEME)))
        labels = SCHEME.decode(constrained_decode(logits, SCHEME))
        iob_to_spans(labels, repair=False)  # raises on malformed output

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_beats_or_matches_any_valid_greedy_path(self, seed):
        """The decoded path maximizes total logit among valid paths —
        spot-check against the repaired argmax path."""
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(6, len(SCHEME)))
        best = constrained_decode(logits, SCHEME)
        best_score = logits[np.arange(6), best].sum()
        # The all-O path is always valid; it cannot beat the optimum.
        outside_score = logits[:, SCHEME.id_of("O")].sum()
        assert best_score >= outside_score - 1e-9
