"""Tests for CoNLL import/export of weak labels."""

import pytest

from repro.core.conll import (
    export_weak_labels,
    format_conll,
    import_conll,
    parse_conll,
)
from repro.core.schema import AnnotatedObjective


class TestFormatConll:
    def test_paper_table2_shape(self):
        """One token + one label per line, as in the paper's Table 2."""
        text = format_conll(
            [(["Albert", "Einstein", "was"], ["B-PER", "I-PER", "O"])]
        )
        assert text == "Albert\tB-PER\nEinstein\tI-PER\nwas\tO\n"

    def test_blank_line_between_sentences(self):
        text = format_conll(
            [(["a"], ["O"]), (["b"], ["B-X"])]
        )
        assert "\n\n" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_conll([(["a", "b"], ["O"])])

    def test_empty(self):
        assert format_conll([]) == ""


class TestParseConll:
    def test_roundtrip(self):
        sentences = [
            (["Reduce", "waste"], ["B-Action", "O"]),
            (["by", "20%"], ["O", "B-Amount"]),
        ]
        assert parse_conll(format_conll(sentences)) == sentences

    def test_space_separated_fallback(self):
        parsed = parse_conll("token B-X\nother O")
        assert parsed == [(["token", "other"], ["B-X", "O"])]

    def test_multi_column_takes_last(self):
        """Classic CoNLL-2003 has POS/chunk columns; the label is last."""
        parsed = parse_conll("Albert\tNNP\tI-NP\tB-PER")
        assert parsed == [(["Albert"], ["B-PER"])]

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            parse_conll("loneword")

    def test_trailing_sentence_without_blank_line(self):
        parsed = parse_conll("a\tO\nb\tB-X")
        assert len(parsed) == 1


class TestExportImport:
    def test_export_weak_labels_roundtrip(self, tmp_path, paper_example):
        path = tmp_path / "weak.conll"
        count = export_weak_labels([paper_example], path)
        assert count == 1
        sentences = import_conll(path)
        tokens, labels = sentences[0]
        assert tokens[tokens.index("reach")] == "reach"
        assert labels[tokens.index("reach")] == "B-Action"
        assert labels[tokens.index("2040")] == "B-Deadline"

    def test_export_many(self, tmp_path):
        objectives = [
            AnnotatedObjective(f"Cut waste by {i}%.", {"Amount": f"{i}%"})
            for i in range(1, 6)
        ]
        count = export_weak_labels(objectives, tmp_path / "many.conll")
        assert count == 5
        assert len(import_conll(tmp_path / "many.conll")) == 5
