"""Tests for span decoding back to field values."""

import pytest

from repro.core.decoding import decode_details, span_text
from repro.core.iob import Span
from repro.text.words import WordTokenizer

TOKENIZER = WordTokenizer()
FIELDS = ("Action", "Amount", "Qualifier", "Baseline", "Deadline")


def _decode(text, labels, fields=FIELDS):
    tokens = TOKENIZER.tokenize(text)
    return decode_details(text, tokens, labels, fields)


class TestSpanText:
    def test_recovers_source_substring(self):
        text = "reach net-zero carbon"
        tokens = TOKENIZER.tokenize(text)
        # net - zero spans tokens 1..4
        assert span_text(text, tokens, Span("Amount", 1, 4)) == "net-zero"

    def test_out_of_range(self):
        tokens = TOKENIZER.tokenize("a b")
        with pytest.raises(ValueError):
            span_text("a b", tokens, Span("A", 0, 5))


class TestDecodeDetails:
    def test_full_decoding(self):
        text = "Reduce energy consumption by 20% by 2025"
        labels = [
            "B-Action", "B-Qualifier", "I-Qualifier", "O", "B-Amount",
            "O", "B-Deadline",
        ]
        details = _decode(text, labels)
        assert details == {
            "Action": "Reduce",
            "Amount": "20%",
            "Qualifier": "energy consumption",
            "Baseline": "",
            "Deadline": "2025",
        }

    def test_all_outside_gives_empty_fields(self):
        details = _decode("nothing here", ["O", "O"])
        assert all(value == "" for value in details.values())

    def test_hyphenated_value_recovered_verbatim(self):
        text = "reach net-zero now"
        labels = ["O", "B-Amount", "I-Amount", "I-Amount", "O"]
        assert _decode(text, labels)["Amount"] == "net-zero"

    def test_leftmost_span_kept_on_duplicates(self):
        text = "cut 10% then 20%"
        labels = ["O", "B-Amount", "O", "B-Amount"]
        assert _decode(text, labels)["Amount"] == "10%"

    def test_unknown_field_prediction_dropped(self):
        text = "a b"
        labels = ["B-Zzz", "O"]
        details = _decode(text, labels)
        assert all(value == "" for value in details.values())

    def test_length_mismatch_raises(self):
        tokens = TOKENIZER.tokenize("a b c")
        with pytest.raises(ValueError):
            decode_details("a b c", tokens, ["O"], FIELDS)

    def test_repair_of_dangling_inside(self):
        text = "improve water quality"
        labels = ["O", "I-Qualifier", "I-Qualifier"]
        assert _decode(text, labels)["Qualifier"] == "water quality"
