"""Tests for objective segmentation."""

from repro.core.segmentation import (
    segment_objectives,
    split_sentences,
)


class TestSplitSentences:
    def test_simple(self):
        assert split_sentences("One here. Two there.") == [
            "One here.", "Two there.",
        ]

    def test_no_split_inside_numbers(self):
        assert split_sentences("Cut 8.1% of waste.") == ["Cut 8.1% of waste."]

    def test_empty(self):
        assert split_sentences("") == []


class TestSegmentObjectives:
    def test_multi_target_sentence_split(self):
        clauses = segment_objectives(
            "Reduce waste by 20% by 2030, and expand renewable "
            "electricity across all sites."
        )
        assert len(clauses) == 2
        assert clauses[0].startswith("Reduce waste")
        assert clauses[1].startswith("expand renewable")

    def test_qualifier_with_and_not_split(self):
        clauses = segment_objectives(
            "Define sustainability strategies, goals and policies."
        )
        assert len(clauses) == 1

    def test_narrative_prefix_dropped(self):
        clauses = segment_objectives(
            "Climate change is one of the world's greatest crises. "
            "Reduce carbon emissions by 40% by 2035."
        )
        assert any("Reduce carbon" in clause for clause in clauses)
        assert all("greatest crises" not in clause for clause in clauses)

    def test_pure_narrative_kept_as_fallback(self):
        text = "The board met several times last quarter."
        assert segment_objectives(text) == [text]

    def test_semicolon_split(self):
        clauses = segment_objectives(
            "Cut water use by 15%; achieve zero waste to landfill by 2030."
        )
        assert len(clauses) == 2

    def test_clauses_end_with_period(self):
        clauses = segment_objectives(
            "Reduce waste by 20%, and achieve net-zero by 2040."
        )
        assert all(clause.endswith(".") for clause in clauses)
