"""End-to-end cache and quantization integration.

Crosses the layers: the extractor-level result cache under the parallel
sharded runtime (workers=N must stay bitwise-identical to workers=1),
the config-driven cache on the detector, the calibrated quantization
gate at the extractor surface — and, at golden scale, the int8 path
passing its top-label equivalence gate on the frozen 25-report fixture.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.datasets.generator import ObjectiveGenerator
from repro.goalspotter.detector import DetectorConfig, ObjectiveDetector
from repro.models.training import FineTuneConfig
from repro.runtime.errors import QuantizationError
from repro.runtime.parallel import extract_batch_parallel

pytestmark = pytest.mark.cache


@pytest.fixture(scope="module")
def fitted_extractor():
    objectives = ObjectiveGenerator(seed=60).generate_many(40)
    config = ExtractorConfig(
        finetune=FineTuneConfig(epochs=1, learning_rate=1e-3),
        result_cache_capacity=256,
    )
    return WeakSupervisionExtractor(config).fit(objectives)


@pytest.fixture(scope="module")
def boilerplate_texts():
    objectives = ObjectiveGenerator(seed=61).generate_many(12)
    texts = [objective.text for objective in objectives]
    # Heavy repetition across the corpus, interleaved.
    return [texts[index % len(texts)] for index in range(30)]


class TestParallelCacheIdentity:
    @pytest.mark.parallel
    def test_workers_bitwise_identical_with_caching(
        self, fitted_extractor, boilerplate_texts
    ):
        sequential = extract_batch_parallel(
            fitted_extractor, boilerplate_texts, workers=1, num_shards=2
        )
        stats_one = fitted_extractor.last_run_stats
        parallel = extract_batch_parallel(
            fitted_extractor, boilerplate_texts, workers=2, num_shards=2
        )
        stats_two = fitted_extractor.last_run_stats
        assert sequential == parallel
        # Both runs did real cache work and merged it back; every text
        # was looked up exactly once whatever the pool width.
        for stats in (stats_one, stats_two):
            assert (
                stats.result_cache_hits + stats.result_cache_misses
                == len(boilerplate_texts)
            )
            assert stats.result_cache_tokens > 0
        # A single worker's cache persists across its shards, so it may
        # see cross-shard hits a wider pool cannot — that affects only
        # statistics, never values (asserted bitwise above).
        assert stats_one.result_cache_hits >= stats_two.result_cache_hits

    def test_sequential_matches_uncached(
        self, fitted_extractor, boilerplate_texts
    ):
        uncached = WeakSupervisionExtractor(
            dataclasses.replace(
                fitted_extractor.config, result_cache_capacity=0
            ),
            tokenizer=fitted_extractor.tokenizer,
        )
        uncached.model = fitted_extractor.model
        assert fitted_extractor.extract_batch(
            boilerplate_texts
        ) == uncached.extract_batch(boilerplate_texts)
        assert uncached.last_run_stats.result_cache_hits == 0

    def test_run_stats_surface_cache_counters(
        self, fitted_extractor, boilerplate_texts
    ):
        fitted_extractor.extract_batch(boilerplate_texts)
        warm = fitted_extractor.extract_batch(boilerplate_texts)
        stats = fitted_extractor.last_run_stats
        assert stats.result_cache_hits > 0
        assert stats.result_cache_hit_rate > 0.5
        assert stats.as_dict()["result_cache_hits"] == stats.result_cache_hits
        assert warm == fitted_extractor.extract_batch(boilerplate_texts)


class TestDetectorCache:
    def test_detector_cache_is_config_driven_and_bitwise(self):
        objectives = ObjectiveGenerator(seed=62).generate_many(30)
        texts = [objective.text for objective in objectives]
        labels = [1] * 15 + [0] * 15
        cached = ObjectiveDetector(
            DetectorConfig(
                finetune=FineTuneConfig(epochs=1, learning_rate=1e-3),
                result_cache_capacity=64,
            )
        ).fit(texts, labels)
        assert cached.result_cache is not None
        baseline = None
        for __ in range(2):  # second pass served from cache
            scores = cached.predict_proba(texts)
            if baseline is None:
                baseline = scores
            np.testing.assert_array_equal(scores, baseline)
        assert cached.result_cache.stats.hits > 0

    def test_disabled_by_default(self):
        assert ObjectiveDetector(DetectorConfig()).result_cache is None


class TestQuantizationGateSurface:
    @pytest.mark.quant
    def test_synthetic_refusal_restores_fp32(self, fitted_extractor):
        """An impossible bound must refuse, restore bitwise-fp32, and
        leave the config un-flipped."""
        texts = [
            objective.text
            for objective in ObjectiveGenerator(seed=63).generate_many(6)
        ]
        baseline = fitted_extractor.extract_batch(texts)
        with pytest.raises(QuantizationError) as excinfo:
            fitted_extractor.enable_quantization(
                mode="int8", calibration_texts=texts, max_score_delta=0.0
            )
        assert excinfo.value.retryable is False
        assert fitted_extractor.config.quantize is None
        assert fitted_extractor.extract_batch(texts) == baseline

    @pytest.mark.quant
    def test_gate_pass_flips_config_and_separates_cache(
        self, fitted_extractor
    ):
        texts = [
            objective.text
            for objective in ObjectiveGenerator(seed=64).generate_many(6)
        ]
        report = fitted_extractor.enable_quantization(
            mode="int8", calibration_texts=texts, max_score_delta=0.5
        )
        try:
            assert report.passed
            assert fitted_extractor.config.quantize == "int8"
            # int8 results key separately: the warm fp32 cache must not
            # leak fp32 records into the quantized run.
            fitted_extractor.extract_batch(texts)
        finally:
            fitted_extractor.disable_quantization()
        assert fitted_extractor.config.quantize is None


@pytest.mark.slow
@pytest.mark.quant
@pytest.mark.golden
class TestGoldenQuantGate:
    def test_int8_gate_passes_on_golden_fixture(self):
        """The acceptance claim: residual-coded int8 keeps every top
        label on the frozen golden 25-report corpus."""
        from tests.integration.test_golden import (
            build_golden_corpus,
            build_golden_pipeline,
        )

        pipeline = build_golden_pipeline()
        corpus = build_golden_corpus()
        blocks = [
            block.text
            for report in corpus
            for page in report.pages
            for block in page.blocks
        ]
        report = pipeline.extractor.enable_quantization(
            mode="int8", calibration_texts=blocks, max_score_delta=1e-3
        )
        assert report.passed
        assert report.total == len(blocks)
        assert report.max_abs_delta < 1e-3
