"""End-to-end integration tests on small configurations.

These train real (tiny) models, so they are the slowest tests in the suite
— budget a couple of minutes.
"""

import pytest

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.datasets.base import train_test_split
from repro.datasets.generator import ObjectiveGenerator
from repro.datasets.base import Dataset
from repro.eval import evaluate_extractions
from repro.models.training import FineTuneConfig


FAST_FINETUNE = FineTuneConfig(epochs=6, learning_rate=1.5e-3, batch_size=16)


@pytest.fixture(scope="module")
def small_dataset():
    generator = ObjectiveGenerator(seed=123)
    return Dataset(
        "small",
        ("Action", "Amount", "Qualifier", "Baseline", "Deadline"),
        generator.generate_many(220),
    )


@pytest.fixture(scope="module")
def fitted_extractor(small_dataset):
    train, __ = train_test_split(small_dataset, 0.2, seed=0)
    extractor = WeakSupervisionExtractor(
        ExtractorConfig(finetune=FAST_FINETUNE, num_merges=300)
    )
    return extractor.fit(train.objectives)


class TestEndToEnd:
    def test_learns_above_trivial_baseline(self, small_dataset, fitted_extractor):
        __, test = train_test_split(small_dataset, 0.2, seed=0)
        predictions = fitted_extractor.extract_batch(
            [o.text for o in test.objectives]
        )
        report = evaluate_extractions(
            predictions,
            [o.details for o in test.objectives],
            small_dataset.fields,
        )
        # 220 examples and 6 epochs is far from the full protocol; the
        # bar here is only "clearly learned something transferable".
        assert report.f1 > 0.35

    def test_extract_returns_all_fields(self, fitted_extractor):
        details = fitted_extractor.extract("Reduce waste by 20% by 2030.")
        assert set(details) == {
            "Action", "Amount", "Qualifier", "Baseline", "Deadline",
        }

    def test_extracted_values_are_substrings(self, fitted_extractor):
        text = "Cut water use by 30% by 2035 (baseline 2020)."
        for value in fitted_extractor.extract(text).values():
            if value:
                assert value in text

    def test_extract_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            WeakSupervisionExtractor().extract("x")

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            WeakSupervisionExtractor().fit([])

    def test_empty_text_extraction(self, fitted_extractor):
        details = fitted_extractor.extract("   ...   ")
        assert all(value == "" for value in details.values())

    def test_save_load_roundtrip(self, fitted_extractor, tmp_path):
        fitted_extractor.save(tmp_path / "model")
        loaded = WeakSupervisionExtractor.load(tmp_path / "model")
        text = "Reduce emissions by 40% by 2033."
        assert loaded.extract(text) == fitted_extractor.extract(text)

    def test_weak_stats_recorded(self, fitted_extractor):
        assert fitted_extractor.weak_stats.annotations_total > 0
        assert fitted_extractor.weak_stats.coverage > 0.9

    def test_loss_history_decreases(self, fitted_extractor):
        history = fitted_extractor.loss_history
        assert history[-1] < history[0]


class TestNetZeroFactsSchema:
    def test_extractor_on_netzerofacts_fields(self):
        from repro.core.schema import NETZEROFACTS_FIELDS
        from repro.datasets.netzerofacts import build_netzerofacts

        dataset = build_netzerofacts(seed=0, size=150)
        train, test = train_test_split(dataset, 0.2, seed=0)
        extractor = WeakSupervisionExtractor(
            ExtractorConfig(
                fields=NETZEROFACTS_FIELDS,
                finetune=FAST_FINETUNE,
                num_merges=300,
            )
        )
        extractor.fit(train.objectives)
        predictions = extractor.extract_batch(
            [o.text for o in test.objectives]
        )
        report = evaluate_extractions(
            predictions,
            [o.details for o in test.objectives],
            NETZEROFACTS_FIELDS,
        )
        assert report.f1 > 0.5  # templated emission goals are learnable


class TestRobustness:
    def test_very_long_text_is_truncated_not_crashed(self, fitted_extractor):
        long_text = (
            "Reduce energy consumption by 20% by 2030. " * 40
        )
        details = fitted_extractor.extract(long_text)
        assert set(details) == {
            "Action", "Amount", "Qualifier", "Baseline", "Deadline",
        }

    def test_extract_batch_empty(self, fitted_extractor):
        assert fitted_extractor.extract_batch([]) == []

    def test_unicode_noise_handled(self, fitted_extractor):
        details = fitted_extractor.extract(
            "Reduce  CO₂ emissions – by 20% ﻿by 2030."
        )
        assert isinstance(details["Amount"], str)

    def test_batch_mixes_empty_and_real_texts(self, fitted_extractor):
        results = fitted_extractor.extract_batch(
            ["", "Reduce waste by 20%.", "   "]
        )
        assert len(results) == 3
        assert all(v == "" for v in results[0].values())
        assert all(v == "" for v in results[2].values())
