"""Golden-regression tier: frozen end-to-end outputs for a fixed corpus.

A seeded 25-report synthetic corpus runs through a deterministically
trained detect + extract pipeline; every produced record is compared
**field-by-field** against the frozen fixture in
``tests/golden/end_to_end_records.json``. Detector scores are compared
bitwise (stored as ``float.hex``), so any change to tokenization, model
init, training order, batching, or numerics fails this tier loudly with
a per-field diff summary — the point is that *no* behavioural drift
lands silently.

Refreshing the fixture after an **intentional** behaviour change::

    PYTHONPATH=src python -m pytest tests/integration/test_golden.py \
        --update-golden

then review the fixture diff (git diff tests/golden/) before committing.

Everything here is pinned: seeds, epochs, corpus shape, merge counts.
Do not derive any of these from environment knobs — the fixture must
reproduce from a fresh checkout with no configuration.
"""

import json
from pathlib import Path

import pytest

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.datasets.generator import ObjectiveGenerator
from repro.datasets.reports import ReportGenerator
from repro.deploy import build_trained_pipeline
from repro.goalspotter.detector import DetectorConfig
from repro.models.training import FineTuneConfig

pytestmark = pytest.mark.golden

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / (
    "end_to_end_records.json"
)

# Pinned generation recipe (bump schema_version on intentional changes).
SCHEMA_VERSION = 1
PIPELINE_SEED = 404
CORPUS_SEED = 405
NUM_REPORTS = 25
NUM_PAGES = 2
NUM_OBJECTIVES = 2
TRAIN_OBJECTIVES = 120
DETECTOR_BLOCKS = 240
EPOCHS = 2
NUM_MERGES = 200

#: Fields compared one by one (diff summaries name these).
RECORD_FIELDS = (
    "company", "report_id", "page", "objective", "details", "score_hex",
    "status",
)


def build_golden_pipeline():
    """The pinned pipeline: every input to training is seeded."""
    objectives = ObjectiveGenerator(seed=PIPELINE_SEED).generate_many(
        TRAIN_OBJECTIVES
    )
    extractor = WeakSupervisionExtractor(
        ExtractorConfig(
            finetune=FineTuneConfig(epochs=EPOCHS, learning_rate=1e-3),
            num_merges=NUM_MERGES,
        )
    ).fit(objectives)
    return build_trained_pipeline(
        train_dataset=None,
        seed=PIPELINE_SEED,
        detector_blocks=DETECTOR_BLOCKS,
        detector_config=DetectorConfig(
            finetune=FineTuneConfig(epochs=EPOCHS, learning_rate=1e-3)
        ),
        extractor=extractor,
    )


def build_golden_corpus():
    generator = ReportGenerator(seed=CORPUS_SEED)
    return [
        generator.generate_report(
            company=f"Golden-{index:02d}",
            report_id=f"g{index:03d}",
            num_pages=NUM_PAGES,
            num_objectives=NUM_OBJECTIVES,
        )
        for index in range(NUM_REPORTS)
    ]


def record_to_golden(record) -> dict:
    """One record as a JSON-stable, bitwise-comparable dict.

    ``score_hex`` (``float.hex``) is the bitwise channel for the
    logits-derived detector score; ``score`` is kept alongside for
    human-readable fixture diffs only.
    """
    return {
        "company": record.company,
        "report_id": record.report_id,
        "page": record.page,
        "objective": record.objective,
        "details": dict(record.details),
        "score": float(record.score),
        "score_hex": float(record.score).hex(),
        "status": record.status,
    }


def _diff_summary(expected: list[dict], actual: list[dict]) -> str:
    """Human-readable field-by-field diff, truncated to the first 20."""
    lines = []
    if len(expected) != len(actual):
        lines.append(
            f"record count changed: {len(expected)} -> {len(actual)}"
        )
    for index, (want, got) in enumerate(zip(expected, actual)):
        for field in RECORD_FIELDS:
            if want.get(field) != got.get(field):
                lines.append(
                    f"record[{index}].{field}: "
                    f"{want.get(field)!r} -> {got.get(field)!r}"
                )
    if not lines:
        lines.append("(records match; metadata changed)")
    shown = lines[:20]
    if len(lines) > len(shown):
        shown.append(f"... and {len(lines) - len(shown)} more differences")
    return "\n".join(shown)


@pytest.fixture(scope="module")
def golden_pipeline():
    return build_golden_pipeline()


@pytest.fixture(scope="module")
def actual_records(golden_pipeline):
    return golden_pipeline.process_reports(build_golden_corpus())


class TestGoldenRegression:
    def test_end_to_end_records_match_fixture(
        self, actual_records, update_golden
    ):
        payload = {
            "metadata": {
                "schema_version": SCHEMA_VERSION,
                "pipeline_seed": PIPELINE_SEED,
                "corpus_seed": CORPUS_SEED,
                "num_reports": NUM_REPORTS,
                "records": len(actual_records),
                "refresh": (
                    "PYTHONPATH=src python -m pytest "
                    "tests/integration/test_golden.py --update-golden"
                ),
            },
            "records": [
                record_to_golden(record) for record in actual_records
            ],
        }
        if update_golden:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            pytest.skip(f"rewrote {GOLDEN_PATH}; review the diff")
        assert GOLDEN_PATH.exists(), (
            f"golden fixture missing: {GOLDEN_PATH}\n"
            "generate it with --update-golden (see module docstring)"
        )
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert (
            golden["metadata"]["schema_version"] == SCHEMA_VERSION
        ), "golden schema_version mismatch — regenerate with --update-golden"
        if golden["records"] != payload["records"]:
            pytest.fail(
                "end-to-end outputs drifted from the golden fixture:\n"
                + _diff_summary(golden["records"], payload["records"])
                + "\nIf this change is intentional, refresh with "
                "--update-golden and commit the fixture diff.",
                pytrace=False,
            )

    def test_scores_are_bitwise_stable(self, actual_records, update_golden):
        """The logits-derived scores alone, compared via float.hex."""
        if update_golden:
            pytest.skip("fixture refresh run")
        if not GOLDEN_PATH.exists():
            pytest.skip("golden fixture not generated yet")
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        expected = [record["score_hex"] for record in golden["records"]]
        actual = [
            float(record.score).hex() for record in actual_records
        ]
        assert actual == expected

    @pytest.mark.parallel
    def test_parallel_run_matches_fixture(
        self, golden_pipeline, update_golden
    ):
        """workers=2 reproduces the frozen sequential outputs bitwise."""
        if update_golden:
            pytest.skip("fixture refresh run")
        if not GOLDEN_PATH.exists():
            pytest.skip("golden fixture not generated yet")
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        records = golden_pipeline.process_reports(
            build_golden_corpus(), workers=2
        )
        actual = [record_to_golden(record) for record in records]
        if golden["records"] != actual:
            pytest.fail(
                "parallel run drifted from the golden fixture:\n"
                + _diff_summary(golden["records"], actual),
                pytrace=False,
            )
