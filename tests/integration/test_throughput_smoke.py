"""Fast smoke test for the inference-throughput benchmark.

Runs ``benchmarks/bench_inference_throughput.py`` at a tiny scale and
asserts the JSON report schema, so a refactor of the runtime or the bench
cannot silently break the measurement before a full (slow) benchmark run.
Marked ``smoke``: deselect with ``-m "not smoke"`` if needed.
"""

import json

import pytest

from benchmarks.bench_inference_throughput import run_throughput_benchmark

RUN_KEYS = {
    "wall_seconds": float,
    "sequences": int,
    "microbatches": int,
    "total_tokens": int,
    "padded_tokens": int,
    "tokens_per_second": float,
    "padding_waste": float,
    "bpe_cache_hits": int,
    "bpe_cache_misses": int,
    "bpe_cache_hit_rate": float,
    "timings": dict,
    "extra": dict,
}

PIPELINE_RUN_KEYS = {
    "wall_seconds": float,
    "detect_seconds": float,
    "extract_seconds": float,
    "blocks": int,
    "detected_blocks": int,
    "extraction_units": int,
    "records": int,
    "blocks_per_second": float,
    "pages": int,
    "pages_per_second": float,
}


def _assert_schema(payload: dict, schema: dict) -> None:
    for key, expected_type in schema.items():
        assert key in payload, f"missing key {key!r}"
        assert isinstance(payload[key], expected_type), (
            f"{key!r} is {type(payload[key]).__name__}, "
            f"wanted {expected_type.__name__}"
        )


@pytest.mark.smoke
def test_throughput_benchmark_smoke():
    report = run_throughput_benchmark(
        num_texts=24, epochs=1, num_pages=4, detector_blocks=60
    )

    # The report must round-trip through JSON (the bench emits it as such).
    report = json.loads(json.dumps(report))

    assert set(report) == {"config", "extractor", "pipeline"}
    assert report["config"]["num_texts"] == 24

    extractor = report["extractor"]
    assert set(extractor) >= {
        "arrival", "bucketed", "speedup", "logits_identical",
        "results_identical",
    }
    # Correctness invariants hold even at smoke scale.
    assert extractor["logits_identical"] is True
    assert extractor["results_identical"] is True
    assert extractor["speedup"] > 0.0
    for mode in ("arrival", "bucketed"):
        _assert_schema(extractor[mode], RUN_KEYS)
        assert extractor[mode]["sequences"] == 24
        assert 0.0 <= extractor[mode]["padding_waste"] < 1.0
        assert "model_seconds" in extractor[mode]["timings"]

    pipeline = report["pipeline"]
    assert set(pipeline) >= {"arrival", "bucketed", "speedup"}
    for mode in ("arrival", "bucketed"):
        _assert_schema(pipeline[mode], PIPELINE_RUN_KEYS)
        assert pipeline[mode]["extractor"] is None or isinstance(
            pipeline[mode]["extractor"], dict
        )
