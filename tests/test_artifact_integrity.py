"""Artifact-integrity tests for every persisted-model load surface.

Each save directory carries a checksum manifest; a single flipped byte in
any artifact must surface as a typed
:class:`~repro.runtime.errors.ArtifactError` at load time instead of
silently deserializing garbage, and every save must be atomic — a crash
between writing and publishing leaves the previous version untouched.
"""

import json

import numpy as np
import pytest

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.crf.extractor import CrfConfig, CrfDetailExtractor
from repro.models.training import FineTuneConfig
from repro.nn.serialize import load_state, save_state
from repro.runtime.checkpoint import MANIFEST_NAME, verify_manifest
from repro.runtime.errors import ArtifactError, ModelError
from repro.runtime.resilience import FaultInjector, FaultSpec
from repro.text.bpe import BpeTokenizer
from repro.text.vocab import Vocabulary

pytestmark = pytest.mark.checkpoint


def flip_one_byte(path) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


@pytest.fixture(scope="module")
def fitted_ws(tiny_dataset):
    config = ExtractorConfig(
        finetune=FineTuneConfig(epochs=1, batch_size=16), num_merges=80
    )
    return WeakSupervisionExtractor(config).fit(tiny_dataset.objectives[:40])


@pytest.fixture(scope="module")
def fitted_crf(tiny_dataset):
    return CrfDetailExtractor(config=CrfConfig(epochs=2)).fit(
        tiny_dataset.objectives[:40]
    )


class TestWeakSupervisionArtifacts:
    @pytest.fixture()
    def saved(self, fitted_ws, tmp_path):
        directory = tmp_path / "extractor"
        fitted_ws.save(directory)
        return directory

    def test_save_writes_verifiable_manifest(self, saved):
        manifest = verify_manifest(saved, kind="weak_supervision_extractor")
        assert set(manifest["artifacts"]) == {
            "config.json",
            "tokenizer.json",
            "model.npz",
        }
        assert not saved.with_name(saved.name + ".tmp").exists()

    @pytest.mark.parametrize(
        "artifact", ["config.json", "tokenizer.json", "model.npz"]
    )
    def test_flipped_byte_raises_artifact_error(self, saved, artifact):
        flip_one_byte(saved / artifact)
        with pytest.raises(ArtifactError):
            WeakSupervisionExtractor.load(saved)

    def test_missing_artifact_raises_artifact_error(self, saved):
        (saved / "model.npz").unlink()
        with pytest.raises(ArtifactError):
            WeakSupervisionExtractor.load(saved)

    def test_missing_directory_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError):
            WeakSupervisionExtractor.load(tmp_path / "nope")

    def test_malformed_config_raises_artifact_error(self, saved):
        (saved / "config.json").write_text('{"fields": 3}', encoding="utf-8")
        (saved / MANIFEST_NAME).unlink()  # isolate the config-parse check
        with pytest.raises(ArtifactError):
            WeakSupervisionExtractor.load(saved)

    def test_premanifest_directory_still_loads(self, saved, fitted_ws):
        (saved / MANIFEST_NAME).unlink()
        loaded = WeakSupervisionExtractor.load(saved)
        text = "Reduce emissions by 40% by 2035."
        assert loaded.extract(text) == fitted_ws.extract(text)

    def test_crash_before_publish_preserves_previous_save(
        self, fitted_ws, tmp_path
    ):
        directory = tmp_path / "extractor"
        fitted_ws.save(directory)
        before = WeakSupervisionExtractor.load(directory)
        fitted_ws.fault_injector = FaultInjector(
            [FaultSpec(stage="save_commit", error="model", nth_calls=(1,))],
            seed=1,
        )
        try:
            with pytest.raises(ModelError):
                fitted_ws.save(directory)
        finally:
            fitted_ws.fault_injector = None
        after = WeakSupervisionExtractor.load(directory)
        text = "Cut water use by 30% by 2035."
        assert after.extract(text) == before.extract(text)

    def test_roundtrip_after_resave(self, fitted_ws, tmp_path):
        directory = tmp_path / "extractor"
        fitted_ws.save(directory)
        fitted_ws.save(directory)  # replace an existing published dir
        loaded = WeakSupervisionExtractor.load(directory)
        text = "Reach net-zero carbon by 2040."
        assert loaded.extract(text) == fitted_ws.extract(text)


class TestCrfArtifacts:
    @pytest.fixture()
    def saved(self, fitted_crf, tmp_path):
        directory = tmp_path / "crf"
        fitted_crf.save(directory)
        return directory

    def test_save_writes_verifiable_manifest(self, saved):
        manifest = verify_manifest(saved, kind="crf_extractor")
        assert set(manifest["artifacts"]) == {
            "config.json",
            "features.pkl",
            "weights.npz",
        }

    @pytest.mark.parametrize(
        "artifact", ["config.json", "features.pkl", "weights.npz"]
    )
    def test_flipped_byte_raises_artifact_error(self, saved, artifact):
        flip_one_byte(saved / artifact)
        with pytest.raises(ArtifactError):
            CrfDetailExtractor.load(saved)

    def test_truncated_weights_raise_without_manifest(self, saved):
        """Even pre-manifest directories must not deserialize garbage."""
        (saved / MANIFEST_NAME).unlink()
        target = saved / "weights.npz"
        target.write_bytes(target.read_bytes()[:40])
        with pytest.raises(ArtifactError):
            CrfDetailExtractor.load(saved)

    def test_roundtrip_still_works(self, saved, fitted_crf):
        loaded = CrfDetailExtractor.load(saved)
        text = "Reduce waste by 25% by 2031."
        assert loaded.extract(text) == fitted_crf.extract(text)


class TestTextArtifacts:
    def test_vocab_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "vocab.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(ArtifactError):
            Vocabulary.load(path)

    def test_vocab_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "vocab.json"
        path.write_text(json.dumps({"tokens": "notalist"}), encoding="utf-8")
        with pytest.raises(ArtifactError):
            Vocabulary.load(path)

    def test_vocab_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError):
            Vocabulary.load(tmp_path / "missing.json")

    def test_vocab_roundtrip_unchanged(self, tmp_path):
        vocab = Vocabulary(["solar", "wind", "net-zero"])
        vocab.save(tmp_path / "vocab.json")
        loaded = Vocabulary.load(tmp_path / "vocab.json")
        assert loaded.tokens == vocab.tokens

    def test_bpe_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "tok.json"
        path.write_text("]", encoding="utf-8")
        with pytest.raises(ArtifactError):
            BpeTokenizer.load(path)

    def test_bpe_rejects_malformed_merges(self, tmp_path):
        path = tmp_path / "tok.json"
        path.write_text(
            json.dumps({"merges": [["a"]], "vocab": ["a"]}), encoding="utf-8"
        )
        with pytest.raises(ArtifactError):
            BpeTokenizer.load(path)

    def test_bpe_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError):
            BpeTokenizer.load(tmp_path / "missing.json")


class TestStateDictArtifacts:
    def test_checksum_mismatch_raises(self, tmp_path):
        from repro.models.token_classifier import TokenClassifier
        from repro.nn.encoder import EncoderConfig

        config = EncoderConfig(
            vocab_size=30, dim=8, num_layers=1, num_heads=2,
            ffn_dim=16, max_len=8, dropout=0.0,
        )
        model = TokenClassifier(config, num_labels=2, rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_state(model, path)
        load_state(model, path)  # sanity: untouched file loads
        with pytest.raises(ArtifactError):
            load_state(model, path, expected_sha256="0" * 64)
        flip_one_byte(path)
        with pytest.raises(ArtifactError):
            load_state(model, path)
