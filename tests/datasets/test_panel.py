"""The multi-year company panel: seeded drift injection as ground truth."""

import dataclasses

import pytest

from repro.datasets.sustainability import (
    PANEL_DRIFT_KINDS,
    build_company_panel,
    panel_records,
)

pytestmark = pytest.mark.kg


class TestPanelShape:
    def test_one_report_per_company_year(self):
        panel = build_company_panel(seed=1)
        assert len(panel.reports) == len(panel.companies) * len(panel.years)
        seen = set()
        for report in panel.reports:
            assert report.reporting_year in panel.years
            assert report.report_id not in seen
            seen.add(report.report_id)

    def test_exactly_drift_per_kind_events(self):
        panel = build_company_panel(seed=2, drift_per_kind=1)
        kinds = [event.kind for event in panel.drift_events]
        assert sorted(kinds) == sorted(PANEL_DRIFT_KINDS)
        for event in panel.drift_events:
            assert event.year_from in panel.years
            assert event.year_to in panel.years
            assert event.year_to > event.year_from

    def test_aliases_vary_but_companies_do_not(self):
        panel = build_company_panel(seed=3)
        for canonical, forms in panel.aliases.items():
            assert forms[0] == canonical  # year 0 files canonically
            assert len(forms) == len(panel.years)

    def test_alias_noise_off_keeps_canonical_everywhere(self):
        panel = build_company_panel(seed=3, alias_noise=False)
        for canonical, forms in panel.aliases.items():
            assert set(forms) == {canonical}

    def test_validation(self):
        with pytest.raises(ValueError, match="two reporting years"):
            build_company_panel(years=(2020,))
        with pytest.raises(ValueError, match="goals_per_company"):
            build_company_panel(goals_per_company=0)
        with pytest.raises(ValueError, match="distinct goal slots"):
            build_company_panel(num_companies=1, goals_per_company=1)


class TestPanelDeterminism:
    def test_same_seed_same_panel(self):
        one = build_company_panel(seed=5)
        two = build_company_panel(seed=5)
        assert one.companies == two.companies
        assert one.drift_events == two.drift_events
        assert [dataclasses.asdict(r) for r in panel_records(one)] == [
            dataclasses.asdict(r) for r in panel_records(two)
        ]

    def test_different_seeds_differ(self):
        assert (
            build_company_panel(seed=5).companies
            != build_company_panel(seed=6).companies
        )

    def test_undrifted_goals_are_byte_identical_across_years(self):
        panel = build_company_panel(seed=4)
        drifted = {
            (event.company, event.topic) for event in panel.drift_events
        }
        from repro.kg import infer_topic

        texts = {}
        for report in panel.reports:
            for block in report.blocks():
                if not block.is_objective:
                    continue
                canonical = report.report_id.rsplit("-", 1)[0]
                topic = infer_topic(block.text, block.details)
                if (canonical, topic) in drifted:
                    continue
                texts.setdefault((canonical, topic), set()).add(block.text)
        # Every non-drifted goal renders identically in every year —
        # the zero-false-positive guarantee for drift scoring.
        assert texts and all(len(forms) == 1 for forms in texts.values())


class TestPanelRecords:
    def test_records_are_perfect_extractions(self):
        panel = build_company_panel(seed=0)
        records = panel_records(panel)
        assert len(records) == panel.num_objectives
        for record in records:
            assert record.score == 1.0
            assert record.reporting_year in panel.years
            assert record.details["Action"]
            assert record.details["Deadline"]
