"""Tests for the report generator and deployment corpus."""

import numpy as np
import pytest

from repro.datasets.reports import (
    DEPLOYMENT_COMPANIES,
    ReportGenerator,
    _split_total,
    build_deployment_corpus,
    corpus_summary,
)


class TestSplitTotal:
    def test_sums_exactly(self):
        rng = np.random.default_rng(0)
        parts = _split_total(100, 7, rng, minimum=1)
        assert parts.sum() == 100
        assert (parts >= 1).all()

    def test_zero_minimum(self):
        rng = np.random.default_rng(1)
        parts = _split_total(5, 10, rng, minimum=0)
        assert parts.sum() == 5
        assert (parts >= 0).all()

    def test_too_small_total_raises(self):
        with pytest.raises(ValueError):
            _split_total(3, 5, np.random.default_rng(0), minimum=1)


class TestReportGenerator:
    def test_exact_page_and_objective_counts(self):
        generator = ReportGenerator(seed=2)
        report = generator.generate_report("ACME", "r1", 12, 5)
        assert report.num_pages == 12
        assert len(report.objectives()) == 5

    def test_objectives_carry_provenance(self):
        generator = ReportGenerator(seed=3)
        report = generator.generate_report("ACME", "r1", 4, 2)
        for objective in report.objectives():
            assert objective.company == "ACME"
            assert objective.report_id == "r1"

    def test_noise_blocks_not_objectives(self):
        generator = ReportGenerator(seed=4)
        report = generator.generate_report("X", "r", 5, 0)
        assert all(not block.is_objective for block in report.blocks())
        assert all(block.text.strip() for block in report.blocks())

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            ReportGenerator(seed=0).generate_report("X", "r", 0, 0)


class TestDeploymentCorpus:
    def test_table5_totals_at_scale(self):
        """At scale=1 the corpus matches Table 5: 380 docs, 37,871 pages,
        3,580 objectives. We verify the scaled-down version proportionally
        (full scale is exercised by the deployment benchmark)."""
        reports = build_deployment_corpus(seed=0, scale=0.05)
        summary = corpus_summary(reports)
        companies = {row[0] for row in summary}
        assert companies == {name for name, *__ in DEPLOYMENT_COMPANIES}
        total_docs = sum(row[1] for row in summary)
        expected_docs = sum(
            max(1, round(docs * 0.05)) for __, docs, *__unused in DEPLOYMENT_COMPANIES
        )
        assert total_docs == expected_docs

    def test_per_company_page_counts_scale(self):
        reports = build_deployment_corpus(seed=1, scale=0.02)
        summary = {row[0]: row for row in corpus_summary(reports)}
        for company, docs, pages, objectives in DEPLOYMENT_COMPANIES:
            assert summary[company][2] == pytest.approx(
                pages * 0.02, rel=0.2, abs=3
            )

    def test_paper_totals_constant(self):
        assert sum(d for __, d, *_ in DEPLOYMENT_COMPANIES) == 380
        assert sum(p for *_, p, __ in DEPLOYMENT_COMPANIES) == 37871
        assert sum(o for *_, o in DEPLOYMENT_COMPANIES) == 3580

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_deployment_corpus(scale=0.0)

    def test_reproducible(self):
        a = build_deployment_corpus(seed=5, scale=0.02)
        b = build_deployment_corpus(seed=5, scale=0.02)
        assert [r.report_id for r in a] == [r.report_id for r in b]
        assert a[0].pages[0].blocks[0].text == b[0].pages[0].blocks[0].text
