"""Sanity tests over the lexicon pools the grammar draws from."""

from repro.datasets import lexicon


class TestTopics:
    def test_topics_nonempty(self):
        assert len(lexicon.TOPICS) >= 10

    def test_every_topic_has_verbs_and_qualifiers(self):
        for topic in lexicon.TOPICS:
            assert topic.verbs, topic.name
            assert topic.qualifiers, topic.name

    def test_amount_styles_are_known(self):
        known = {
            "percent", "percent_words", "netzero", "zero",
            "absolute_tonnes", "count_large", "currency",
        }
        for topic in lexicon.TOPICS:
            assert set(topic.amount_styles) <= known, topic.name

    def test_governance_is_unquantified(self):
        governance = next(
            t for t in lexicon.TOPICS if t.name == "governance"
        )
        assert governance.amount_styles == ()

    def test_topic_names_unique(self):
        names = [t.name for t in lexicon.TOPICS]
        assert len(names) == len(set(names))


class TestPools:
    def test_compound_pools_nonempty(self):
        assert len(lexicon.COMPOUND_PREFIXES) >= 10
        assert len(lexicon.COMPOUND_STEMS) >= 15
        assert len(lexicon.COMPOUND_SUFFIX_UNITS) >= 5

    def test_compound_space_is_large(self):
        combinations = (
            len(lexicon.COMPOUND_PREFIXES)
            * len(lexicon.COMPOUND_STEMS)
            * len(lexicon.COMPOUND_SUFFIX_UNITS)
        )
        assert combinations > 1000  # long-tail regime

    def test_qualifier_heads_cover_topics(self):
        topic_names = {t.name for t in lexicon.TOPICS}
        assert set(lexicon.QUALIFIER_HEADS_BY_TOPIC) <= topic_names

    def test_narrative_sentences_contain_hard_negatives(self):
        with_numbers = [
            s for s in lexicon.NARRATIVE_SENTENCES
            if any(c.isdigit() for c in s)
        ]
        assert len(with_numbers) >= 3  # years/numbers that are NOT details

    def test_statistic_templates_have_placeholders(self):
        for template in lexicon.STATISTIC_SENTENCES:
            assert "{stat_year}" in template or "{big_number}" in template
