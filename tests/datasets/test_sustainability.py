"""Tests for the Sustainability Goals dataset reconstruction."""

import pytest

from repro.datasets.sustainability import (
    NUM_COMPANIES,
    NUM_OBJECTIVES,
    NUM_REPORTS,
    build_sustainability_goals,
)


@pytest.fixture(scope="module")
def dataset():
    return build_sustainability_goals(seed=0)


class TestSustainabilityGoals:
    def test_paper_size(self, dataset):
        assert len(dataset) == NUM_OBJECTIVES == 1106

    def test_paper_field_schema(self, dataset):
        assert dataset.fields == (
            "Action", "Amount", "Qualifier", "Baseline", "Deadline",
        )

    def test_paper_marginals(self, dataset):
        """Paper Section 4.3: Action 85%, Baseline 14%, Deadline 34%."""
        availability = dataset.field_availability()
        assert availability["Action"] == pytest.approx(0.85, abs=0.04)
        assert availability["Baseline"] == pytest.approx(0.14, abs=0.04)
        assert availability["Deadline"] == pytest.approx(0.34, abs=0.05)

    def test_company_fanout(self, dataset):
        companies = {o.company for o in dataset}
        reports = {o.report_id for o in dataset}
        assert len(companies) <= NUM_COMPANIES
        assert len(reports) <= NUM_REPORTS
        # Substantial fan-out actually realized.
        assert len(companies) > 300
        assert len(reports) > 600

    def test_every_objective_has_provenance(self, dataset):
        assert all(o.company and o.report_id for o in dataset)

    def test_heterogeneous_texts(self, dataset):
        texts = [o.text for o in dataset]
        assert len(set(texts)) > 0.98 * len(texts)

    def test_reproducible(self):
        a = build_sustainability_goals(seed=42, size=50)
        b = build_sustainability_goals(seed=42, size=50)
        assert [o.text for o in a] == [o.text for o in b]

    def test_custom_size(self):
        assert len(build_sustainability_goals(seed=0, size=20)) == 20
