"""Tests for the NetZeroFacts reconstruction."""

import pytest

from repro.datasets.netzerofacts import NUM_SENTENCES, build_netzerofacts


@pytest.fixture(scope="module")
def dataset():
    return build_netzerofacts(seed=0)


class TestNetZeroFacts:
    def test_paper_size(self, dataset):
        assert len(dataset) == NUM_SENTENCES == 599

    def test_schema(self, dataset):
        assert dataset.fields == ("TargetValue", "ReferenceYear", "TargetYear")

    def test_every_sentence_has_at_least_one_label(self, dataset):
        """Paper: 'each of which is annotated with at least one label'."""
        assert all(o.present_details() for o in dataset)

    def test_annotations_are_substrings(self, dataset):
        for objective in dataset:
            for value in objective.present_details().values():
                assert value in objective.text

    def test_target_years_plausible(self, dataset):
        for objective in dataset:
            year = objective.details.get("TargetYear", "")
            if year:
                assert 2025 <= int(year) <= 2050

    def test_reference_years_before_target_years(self, dataset):
        for objective in dataset:
            reference = objective.details.get("ReferenceYear", "")
            target = objective.details.get("TargetYear", "")
            if reference and target:
                assert int(reference) < int(target)

    def test_reproducible(self):
        a = build_netzerofacts(seed=9, size=30)
        b = build_netzerofacts(seed=9, size=30)
        assert [o.text for o in a] == [o.text for o in b]

    def test_emission_vocabulary_present(self, dataset):
        emission_mentions = sum(
            1 for o in dataset if "emission" in o.text.lower()
            or "carbon" in o.text.lower() or "climate" in o.text.lower()
            or "net" in o.text.lower()
        )
        assert emission_mentions > len(dataset) * 0.8
