"""Tests for Dataset containers and splits."""

import pytest

from repro.core.schema import AnnotatedObjective
from repro.datasets.base import Dataset, train_test_split


@pytest.fixture
def dataset():
    objectives = [
        AnnotatedObjective(f"Objective number {i}.", {"Action": "do"})
        for i in range(10)
    ]
    return Dataset("demo", ("Action", "Amount"), objectives)


class TestDataset:
    def test_len_iter_getitem(self, dataset):
        assert len(dataset) == 10
        assert dataset[0].text == "Objective number 0."
        assert len(list(dataset)) == 10

    def test_field_availability(self, dataset):
        availability = dataset.field_availability()
        assert availability["Action"] == 1.0
        assert availability["Amount"] == 0.0

    def test_field_availability_empty(self):
        empty = Dataset("e", ("Action",), [])
        assert empty.field_availability() == {"Action": 0.0}

    def test_subset(self, dataset):
        sub = dataset.subset([1, 3, 5], name="sub")
        assert len(sub) == 3
        assert sub.name == "sub"
        assert sub[0].text == "Objective number 1."

    def test_jsonl_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        dataset.save_jsonl(path)
        loaded = Dataset.load_jsonl(path)
        assert loaded.name == dataset.name
        assert loaded.fields == dataset.fields
        assert [o.text for o in loaded] == [o.text for o in dataset]
        assert loaded[0].details == dataset[0].details


class TestTrainTestSplit:
    def test_disjoint_and_complete(self, dataset):
        train, test = train_test_split(dataset, 0.2, seed=0)
        assert len(train) + len(test) == len(dataset)
        train_texts = {o.text for o in train}
        test_texts = {o.text for o in test}
        assert not train_texts & test_texts

    def test_paper_fraction(self, dataset):
        __, test = train_test_split(dataset, 0.2, seed=0)
        assert len(test) == 2

    def test_seed_changes_split(self, dataset):
        __, test_a = train_test_split(dataset, 0.2, seed=0)
        __, test_b = train_test_split(dataset, 0.2, seed=1)
        texts_a = {o.text for o in test_a}
        texts_b = {o.text for o in test_b}
        assert texts_a != texts_b  # 10 choose 2 makes collision unlikely

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            train_test_split(dataset, 0.0)
        with pytest.raises(ValueError):
            train_test_split(dataset, 1.0)
