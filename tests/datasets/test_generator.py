"""Tests for the objective grammar generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.weak_labeling import WeakLabelingStats, weakly_label_objective
from repro.datasets.generator import (
    GeneratorConfig,
    ObjectiveGenerator,
    _gerund,
    make_company_name,
)


class TestGerund:
    @pytest.mark.parametrize(
        "verb,expected",
        [
            ("Reduce", "reducing"),
            ("Cut", "cutting"),
            ("Reach", "reaching"),
            ("Promote", "promoting"),
            ("Empower", "empowering"),
            ("Keep", "keeping"),
        ],
    )
    def test_inflections(self, verb, expected):
        assert _gerund(verb) == expected

    def test_multiword_verb(self):
        assert _gerund("Switch to").startswith("switching")


class TestObjectiveGenerator:
    def test_deterministic_given_seed(self):
        a = ObjectiveGenerator(seed=5).generate_many(10)
        b = ObjectiveGenerator(seed=5).generate_many(10)
        assert [o.text for o in a] == [o.text for o in b]

    def test_different_seeds_differ(self):
        a = ObjectiveGenerator(seed=1).generate_many(10)
        b = ObjectiveGenerator(seed=2).generate_many(10)
        assert [o.text for o in a] != [o.text for o in b]

    def test_annotations_are_substrings_mostly(self):
        """Exact substrings, except the small annotation-divergence noise
        (expert normalization) the fuzzy-matching ablation relies on."""
        generator = ObjectiveGenerator(seed=3)
        total = divergent = 0
        for objective in generator.generate_many(200):
            for value in objective.present_details().values():
                total += 1
                divergent += value not in objective.text
        assert divergent / total < 0.05

    def test_annotations_are_exact_substrings_without_divergence(self):
        config = GeneratorConfig(annotation_divergence=0.0)
        generator = ObjectiveGenerator(config, seed=3)
        for objective in generator.generate_many(200):
            for value in objective.present_details().values():
                assert value in objective.text, (value, objective.text)

    def test_texts_end_with_period(self):
        generator = ObjectiveGenerator(seed=4)
        assert all(o.text.endswith(".") for o in generator.generate_many(50))

    def test_field_availability_tracks_config(self):
        config = GeneratorConfig(
            p_deadline=1.0, p_baseline=0.0, annotation_dropout=0.0,
            p_action=1.0,
        )
        generator = ObjectiveGenerator(config, seed=6)
        objectives = generator.generate_many(100)
        deadline_rate = np.mean([o.has_detail("Deadline") for o in objectives])
        baseline_rate = np.mean([o.has_detail("Baseline") for o in objectives])
        assert deadline_rate > 0.9
        assert baseline_rate == 0.0

    def test_annotation_dropout_removes_details(self):
        high_dropout = GeneratorConfig(annotation_dropout=0.95)
        generator = ObjectiveGenerator(high_dropout, seed=7)
        objectives = generator.generate_many(50)
        mean_details = np.mean(
            [len(o.present_details()) for o in objectives]
        )
        assert mean_details < 1.0

    def test_weak_labeling_coverage_high(self):
        """Exact matching must cover nearly all generated annotations."""
        generator = ObjectiveGenerator(seed=8)
        stats = WeakLabelingStats()
        for objective in generator.generate_many(300):
            weakly_label_objective(objective, stats=stats)
        assert stats.coverage > 0.97

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_any_seed_generates_valid_objective(self, seed):
        objective = ObjectiveGenerator(seed=seed).generate()
        assert objective.text.strip()
        for field in objective.details:
            assert field in (
                "Action", "Amount", "Qualifier", "Baseline", "Deadline",
            )


class TestMakeCompanyName:
    def test_format(self):
        name = make_company_name(np.random.default_rng(0))
        assert len(name.split()) == 3
