"""Tests for the benchmark harness helpers."""

import pytest

from benchmarks.common import (
    PAPER_TABLE4,
    bench_epochs,
    bench_runs,
    bench_scale,
    default_extractor_config,
    env_float,
    env_int,
)


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_RUNS", raising=False)
        monkeypatch.delenv("REPRO_BENCH_EPOCHS", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_runs() == 1
        assert bench_epochs() == 10  # the paper's default
        assert bench_scale() == 1.0  # full Table 5 corpus

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RUNS", "5")
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_runs() == 5
        assert bench_scale() == 0.25

    def test_env_parsers(self, monkeypatch):
        monkeypatch.setenv("X_INT", "7")
        monkeypatch.setenv("X_FLOAT", "0.5")
        assert env_int("X_INT", 1) == 7
        assert env_float("X_FLOAT", 1.0) == 0.5
        assert env_int("X_MISSING", 3) == 3


class TestPaperConstants:
    def test_table4_paper_numbers(self):
        """The hard-coded paper numbers match Table 4 of the paper."""
        sg = PAPER_TABLE4["sustainability-goals"]
        assert sg["GoalSpotter"] == (0.89, 0.95, 0.92)
        assert sg["Conditional Random Fields"] == (0.60, 0.86, 0.71)
        nzf = PAPER_TABLE4["netzerofacts"]
        assert nzf["GoalSpotter"] == (0.87, 0.83, 0.85)
        assert nzf["Few-Shot Prompting"] == (0.70, 0.94, 0.80)

    def test_goalspotter_wins_in_paper(self):
        for dataset in PAPER_TABLE4.values():
            best = max(dataset.values(), key=lambda prf: prf[2])
            assert dataset["GoalSpotter"] == best


class TestDefaultConfig:
    def test_uses_paper_epochs(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_EPOCHS", raising=False)
        config = default_extractor_config()
        assert config.finetune.epochs == 10

    def test_fields_override(self):
        config = default_extractor_config(fields=("TargetValue",))
        assert config.fields == ("TargetValue",)
