"""Schema v2 migration and the reporting-year query surface."""

import sqlite3

import pytest

from repro.goalspotter.pipeline import ExtractedRecord
from repro.storage import ObjectiveStore, SCHEMA_VERSION

pytestmark = pytest.mark.kg

#: The v1 table layout (before the provenance columns), verbatim.
_V1_SCHEMA = """
CREATE TABLE objectives (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    company TEXT NOT NULL,
    report_id TEXT NOT NULL,
    page INTEGER NOT NULL,
    objective TEXT NOT NULL,
    action TEXT NOT NULL DEFAULT '',
    amount TEXT NOT NULL DEFAULT '',
    qualifier TEXT NOT NULL DEFAULT '',
    baseline TEXT NOT NULL DEFAULT '',
    deadline TEXT NOT NULL DEFAULT '',
    score REAL NOT NULL DEFAULT 0.0,
    action_direction TEXT NOT NULL DEFAULT 'unknown',
    amount_kind TEXT NOT NULL DEFAULT 'unknown',
    amount_value REAL,
    baseline_year INTEGER,
    deadline_year INTEGER
);
CREATE INDEX idx_objectives_company ON objectives (company);
"""


def _make_v1_db(path):
    conn = sqlite3.connect(str(path))
    conn.executescript(_V1_SCHEMA)
    conn.execute(
        "INSERT INTO objectives (company, report_id, page, objective,"
        " action, amount, qualifier, baseline, deadline, score)"
        " VALUES ('Acme Corp.', 'acme-001', 3,"
        " 'Reduce waste by 20% by 2030.', 'Reduce', '20%', 'waste',"
        " '', '2030', 0.9)"
    )
    conn.commit()
    conn.close()


def _record(company="Acme Corp.", year=2024):
    return ExtractedRecord(
        company=company,
        report_id=f"{company}-{year}",
        page=0,
        objective="Reduce waste by 20% by 2030.",
        details={"Action": "Reduce", "Amount": "20%", "Qualifier": "waste",
                 "Baseline": "", "Deadline": "2030"},
        score=0.9,
        reporting_year=year,
    )


class TestMigration:
    def test_v1_database_migrates_in_place(self, tmp_path):
        path = tmp_path / "v1.db"
        _make_v1_db(path)
        with ObjectiveStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION
            (row,) = store.query()
            # Pre-migration rows read back with NULL year provenance.
            assert row.company == "Acme Corp."
            assert row.reporting_year is None
            assert row.extractor_fingerprint == ""
            # New inserts land in the migrated columns.
            store.insert_records([_record()], extractor_fingerprint="fp")
            (new,) = store.query(reporting_year=2024)
            assert new.extractor_fingerprint == "fp"

    def test_migration_is_idempotent(self, tmp_path):
        path = tmp_path / "v1.db"
        _make_v1_db(path)
        for __ in range(3):  # repeated opens must not re-alter
            with ObjectiveStore(path) as store:
                assert store.schema_version == SCHEMA_VERSION
        with ObjectiveStore(path) as store:
            assert store.count() == 1

    def test_fresh_database_is_v2(self, tmp_path):
        with ObjectiveStore(tmp_path / "fresh.db") as store:
            assert store.schema_version == SCHEMA_VERSION
        with ObjectiveStore() as memory_store:
            assert memory_store.schema_version == SCHEMA_VERSION

    def test_year_index_exists(self, tmp_path):
        with ObjectiveStore(tmp_path / "v2.db") as store:
            indexes = {
                row[0]
                for row in store.connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "idx_objectives_company_year" in indexes


class TestYearQueries:
    @pytest.fixture()
    def store(self):
        store = ObjectiveStore()
        store.insert_records(
            [
                _record("Acme Corp.", 2022),
                _record("Acme Corp.", 2023),
                _record("Blue Ltd.", 2023),
                ExtractedRecord(
                    company="Legacy Co",
                    report_id="legacy-001",
                    page=1,
                    objective="Improve things.",
                    details={},
                    score=0.5,
                ),
            ]
        )
        yield store
        store.close()

    def test_exact_year(self, store):
        rows = store.query(reporting_year=2023)
        assert {row.company for row in rows} == {"Acme Corp.", "Blue Ltd."}

    def test_range_bounds_exclude_null_years(self, store):
        assert len(store.query(min_reporting_year=2022)) == 3
        assert len(store.query(max_reporting_year=2022)) == 1
        assert len(
            store.query(min_reporting_year=2023, max_reporting_year=2023)
        ) == 2

    def test_company_and_year_combine(self, store):
        rows = store.query(company="Acme Corp.", reporting_year=2022)
        assert len(rows) == 1
        assert rows[0].reporting_year == 2022

    def test_reporting_years_listing(self, store):
        assert store.reporting_years() == [2022, 2023]
        assert store.reporting_years(company="Blue Ltd.") == [2023]
        assert store.reporting_years(company="Legacy Co") == []


@pytest.mark.durable
class TestV3Migration:
    def test_pre_v3_database_gains_digest_column(self, tmp_path):
        path = tmp_path / "v1.db"
        _make_v1_db(path)
        with ObjectiveStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION
            (row,) = store.query()
            assert row.record_digest == ""  # legacy rows are undigested
            store.insert_records([_record()])
            (new,) = store.query(reporting_year=2024)
            assert len(new.record_digest) == 64

    def test_digest_index_exists(self, tmp_path):
        with ObjectiveStore(tmp_path / "v3.db") as store:
            indexes = {
                row[0]
                for row in store.connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "idx_objectives_digest" in indexes

    def test_legacy_rows_never_dedupe(self, tmp_path):
        """Empty digests (pre-v3 rows) must not match one another."""
        path = tmp_path / "v1.db"
        _make_v1_db(path)
        with ObjectiveStore(path) as store:
            added = store.insert_records([_record()], dedupe=True)
            assert added == 1
            assert store.insert_records([_record()], dedupe=True) == 0
