"""Atomic (temp-file + rename) store writes and crash simulation."""

import pytest

from repro.goalspotter.pipeline import ExtractedRecord
from repro.runtime.errors import ModelError
from repro.runtime.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.storage.store import ObjectiveStore, atomic_store_records


def make_records(n, company="ACME"):
    return [
        ExtractedRecord(
            company=company,
            report_id="r0",
            page=index,
            objective=f"Reduce waste by {index}% by 2030",
            details={"Action": "Reduce", "Deadline": "2030"},
            score=0.9,
        )
        for index in range(n)
    ]


def count_rows(path):
    with ObjectiveStore(path) as store:
        return store.count()


class TestAtomicStore:
    def test_writes_land_completely(self, tmp_path):
        db = tmp_path / "objectives.db"
        added = atomic_store_records(db, make_records(5))
        assert added == 5
        assert count_rows(db) == 5
        assert not (tmp_path / "objectives.db.tmp").exists()

    def test_appends_to_existing_store(self, tmp_path):
        db = tmp_path / "objectives.db"
        atomic_store_records(db, make_records(3))
        atomic_store_records(db, make_records(2, company="OTHER"))
        assert count_rows(db) == 5

    def test_memory_store_rejected(self):
        with pytest.raises(ValueError):
            atomic_store_records(":memory:", make_records(1))

    def test_crash_before_rename_leaves_original_untouched(self, tmp_path):
        """Simulated crash between the temp write and the rename."""
        db = tmp_path / "objectives.db"
        atomic_store_records(db, make_records(3))
        injector = FaultInjector(
            [FaultSpec(stage="store_commit", nth_calls=(1,))]
        )
        with pytest.raises(ModelError):
            atomic_store_records(
                db, make_records(4), fault_injector=injector
            )
        # Original rows intact, no rows of the crashed batch, no debris.
        assert count_rows(db) == 3
        assert not (tmp_path / "objectives.db.tmp").exists()

    def test_crashed_write_is_retryable(self, tmp_path):
        db = tmp_path / "objectives.db"
        atomic_store_records(db, make_records(3))
        injector = FaultInjector(
            [FaultSpec(stage="store_commit", nth_calls=(1,))]
        )
        added = atomic_store_records(
            db,
            make_records(4),
            fault_injector=injector,
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
            sleep=lambda _s: None,
        )
        assert added == 4
        assert count_rows(db) == 7  # exactly once despite the crash

    def test_fault_at_stage_entry_respects_retry_policy(self, tmp_path):
        db = tmp_path / "objectives.db"
        injector = FaultInjector([FaultSpec(stage="store", nth_calls=(1,))])
        added = atomic_store_records(
            db,
            make_records(2),
            fault_injector=injector,
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.0),
            sleep=lambda _s: None,
        )
        assert added == 2
        assert count_rows(db) == 2


@pytest.mark.durable
class TestIdempotentRepublish:
    """``dedupe=True`` makes re-publishing a committed batch a no-op."""

    def test_republishing_same_batch_adds_nothing(self, tmp_path):
        db = tmp_path / "objectives.db"
        batch = make_records(4)
        assert atomic_store_records(db, batch, dedupe=True) == 4
        # A resumed durable run re-publishes the whole batch.
        assert atomic_store_records(db, batch, dedupe=True) == 0
        assert count_rows(db) == 4

    def test_partial_overlap_adds_only_new_rows(self, tmp_path):
        db = tmp_path / "objectives.db"
        batch = make_records(5)
        atomic_store_records(db, batch[:3], dedupe=True)
        assert atomic_store_records(db, batch, dedupe=True) == 2
        assert count_rows(db) == 5

    def test_identical_twin_rows_survive_dedupe(self, tmp_path):
        """Genuine duplicate records within one batch are not collapsed."""
        db = tmp_path / "objectives.db"
        twin = make_records(1)[0]
        batch = [twin, twin, twin]
        assert atomic_store_records(db, batch, dedupe=True) == 3
        assert count_rows(db) == 3
        # ...but re-publishing the twin batch is still a no-op.
        assert atomic_store_records(db, batch, dedupe=True) == 0

    def test_fingerprint_distinguishes_extractor_upgrades(self, tmp_path):
        from repro.storage import record_digest

        record = make_records(1)[0]
        assert record_digest(record, extractor_fingerprint="a") != (
            record_digest(record, extractor_fingerprint="b")
        )
        db = tmp_path / "objectives.db"
        atomic_store_records(
            db, [record], dedupe=True, extractor_fingerprint="a"
        )
        # The same record from a retrained model is a *new* row.
        assert atomic_store_records(
            db, [record], dedupe=True, extractor_fingerprint="b"
        ) == 1

    def test_crash_then_republish_is_exactly_once(self, tmp_path):
        """The durable-run story: commit, crash before ack, re-publish."""
        db = tmp_path / "objectives.db"
        batch = make_records(6)
        atomic_store_records(db, batch, dedupe=True)
        injector = FaultInjector(
            [FaultSpec(stage="store_commit", nth_calls=(1,))]
        )
        with pytest.raises(ModelError):
            atomic_store_records(
                db, make_records(2, company="OTHER"), dedupe=True,
                fault_injector=injector,
            )
        # Retry the failed batch, then spuriously retry the first one too.
        assert atomic_store_records(
            db, make_records(2, company="OTHER"), dedupe=True
        ) == 2
        assert atomic_store_records(db, batch, dedupe=True) == 0
        assert count_rows(db) == 8

    def test_without_dedupe_republish_doubles(self, tmp_path):
        """The pre-v3 behavior is preserved when dedupe is off."""
        db = tmp_path / "objectives.db"
        batch = make_records(2)
        atomic_store_records(db, batch)
        atomic_store_records(db, batch)
        assert count_rows(db) == 4
