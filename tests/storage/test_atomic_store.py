"""Atomic (temp-file + rename) store writes and crash simulation."""

import pytest

from repro.goalspotter.pipeline import ExtractedRecord
from repro.runtime.errors import ModelError
from repro.runtime.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.storage.store import ObjectiveStore, atomic_store_records


def make_records(n, company="ACME"):
    return [
        ExtractedRecord(
            company=company,
            report_id="r0",
            page=index,
            objective=f"Reduce waste by {index}% by 2030",
            details={"Action": "Reduce", "Deadline": "2030"},
            score=0.9,
        )
        for index in range(n)
    ]


def count_rows(path):
    with ObjectiveStore(path) as store:
        return store.count()


class TestAtomicStore:
    def test_writes_land_completely(self, tmp_path):
        db = tmp_path / "objectives.db"
        added = atomic_store_records(db, make_records(5))
        assert added == 5
        assert count_rows(db) == 5
        assert not (tmp_path / "objectives.db.tmp").exists()

    def test_appends_to_existing_store(self, tmp_path):
        db = tmp_path / "objectives.db"
        atomic_store_records(db, make_records(3))
        atomic_store_records(db, make_records(2, company="OTHER"))
        assert count_rows(db) == 5

    def test_memory_store_rejected(self):
        with pytest.raises(ValueError):
            atomic_store_records(":memory:", make_records(1))

    def test_crash_before_rename_leaves_original_untouched(self, tmp_path):
        """Simulated crash between the temp write and the rename."""
        db = tmp_path / "objectives.db"
        atomic_store_records(db, make_records(3))
        injector = FaultInjector(
            [FaultSpec(stage="store_commit", nth_calls=(1,))]
        )
        with pytest.raises(ModelError):
            atomic_store_records(
                db, make_records(4), fault_injector=injector
            )
        # Original rows intact, no rows of the crashed batch, no debris.
        assert count_rows(db) == 3
        assert not (tmp_path / "objectives.db.tmp").exists()

    def test_crashed_write_is_retryable(self, tmp_path):
        db = tmp_path / "objectives.db"
        atomic_store_records(db, make_records(3))
        injector = FaultInjector(
            [FaultSpec(stage="store_commit", nth_calls=(1,))]
        )
        added = atomic_store_records(
            db,
            make_records(4),
            fault_injector=injector,
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
            sleep=lambda _s: None,
        )
        assert added == 4
        assert count_rows(db) == 7  # exactly once despite the crash

    def test_fault_at_stage_entry_respects_retry_policy(self, tmp_path):
        db = tmp_path / "objectives.db"
        injector = FaultInjector([FaultSpec(stage="store", nth_calls=(1,))])
        added = atomic_store_records(
            db,
            make_records(2),
            fault_injector=injector,
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.0),
            sleep=lambda _s: None,
        )
        assert added == 2
        assert count_rows(db) == 2
