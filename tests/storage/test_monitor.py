"""Tests for analyst monitoring queries."""

import pytest

from repro.goalspotter.pipeline import ExtractedRecord
from repro.storage.monitor import (
    company_comparison,
    deadline_timeline,
    specificity_ranking,
)
from repro.storage.store import ObjectiveStore


def record(company, amount="", deadline="", baseline=""):
    details = {
        "Action": "Reduce",
        "Amount": amount,
        "Qualifier": "waste",
        "Baseline": baseline,
        "Deadline": deadline,
    }
    return ExtractedRecord(company, "r", 0, "objective text", details, 0.8)


@pytest.fixture
def store():
    with ObjectiveStore() as s:
        # Specific company: amounts + deadlines everywhere.
        s.insert_records(
            [record("Specific", "20%", "2030", "2020") for __ in range(3)]
        )
        # Vague company: action/qualifier only.
        s.insert_records([record("Vague") for __ in range(5)])
        yield s


class TestCompanyComparison:
    def test_ordered_by_count(self, store):
        stats = company_comparison(store)
        assert [s.company for s in stats] == ["Vague", "Specific"]

    def test_counts(self, store):
        stats = {s.company: s for s in company_comparison(store)}
        assert stats["Specific"].objectives == 3
        assert stats["Specific"].with_deadline == 3
        assert stats["Vague"].with_deadline == 0

    def test_mean_specificity(self, store):
        stats = {s.company: s for s in company_comparison(store)}
        assert stats["Specific"].mean_specificity == pytest.approx(5.0)
        assert stats["Vague"].mean_specificity == pytest.approx(2.0)


class TestSpecificityRanking:
    def test_specific_company_ranks_first(self, store):
        ranking = specificity_ranking(store)
        assert ranking[0][0] == "Specific"


class TestDeadlineTimeline:
    def test_counts_per_year(self, store):
        assert deadline_timeline(store) == {"2030": 3}

    def test_empty_store(self):
        with ObjectiveStore() as empty:
            assert deadline_timeline(empty) == {}


class TestNormalizedQueries:
    @pytest.fixture
    def typed_store(self):
        from repro.storage.store import ObjectiveStore

        with ObjectiveStore() as s:
            s.insert_records(
                [
                    record("NetZeroCo", amount="net-zero", deadline="2040"),
                    record("NetZeroCo2", amount="carbon neutral", deadline=""),
                    record("Cutter", amount="40%", deadline="2030",
                           baseline="2020"),
                    record("SmallCutter", amount="10%", deadline="2026",
                           baseline="2024"),
                ]
            )
            yield s

    def test_net_zero_pledges(self, typed_store):
        from repro.storage.monitor import net_zero_pledges

        pledges = net_zero_pledges(typed_store)
        assert ("NetZeroCo", 2040) in pledges
        assert ("NetZeroCo2", None) in pledges
        assert all(company != "Cutter" for company, __ in pledges)

    def test_reduction_targets_threshold(self, typed_store):
        from repro.storage.monitor import reduction_targets

        targets = reduction_targets(typed_store, min_percent=20.0)
        assert [t[0] for t in targets] == ["Cutter"]
        assert targets[0][1] == 40.0
        assert targets[0][2] == 2030

    def test_horizon_statistics(self, typed_store):
        from repro.storage.monitor import horizon_statistics

        stats = horizon_statistics(typed_store)
        assert stats["count"] == 2.0
        assert stats["min"] == 2.0
        assert stats["max"] == 10.0
        assert stats["mean"] == pytest.approx(6.0)

    def test_horizon_statistics_empty(self):
        from repro.storage.monitor import horizon_statistics
        from repro.storage.store import ObjectiveStore

        with ObjectiveStore() as empty:
            assert horizon_statistics(empty)["count"] == 0.0
