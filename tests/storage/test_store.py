"""Tests for the SQLite objective store."""

import pytest

from repro.goalspotter.pipeline import ExtractedRecord
from repro.storage.store import ObjectiveStore


def record(company="ACME", deadline="2030", amount="20%", score=0.9):
    return ExtractedRecord(
        company=company,
        report_id="r0",
        page=3,
        objective=f"Reduce waste by {amount} by {deadline}.",
        details={
            "Action": "Reduce",
            "Amount": amount,
            "Qualifier": "waste",
            "Baseline": "",
            "Deadline": deadline,
        },
        score=score,
    )


@pytest.fixture
def store():
    with ObjectiveStore() as s:
        yield s


class TestObjectiveStore:
    def test_insert_and_count(self, store):
        assert store.insert_records([record(), record("Other")]) == 2
        assert store.count() == 2
        assert store.count("ACME") == 1

    def test_companies_listing(self, store):
        store.insert_records([record("B"), record("A"), record("B")])
        assert store.companies() == ["A", "B"]

    def test_query_by_company(self, store):
        store.insert_records([record("A"), record("B")])
        rows = store.query(company="A")
        assert len(rows) == 1
        assert rows[0].company == "A"

    def test_query_has_field(self, store):
        with_deadline = record(deadline="2030")
        without_deadline = record(deadline="")
        store.insert_records([with_deadline, without_deadline])
        rows = store.query(has_field="Deadline")
        assert len(rows) == 1

    def test_query_unknown_field_raises(self, store):
        with pytest.raises(KeyError):
            store.query(has_field="Nope")

    def test_deadline_range(self, store):
        store.insert_records(
            [record(deadline="2025"), record(deadline="2040"),
             record(deadline="")]
        )
        assert len(store.query(deadline_before="2030")) == 1
        assert len(store.query(deadline_after="2030")) == 1

    def test_min_score_and_order(self, store):
        store.insert_records(
            [record(score=0.4), record(score=0.9), record(score=0.7)]
        )
        rows = store.query(min_score=0.5, order_by_score=True)
        assert [r.score for r in rows] == [0.9, 0.7]

    def test_limit(self, store):
        store.insert_records([record() for __ in range(5)])
        assert len(store.query(limit=2)) == 2

    def test_details_roundtrip(self, store):
        store.insert_records([record()])
        row = store.query()[0]
        assert row.details["Amount"] == "20%"
        assert row.details["Baseline"] == ""

    def test_specificity(self, store):
        store.insert_records([record()])
        assert store.query()[0].specificity == 4  # all but Baseline

    def test_field_fill_rates(self, store):
        store.insert_records([record(deadline="2030"), record(deadline="")])
        rates = store.field_fill_rates()
        assert rates["Deadline"] == 0.5
        assert rates["Action"] == 1.0

    def test_fill_rates_empty_store(self, store):
        rates = store.field_fill_rates()
        assert all(v == 0.0 for v in rates.values())

    def test_file_persistence(self, tmp_path):
        path = tmp_path / "objectives.db"
        with ObjectiveStore(path) as store:
            store.insert_records([record()])
        with ObjectiveStore(path) as reopened:
            assert reopened.count() == 1
