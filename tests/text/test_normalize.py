"""Tests for GoalSpotter-style text normalization."""

import pytest
from hypothesis import given, strategies as st

from repro.text.normalize import NormalizerConfig, TextNormalizer


@pytest.fixture
def normalizer() -> TextNormalizer:
    return TextNormalizer()


class TestTextNormalizer:
    def test_collapses_whitespace(self, normalizer):
        assert normalizer("a  b\t c\nd") == "a b c d"

    def test_strips_edges(self, normalizer):
        assert normalizer("  hello  ") == "hello"

    def test_folds_em_dash(self, normalizer):
        assert normalizer("2020—2025") == "2020-2025"

    def test_folds_en_dash(self, normalizer):
        assert normalizer("2020–2025") == "2020-2025"

    def test_folds_curly_quotes(self, normalizer):
        assert normalizer("“net-zero”") == '"net-zero"'
        assert normalizer("company’s") == "company's"

    def test_folds_nonbreaking_space(self, normalizer):
        assert normalizer("20 %") == "20 %"

    def test_removes_soft_hyphen(self, normalizer):
        assert normalizer("sustain­ability") == "sustainability"

    def test_strips_control_characters(self, normalizer):
        assert normalizer("a\x01b\x02c") == "a b c"

    def test_nfkc_folds_superscripts(self, normalizer):
        assert normalizer("CO₂") == "CO2"

    def test_bullet_becomes_space(self, normalizer):
        assert normalizer("• Reduce waste") == "Reduce waste"

    def test_lowercase_off_by_default(self, normalizer):
        assert normalizer("Reduce") == "Reduce"

    def test_lowercase_option(self):
        lowering = TextNormalizer(NormalizerConfig(lowercase=True))
        assert lowering("ReDuce") == "reduce"

    def test_disabled_options_are_respected(self):
        raw = TextNormalizer(
            NormalizerConfig(
                fold_unicode_punctuation=False,
                collapse_whitespace=False,
                strip_control_characters=False,
                nfkc=False,
            )
        )
        assert raw("a  —b") == "a  —b"

    def test_idempotent_on_clean_text(self, normalizer):
        text = "Reduce energy consumption by 20% by 2025 (baseline 2017)."
        assert normalizer(text) == text

    @given(st.text(max_size=200))
    def test_normalization_is_idempotent(self, text):
        normalizer = TextNormalizer()
        once = normalizer(text)
        assert normalizer(once) == once

    @given(st.text(max_size=200))
    def test_output_has_no_double_spaces(self, text):
        result = TextNormalizer()(text)
        assert "  " not in result
        assert result == result.strip()
