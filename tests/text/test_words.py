"""Tests for the offset-preserving word tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.text.words import Token, WordTokenizer


@pytest.fixture
def tokenizer() -> WordTokenizer:
    return WordTokenizer()


class TestWordTokenizer:
    def test_paper_table3_granularity(self, tokenizer):
        # Table 3 splits "co-founded" into co / - / founded and
        # "net-zero" into net / - / zero.
        words = tokenizer.words("We co-founded it to reach net-zero.")
        assert words == [
            "We", "co", "-", "founded", "it", "to", "reach",
            "net", "-", "zero", ".",
        ]

    def test_percent_kept_with_number(self, tokenizer):
        assert tokenizer.words("by 20% by") == ["by", "20%", "by"]

    def test_decimal_numbers(self, tokenizer):
        assert tokenizer.words("8.1% in 1,000") == ["8.1%", "in", "1,000"]

    def test_years(self, tokenizer):
        assert tokenizer.words("by 2040.") == ["by", "2040", "."]

    def test_alphanumeric_words(self, tokenizer):
        assert tokenizer.words("CO2 emissions") == ["CO2", "emissions"]

    def test_offsets_roundtrip(self, tokenizer):
        text = "Reduce energy consumption by 20% by 2025 (baseline 2017)."
        for token in tokenizer.tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_empty_text(self, tokenizer):
        assert tokenizer.tokenize("") == []

    def test_whitespace_only(self, tokenizer):
        assert tokenizer.tokenize("   \t\n ") == []

    def test_punctuation_is_isolated(self, tokenizer):
        assert tokenizer.words("(baseline 2017).") == [
            "(", "baseline", "2017", ")", ".",
        ]

    def test_currency(self, tokenizer):
        assert tokenizer.words("$50 million") == ["$", "50", "million"]

    def test_token_span_validation(self):
        with pytest.raises(ValueError):
            Token("x", -1, 0)
        with pytest.raises(ValueError):
            Token("x", 5, 3)

    @given(st.text(max_size=300))
    def test_offsets_always_match_source(self, text):
        tokenizer = WordTokenizer()
        for token in tokenizer.tokenize(text):
            assert text[token.start : token.end] == token.text

    @given(st.text(max_size=300))
    def test_tokens_are_ordered_and_disjoint(self, text):
        tokens = WordTokenizer().tokenize(text)
        for left, right in zip(tokens, tokens[1:]):
            assert left.end <= right.start

    @given(st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")), max_size=100))
    def test_no_alnum_char_is_dropped(self, text):
        tokens = WordTokenizer().tokenize(text)
        covered = sum(token.end - token.start for token in tokens)
        assert covered == len(text)
