"""Tests for the Vocabulary mapping."""

import pytest

from repro.text.vocab import SPECIAL_TOKENS, Vocabulary


class TestVocabulary:
    def test_specials_come_first(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.tokens[: len(SPECIAL_TOKENS)] == list(SPECIAL_TOKENS)

    def test_pad_is_zero(self):
        assert Vocabulary().pad_id == 0

    def test_roundtrip(self):
        vocab = Vocabulary(["alpha", "beta", "gamma"])
        ids = vocab.encode(["beta", "alpha"])
        assert vocab.decode(ids) == ["beta", "alpha"]

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["known"])
        assert vocab.id_of("unknown") == vocab.unk_id

    def test_duplicates_are_ignored(self):
        vocab = Vocabulary(["x", "x", "y"])
        assert len(vocab) == len(SPECIAL_TOKENS) + 2

    def test_contains(self):
        vocab = Vocabulary(["here"])
        assert "here" in vocab
        assert "gone" not in vocab

    def test_token_of_out_of_range(self):
        vocab = Vocabulary()
        with pytest.raises(IndexError):
            vocab.token_of(len(vocab))

    def test_special_ids_are_distinct(self):
        vocab = Vocabulary()
        ids = {
            vocab.pad_id, vocab.unk_id, vocab.cls_id,
            vocab.sep_id, vocab.mask_id,
        }
        assert len(ids) == 5

    def test_save_load_roundtrip(self, tmp_path):
        vocab = Vocabulary(["one", "two", "three"])
        vocab.save(tmp_path / "vocab.json")
        loaded = Vocabulary.load(tmp_path / "vocab.json")
        assert loaded.tokens == vocab.tokens
