"""Tests for the trainable BPE tokenizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.text.bpe import (
    BpeTokenizer,
    END_OF_WORD,
    SubwordEncoding,
    _word_to_symbols,
    train_bpe,
)

CORPUS = (
    "reduce reduce reduce reducing reduced emissions emissions emission "
    "by by by by 2030 2030 water water use consumption consumption"
).split()


@pytest.fixture(scope="module")
def tokenizer() -> BpeTokenizer:
    return BpeTokenizer.train(CORPUS, num_merges=100)


class TestTrainBpe:
    def test_learns_frequent_pairs_first(self):
        merges = train_bpe(["aaab"] * 10 + ["xy"], num_merges=5)
        assert merges[0] == ("a", "a")

    def test_respects_num_merges(self):
        merges = train_bpe(CORPUS, num_merges=3)
        assert len(merges) <= 3

    def test_min_pair_count_stops_early(self):
        merges = train_bpe(["abcdef"], num_merges=100, min_pair_count=2)
        assert merges == []

    def test_empty_corpus(self):
        assert train_bpe([], num_merges=10) == []

    def test_word_to_symbols_marks_end(self):
        assert _word_to_symbols("ab") == ("a", "b" + END_OF_WORD)

    def test_word_to_symbols_rejects_empty(self):
        with pytest.raises(ValueError):
            _word_to_symbols("")


class TestBpeTokenizer:
    def test_frequent_word_is_single_piece(self, tokenizer):
        pieces = tokenizer.encode_word("by")
        assert pieces == ("by" + END_OF_WORD,)

    def test_encode_decode_roundtrip(self, tokenizer):
        words = ["reduce", "emissions", "by", "2030"]
        encoding = tokenizer.encode(words)
        assert tokenizer.decode(encoding) == words

    def test_unseen_word_degrades_to_pieces(self, tokenizer):
        pieces = tokenizer.encode_word("zebra")
        assert tokenizer.decode_word(pieces) == "zebra"

    def test_word_ids_are_monotone(self, tokenizer):
        encoding = tokenizer.encode(["reduce", "consumption", "by"])
        assert list(encoding.word_ids) == sorted(encoding.word_ids)
        assert set(encoding.word_ids) == {0, 1, 2}

    def test_every_word_produces_a_piece(self, tokenizer):
        words = ["water", "use", "x"]
        encoding = tokenizer.encode(words)
        assert set(encoding.word_ids) == {0, 1, 2}

    def test_known_pieces_not_unk(self, tokenizer):
        encoding = tokenizer.encode(["reduce"])
        assert all(i != tokenizer.vocab.unk_id for i in encoding.ids)

    def test_encoding_lengths_parallel(self, tokenizer):
        encoding = tokenizer.encode(["emissions", "by"])
        assert len(encoding.pieces) == len(encoding.ids) == len(
            encoding.word_ids
        )

    def test_subword_encoding_validates(self):
        with pytest.raises(ValueError):
            SubwordEncoding(("a",), (1, 2), (0,))

    def test_save_load_roundtrip(self, tokenizer, tmp_path):
        tokenizer.save(tmp_path / "bpe.json")
        loaded = BpeTokenizer.load(tmp_path / "bpe.json")
        words = ["reducing", "water", "2030"]
        assert loaded.encode(words).pieces == tokenizer.encode(words).pieces
        assert len(loaded.vocab) == len(tokenizer.vocab)

    def test_cache_is_consistent(self, tokenizer):
        first = tokenizer.encode_word("consumption")
        second = tokenizer.encode_word("consumption")
        assert first == second


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=12,
        ).filter(lambda w: "<" not in w and ">" not in w),
        min_size=1,
        max_size=30,
    )
)
def test_bpe_roundtrip_property(words):
    """encode -> decode recovers the exact word sequence."""
    tokenizer = BpeTokenizer.train(words, num_merges=50)
    encoding = tokenizer.encode(words)
    assert tokenizer.decode(encoding) == words


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.sampled_from(CORPUS),
        min_size=1,
        max_size=20,
    )
)
def test_word_ids_cover_all_words(words):
    tokenizer = BpeTokenizer.train(CORPUS, num_merges=60)
    encoding = tokenizer.encode(words)
    assert set(encoding.word_ids) == set(range(len(words)))
