"""Regression: caches must not retain results produced during a fault.

ISSUE 2 satellite: the BpeTokenizer word LRU and the extractor's
normalize memo compute-then-cache; a fault raised mid-compute (injected or
organic) must leave no partial entry and no phantom hit/miss counts.
"""

import pytest

from repro.core.extractor import WeakSupervisionExtractor
from repro.runtime.errors import ModelError
from repro.text.bpe import BpeTokenizer


class TestBpeCacheFaultSafety:
    def make_tokenizer(self):
        return BpeTokenizer.train(["reduce", "waste", "reduce"], num_merges=10)

    def test_fault_during_encode_leaves_cache_clean(self, monkeypatch):
        tokenizer = self.make_tokenizer()
        tokenizer.clear_cache()
        expected = tokenizer.encode_word("waste")
        tokenizer.clear_cache()

        real_id_of = tokenizer.vocab.id_of
        state = {"poisoned": True}

        def poisoned_id_of(piece):
            if state["poisoned"]:
                raise ModelError("injected vocab fault", stage="tokenize")
            return real_id_of(piece)

        monkeypatch.setattr(tokenizer.vocab, "id_of", poisoned_id_of)
        with pytest.raises(ModelError):
            tokenizer.encode_word("waste")

        # The faulted call cached nothing and counted nothing.
        info = tokenizer.cache_info()
        assert info["size"] == 0
        assert info["hits"] == 0
        assert info["misses"] == 0

        # After the fault clears, encoding produces the correct result —
        # not a poisoned cached entry.
        state["poisoned"] = False
        assert tokenizer.encode_word("waste") == expected
        info = tokenizer.cache_info()
        assert info["size"] == 1
        assert info["misses"] == 1

    def test_fault_mid_batch_keeps_only_pre_fault_entries(self, monkeypatch):
        tokenizer = self.make_tokenizer()
        tokenizer.clear_cache()

        real_apply = tokenizer._apply_merges

        def poisoned_apply(word):
            if word == "waste":
                raise ModelError("injected merge fault", stage="tokenize")
            return real_apply(word)

        monkeypatch.setattr(tokenizer, "_apply_merges", poisoned_apply)
        with pytest.raises(ModelError):
            tokenizer.encode(["reduce", "waste"])
        # "reduce" finished cleanly before the fault: a valid entry.
        info = tokenizer.cache_info()
        assert info["size"] == 1
        assert info["misses"] == 1
        assert tokenizer.encode_word("reduce")  # served from cache
        assert tokenizer.cache_info()["hits"] == 1


class TestNormalizeCacheFaultSafety:
    def test_fault_during_normalize_leaves_memo_clean(self, monkeypatch):
        extractor = WeakSupervisionExtractor()
        expected = extractor._normalize_cached("Reduce WASTE by 20%")
        extractor._normalize_cache.clear()
        extractor._normalize_hits = 0
        extractor._normalize_misses = 0

        real_normalizer = extractor.normalizer
        state = {"poisoned": True}

        def poisoned(text):
            if state["poisoned"]:
                raise ModelError("injected normalize fault", stage="tokenize")
            return real_normalizer(text)

        monkeypatch.setattr(extractor, "normalizer", poisoned)
        with pytest.raises(ModelError):
            extractor._normalize_cached("Reduce WASTE by 20%")
        assert len(extractor._normalize_cache) == 0
        assert extractor._normalize_misses == 0

        state["poisoned"] = False
        assert extractor._normalize_cached("Reduce WASTE by 20%") == expected
        assert extractor._normalize_misses == 1
        assert len(extractor._normalize_cache) == 1
