"""Tests for padding and minibatch iteration."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nn.batching import iterate_minibatches, pad_sequences


class TestPadSequences:
    def test_basic_padding(self):
        ids, mask = pad_sequences([[1, 2, 3], [4]])
        np.testing.assert_array_equal(ids, [[1, 2, 3], [4, 0, 0]])
        np.testing.assert_array_equal(mask, [[1, 1, 1], [1, 0, 0]])

    def test_custom_pad_value(self):
        ids, __ = pad_sequences([[1], [2, 3]], pad_value=9)
        assert ids[0, 1] == 9

    def test_max_len_truncates(self):
        ids, mask = pad_sequences([[1, 2, 3, 4, 5]], max_len=3)
        assert ids.shape == (1, 3)
        np.testing.assert_array_equal(mask, [[1, 1, 1]])

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            pad_sequences([])

    def test_all_empty_sequences(self):
        ids, mask = pad_sequences([[], []])
        assert ids.shape == (2, 1)
        assert mask.sum() == 0

    def test_explicit_width_overrides_longest(self):
        ids, mask = pad_sequences([[1, 2], [3]], width=5)
        assert ids.shape == (2, 5)
        np.testing.assert_array_equal(mask, [[1, 1, 0, 0, 0], [1, 0, 0, 0, 0]])

    def test_explicit_width_truncates(self):
        ids, mask = pad_sequences([[1, 2, 3, 4], [5]], width=2)
        np.testing.assert_array_equal(ids, [[1, 2], [5, 0]])
        np.testing.assert_array_equal(mask, [[1, 1], [1, 0]])

    def test_width_wins_over_max_len(self):
        # The scheduler's width decision is authoritative: planning and
        # padding must not disagree.
        ids, __ = pad_sequences([[1, 2, 3]], max_len=2, width=3)
        assert ids.shape == (1, 3)

    def test_ids_dtype_and_mask_values(self):
        ids, mask = pad_sequences([[7, 8], [9]])
        assert ids.dtype == np.int64
        assert set(np.unique(mask)) <= {0.0, 1.0}

    @given(
        st.lists(
            st.lists(st.integers(1, 100), max_size=20),
            min_size=1,
            max_size=10,
        )
    )
    def test_mask_counts_match_lengths(self, sequences):
        __, mask = pad_sequences(sequences)
        for row, seq in zip(mask, sequences):
            assert row.sum() == len(seq)

    @given(
        st.lists(
            st.lists(st.integers(1, 100), max_size=20),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=1, max_value=25),
    )
    def test_width_mask_counts_are_clipped_lengths(self, sequences, width):
        ids, mask = pad_sequences(sequences, width=width)
        assert ids.shape == (len(sequences), width)
        for row, seq in zip(mask, sequences):
            assert row.sum() == min(len(seq), width)


class TestIterateMinibatches:
    def test_covers_all_indices(self):
        batches = list(iterate_minibatches(10, 3))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == list(range(10))

    def test_sequential_without_rng(self):
        batches = list(iterate_minibatches(5, 2))
        np.testing.assert_array_equal(batches[0], [0, 1])

    def test_shuffled_with_rng(self):
        rng = np.random.default_rng(0)
        batches = list(iterate_minibatches(100, 100, rng))
        assert not np.array_equal(batches[0], np.arange(100))
        assert sorted(batches[0].tolist()) == list(range(100))

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(5, 0))

    def test_last_batch_may_be_smaller(self):
        batches = list(iterate_minibatches(7, 3))
        assert [len(b) for b in batches] == [3, 3, 1]
