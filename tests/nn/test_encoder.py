"""Tests for the transformer encoder stack."""

import numpy as np
import pytest

from repro.nn.encoder import (
    EncoderConfig,
    FeedForward,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from tests.nn.gradcheck import assert_close, numeric_gradient


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def config():
    return EncoderConfig(
        vocab_size=30, dim=8, num_layers=2, num_heads=2, ffn_dim=16,
        max_len=12, dropout=0.0,
    )


class TestEncoderConfig:
    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            EncoderConfig(vocab_size=10, dim=10, num_heads=3)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            EncoderConfig(vocab_size=0)


class TestFeedForward:
    def test_gradient(self, rng):
        ffn = FeedForward(6, 12, rng, dropout=0.0)
        ffn.eval()
        x = rng.normal(size=(2, 6))
        dout = rng.normal(size=(2, 6))

        def loss(x_in):
            return float((ffn.forward(x_in) * dout).sum())

        ffn.forward(x)
        dx = ffn.backward(dout)
        assert_close(dx, numeric_gradient(loss, x.copy()), rtol=1e-3)


class TestEncoderLayer:
    def test_gradient(self, rng):
        layer = TransformerEncoderLayer(8, 2, 16, rng, dropout=0.0)
        layer.eval()
        x = rng.normal(size=(1, 4, 8))
        mask = np.ones((1, 4))
        dout = rng.normal(size=(1, 4, 8))

        def loss(x_in):
            return float((layer.forward(x_in, mask) * dout).sum())

        layer.forward(x, mask)
        dx = layer.backward(dout)
        assert_close(dx, numeric_gradient(loss, x.copy()), rtol=1e-3)


class TestTransformerEncoder:
    def test_forward_shape(self, config, rng):
        encoder = TransformerEncoder(config, rng)
        ids = rng.integers(0, 30, size=(3, 7))
        states = encoder(ids, np.ones((3, 7)))
        assert states.shape == (3, 7, 8)

    def test_rejects_too_long(self, config, rng):
        encoder = TransformerEncoder(config, rng)
        ids = np.zeros((1, 13), dtype=int)
        with pytest.raises(ValueError):
            encoder(ids, np.ones((1, 13)))

    def test_rejects_1d_input(self, config, rng):
        encoder = TransformerEncoder(config, rng)
        with pytest.raises(ValueError):
            encoder(np.zeros(5, dtype=int), np.ones(5))

    def test_position_sensitivity(self, config, rng):
        """Same token in different positions gets different states."""
        encoder = TransformerEncoder(config, rng)
        encoder.eval()
        ids = np.array([[7, 7, 7]])
        states = encoder(ids, np.ones((1, 3)))
        assert not np.allclose(states[0, 0], states[0, 1])

    def test_embedding_gradient_flows(self, config, rng):
        encoder = TransformerEncoder(config, rng)
        encoder.eval()
        ids = rng.integers(0, 30, size=(2, 5))
        states = encoder(ids, np.ones((2, 5)))
        encoder.zero_grad()
        encoder.backward(np.ones_like(states))
        touched = encoder.token_embedding.weight.grad[np.unique(ids)]
        assert np.abs(touched).sum() > 0

    def test_deterministic_in_eval(self, config, rng):
        encoder = TransformerEncoder(config, rng)
        encoder.eval()
        ids = rng.integers(0, 30, size=(2, 5))
        mask = np.ones((2, 5))
        np.testing.assert_array_equal(encoder(ids, mask), encoder(ids, mask))

    def test_num_parameters_positive(self, config, rng):
        encoder = TransformerEncoder(config, rng)
        assert encoder.num_parameters() > 0
