"""Numerical gradient checking helpers for the numpy DL substrate."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def numeric_gradient(
    func: Callable[[np.ndarray], float],
    x: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_grad = grad.reshape(-1)
    for index in range(flat_x.size):
        original = flat_x[index]
        flat_x[index] = original + epsilon
        plus = func(x)
        flat_x[index] = original - epsilon
        minus = func(x)
        flat_x[index] = original
        flat_grad[index] = (plus - minus) / (2 * epsilon)
    return grad


def assert_close(
    analytic: np.ndarray,
    numeric: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
