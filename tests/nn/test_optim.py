"""Tests for optimizers, clipping, and schedules."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import Adam, AdamW, LinearWarmupDecay, clip_grad_norm


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


class TestAdam:
    def test_minimizes_quadratic(self):
        param = quadratic_param()
        optimizer = Adam([param], lr=0.3)
        for __ in range(200):
            param.zero_grad()
            param.grad += 2 * param.value  # d/dx x^2
            optimizer.step()
        assert abs(param.value[0]) < 1e-2

    def test_lr_scale(self):
        param = quadratic_param()
        optimizer = Adam([param], lr=0.1)
        param.grad += 2 * param.value
        before = param.value.copy()
        optimizer.step(lr_scale=0.0)
        np.testing.assert_array_equal(param.value, before)

    def test_coupled_weight_decay_changes_grad(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=0.5)
        # No loss gradient: only decay drives the update.
        optimizer.step()
        assert param.value[0] < 1.0

    def test_zero_grad(self):
        param = quadratic_param()
        optimizer = Adam([param])
        param.grad += 1.0
        optimizer.zero_grad()
        np.testing.assert_array_equal(param.grad, 0.0)


class TestAdamW:
    def test_decoupled_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        optimizer = AdamW([param], lr=0.1, weight_decay=0.1)
        optimizer.step()  # zero gradient, pure decay
        assert 0.98 < param.value[0] < 1.0

    def test_minimizes_quadratic(self):
        param = quadratic_param()
        optimizer = AdamW([param], lr=0.3, weight_decay=0.01)
        for __ in range(200):
            param.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        assert abs(param.value[0]) < 1e-2


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        param = Parameter(np.zeros(4))
        param.grad += np.array([0.1, 0.1, 0.1, 0.1])
        norm = clip_grad_norm([param], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        np.testing.assert_allclose(param.grad, 0.1)

    def test_clips_above_threshold(self):
        param = Parameter(np.zeros(1))
        param.grad += np.array([100.0])
        clip_grad_norm([param], max_norm=1.0)
        assert abs(param.grad[0]) <= 1.0 + 1e-9

    def test_global_norm_across_params(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad += 3.0
        b.grad += 4.0
        norm = clip_grad_norm([a, b], max_norm=5.0)
        assert norm == pytest.approx(5.0)


class TestLinearWarmupDecay:
    def test_warmup_ramps_up(self):
        schedule = LinearWarmupDecay(warmup_steps=10, total_steps=100)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(9) == pytest.approx(1.0)

    def test_decays_to_floor(self):
        schedule = LinearWarmupDecay(
            warmup_steps=0, total_steps=10, floor=0.05
        )
        assert schedule(10) == pytest.approx(0.05)

    def test_monotone_decay_after_warmup(self):
        schedule = LinearWarmupDecay(warmup_steps=5, total_steps=50)
        values = [schedule(step) for step in range(5, 50)]
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_total(self):
        with pytest.raises(ValueError):
            LinearWarmupDecay(0, 0)
