"""End-to-end gradient check: loss -> head -> encoder -> embeddings."""

import numpy as np
import pytest

from repro.models.token_classifier import TokenClassifier
from repro.nn.encoder import EncoderConfig
from repro.nn.loss import IGNORE_INDEX, cross_entropy
from tests.nn.gradcheck import assert_close, numeric_gradient


@pytest.fixture
def setup(rng):
    config = EncoderConfig(
        vocab_size=12, dim=8, num_layers=2, num_heads=2, ffn_dim=16,
        max_len=6, dropout=0.0,
    )
    model = TokenClassifier(config, num_labels=3, rng=rng)
    model.eval()
    ids = rng.integers(0, 12, size=(2, 4))
    mask = np.ones((2, 4))
    mask[1, 3] = 0.0
    labels = np.array([[0, 1, 2, 0], [2, 0, IGNORE_INDEX, IGNORE_INDEX]])
    return model, ids, mask, labels


def _loss_of(model, ids, mask, labels) -> float:
    logits = model.forward(ids, mask)
    batch, time, width = logits.shape
    loss, __ = cross_entropy(
        logits.reshape(batch * time, width),
        labels.reshape(batch * time),
    )
    return loss


@pytest.mark.parametrize(
    "param_name",
    [
        "encoder.token_embedding.weight",
        "encoder.position_embedding.weight",
        "encoder.layers.0.attention.query_proj.weight",
        "encoder.layers.1.ffn.expand.weight",
        "encoder.layers.0.attn_norm.gamma",
        "encoder.final_norm.beta",
        "head.weight",
        "head.bias",
    ],
)
def test_parameter_gradients_match_numeric(setup, param_name):
    """Every layer's parameter gradient agrees with central differences
    through the entire model + loss."""
    model, ids, mask, labels = setup
    params = dict(model.named_parameters())
    param = params[param_name]

    model.zero_grad()
    model.loss_and_backward(ids, mask, labels)
    analytic = param.grad.copy()

    def loss_fn(value):
        param.value = value
        return _loss_of(model, ids, mask, labels)

    numeric = numeric_gradient(loss_fn, param.value.copy())
    assert_close(analytic, numeric, rtol=5e-3, atol=1e-7)
