"""Numeric gradient checks and behaviour tests for core layers."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from tests.nn.gradcheck import assert_close, numeric_gradient


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 6, rng)
        out = layer(rng.normal(size=(2, 3, 4)))
        assert out.shape == (2, 3, 6)

    def test_input_gradient(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4))
        dout = rng.normal(size=(2, 3))

        def loss(x_in):
            return float((layer.forward(x_in) * dout).sum())

        layer.forward(x)
        dx = layer.backward(dout)
        assert_close(dx, numeric_gradient(loss, x.copy()))

    def test_weight_gradient(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        dout = rng.normal(size=(5, 3))

        def loss(w):
            layer.weight.value = w
            return float((layer.forward(x) * dout).sum())

        w0 = layer.weight.value.copy()
        layer.forward(x)
        layer.zero_grad()
        layer.backward(dout)
        analytic = layer.weight.grad.copy()
        numeric = numeric_gradient(loss, w0.copy())
        assert_close(analytic, numeric)

    def test_bias_gradient(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        dout = rng.normal(size=(4, 2))
        layer.forward(x)
        layer.zero_grad()
        layer.backward(dout)
        assert_close(layer.bias.grad, dout.sum(axis=0))

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert layer(np.zeros((1, 3))).shape == (1, 2)

    def test_backward_before_forward_raises(self, rng):
        layer = Linear(2, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestEmbedding:
    def test_forward_lookup(self, rng):
        layer = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [2, 3]])
        out = layer(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 1], out[1, 0])

    def test_gradient_accumulates_for_repeated_ids(self, rng):
        layer = Embedding(5, 3, rng)
        ids = np.array([[1, 1, 2]])
        dout = np.ones((1, 3, 3))
        layer(ids)
        layer.zero_grad()
        layer.backward(dout)
        np.testing.assert_allclose(layer.weight.grad[1], 2 * np.ones(3))
        np.testing.assert_allclose(layer.weight.grad[2], np.ones(3))
        np.testing.assert_allclose(layer.weight.grad[0], np.zeros(3))


class TestLayerNorm:
    def test_output_is_normalized(self, rng):
        layer = LayerNorm(8)
        out = layer(rng.normal(size=(4, 8)) * 5 + 3)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_input_gradient(self, rng):
        layer = LayerNorm(6)
        layer.gamma.value = rng.normal(size=6)
        layer.beta.value = rng.normal(size=6)
        x = rng.normal(size=(3, 6))
        dout = rng.normal(size=(3, 6))

        def loss(x_in):
            return float((layer.forward(x_in) * dout).sum())

        layer.forward(x)
        dx = layer.backward(dout)
        assert_close(dx, numeric_gradient(loss, x.copy()), rtol=1e-3)

    def test_gamma_beta_gradients(self, rng):
        layer = LayerNorm(4)
        x = rng.normal(size=(5, 4))
        dout = rng.normal(size=(5, 4))

        def loss_gamma(g):
            layer.gamma.value = g
            return float((layer.forward(x) * dout).sum())

        g0 = layer.gamma.value.copy()
        layer.forward(x)
        layer.zero_grad()
        layer.backward(dout)
        assert_close(
            layer.gamma.grad, numeric_gradient(loss_gamma, g0.copy()),
            rtol=1e-3,
        )
        assert_close(layer.beta.grad, dout.sum(axis=0))

    def test_3d_input(self, rng):
        layer = LayerNorm(4)
        out = layer(rng.normal(size=(2, 3, 4)))
        assert out.shape == (2, 3, 4)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = rng.normal(size=(10, 10))
        np.testing.assert_array_equal(layer(x), x)

    def test_train_mode_zeroes_and_scales(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((100, 100))
        out = layer(x)
        values = set(np.unique(np.round(out, 6)))
        assert values <= {0.0, 2.0}

    def test_preserves_expectation(self, rng):
        layer = Dropout(0.3, rng)
        x = np.ones((200, 200))
        assert abs(layer(x).mean() - 1.0) < 0.02

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((50, 50))
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_zero_probability_is_identity(self, rng):
        layer = Dropout(0.0, rng)
        x = rng.normal(size=(5, 5))
        np.testing.assert_array_equal(layer(x), x)

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
        with pytest.raises(ValueError):
            Dropout(-0.1, rng)
