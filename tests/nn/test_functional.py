"""Tests for activation/normalization functions."""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.functional import gelu, gelu_grad, log_softmax, logsumexp, softmax
from tests.nn.gradcheck import numeric_gradient


class TestGelu:
    def test_zero_at_zero(self):
        assert gelu(np.zeros(1))[0] == 0.0

    def test_approaches_identity_for_large_x(self):
        np.testing.assert_allclose(gelu(np.array([10.0]))[0], 10.0, rtol=1e-4)

    def test_vanishes_for_large_negative_x(self):
        assert abs(gelu(np.array([-10.0]))[0]) < 1e-4

    def test_grad_matches_numeric(self):
        x = np.linspace(-3, 3, 13)

        def scalar_sum(x_in):
            return float(gelu(x_in).sum())

        np.testing.assert_allclose(
            gelu_grad(x), numeric_gradient(scalar_sum, x.copy()), rtol=1e-4
        )


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(4, 7)))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_stable_for_large_inputs(self):
        probs = softmax(np.array([[1e9, 1e9 - 1.0]]))
        assert np.isfinite(probs).all()

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)))


class TestLogsumexp:
    def test_matches_naive(self):
        x = np.random.default_rng(2).normal(size=(4, 6))
        np.testing.assert_allclose(
            logsumexp(x, axis=-1), np.log(np.exp(x).sum(axis=-1))
        )

    def test_stable(self):
        assert np.isfinite(logsumexp(np.array([1e9, 1e9])))

    @given(
        hnp.arrays(np.float64, (5,), elements=st.floats(-50, 50))
    )
    def test_upper_bounds_max(self, x):
        assert logsumexp(x, axis=0) >= x.max() - 1e-9
