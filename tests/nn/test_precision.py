"""Tests for the global precision switch."""

import numpy as np
import pytest

from repro.nn import precision
from repro.nn.encoder import EncoderConfig, TransformerEncoder
from repro.nn.module import Parameter


class TestPrecision:
    def test_default_inside_nn_tests_is_float64(self):
        # The tests/nn conftest pins float64 for gradient checks.
        assert precision.dtype() is np.float64

    def test_parameter_uses_current_dtype(self):
        precision.set_dtype(np.float32)
        try:
            param = Parameter(np.ones(3))
            assert param.value.dtype == np.float32
        finally:
            precision.set_dtype(np.float64)

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            precision.set_dtype(np.int32)

    def test_forward_preserves_dtype(self):
        precision.set_dtype(np.float32)
        try:
            config = EncoderConfig(
                vocab_size=20, dim=8, num_layers=1, num_heads=2,
                ffn_dim=16, max_len=8, dropout=0.0,
            )
            encoder = TransformerEncoder(config, np.random.default_rng(0))
            encoder.eval()
            ids = np.array([[1, 2, 3]])
            mask = np.ones((1, 3), dtype=np.float32)
            states = encoder(ids, mask)
            assert states.dtype == np.float32
        finally:
            precision.set_dtype(np.float64)
