"""Gradient and masking tests for multi-head self-attention."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention
from tests.nn.gradcheck import assert_close, numeric_gradient


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.fixture
def attention(rng):
    layer = MultiHeadSelfAttention(dim=8, num_heads=2, rng=rng, dropout=0.0)
    layer.eval()
    return layer


class TestMultiHeadSelfAttention:
    def test_forward_shape(self, attention, rng):
        x = rng.normal(size=(2, 5, 8))
        mask = np.ones((2, 5))
        assert attention(x, mask).shape == (2, 5, 8)

    def test_dim_must_divide(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=7, num_heads=2, rng=rng)

    def test_padding_does_not_affect_real_positions(self, attention, rng):
        x = rng.normal(size=(1, 4, 8))
        mask_full = np.array([[1.0, 1.0, 1.0, 0.0]])
        out_masked = attention(x, mask_full)
        # Changing the padded position's content must not change outputs
        # at real positions.
        x2 = x.copy()
        x2[0, 3] = rng.normal(size=8) * 100
        out_masked2 = attention(x2, mask_full)
        np.testing.assert_allclose(
            out_masked[0, :3], out_masked2[0, :3], atol=1e-10
        )

    def test_input_gradient(self, attention, rng):
        x = rng.normal(size=(1, 3, 8))
        mask = np.ones((1, 3))
        dout = rng.normal(size=(1, 3, 8))

        def loss(x_in):
            return float((attention.forward(x_in, mask) * dout).sum())

        attention.forward(x, mask)
        dx = attention.backward(dout)
        assert_close(dx, numeric_gradient(loss, x.copy()), rtol=1e-3)

    def test_input_gradient_with_padding(self, attention, rng):
        x = rng.normal(size=(2, 4, 8))
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]], dtype=float)
        dout = rng.normal(size=(2, 4, 8))

        def loss(x_in):
            return float((attention.forward(x_in, mask) * dout).sum())

        attention.forward(x, mask)
        dx = attention.backward(dout)
        assert_close(dx, numeric_gradient(loss, x.copy()), rtol=1e-3)

    def test_parameter_gradient(self, attention, rng):
        x = rng.normal(size=(1, 3, 8))
        mask = np.ones((1, 3))
        dout = rng.normal(size=(1, 3, 8))

        def loss(w):
            attention.query_proj.weight.value = w
            return float((attention.forward(x, mask) * dout).sum())

        w0 = attention.query_proj.weight.value.copy()
        attention.forward(x, mask)
        attention.zero_grad()
        attention.backward(dout)
        assert_close(
            attention.query_proj.weight.grad,
            numeric_gradient(loss, w0.copy()),
            rtol=1e-3,
        )

    def test_attention_weights_sum_to_one(self, attention, rng):
        x = rng.normal(size=(1, 5, 8))
        mask = np.array([[1, 1, 1, 1, 0]], dtype=float)
        attention(x, mask)
        weights = attention._cache["weights"]
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-9)
        # Padded key gets ~zero attention everywhere.
        assert weights[..., 4].max() < 1e-6
