"""Gradient and masking tests for multi-head self-attention."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention
from tests.nn.gradcheck import assert_close, numeric_gradient


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.fixture
def attention(rng):
    layer = MultiHeadSelfAttention(dim=8, num_heads=2, rng=rng, dropout=0.0)
    layer.eval()
    return layer


class TestMultiHeadSelfAttention:
    def test_forward_shape(self, attention, rng):
        x = rng.normal(size=(2, 5, 8))
        mask = np.ones((2, 5))
        assert attention(x, mask).shape == (2, 5, 8)

    def test_dim_must_divide(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=7, num_heads=2, rng=rng)

    def test_padding_does_not_affect_real_positions(self, attention, rng):
        x = rng.normal(size=(1, 4, 8))
        mask_full = np.array([[1.0, 1.0, 1.0, 0.0]])
        out_masked = attention(x, mask_full)
        # Changing the padded position's content must not change outputs
        # at real positions.
        x2 = x.copy()
        x2[0, 3] = rng.normal(size=8) * 100
        out_masked2 = attention(x2, mask_full)
        np.testing.assert_allclose(
            out_masked[0, :3], out_masked2[0, :3], atol=1e-10
        )

    def test_input_gradient(self, attention, rng):
        x = rng.normal(size=(1, 3, 8))
        mask = np.ones((1, 3))
        dout = rng.normal(size=(1, 3, 8))

        def loss(x_in):
            return float((attention.forward(x_in, mask) * dout).sum())

        attention.forward(x, mask)
        dx = attention.backward(dout)
        assert_close(dx, numeric_gradient(loss, x.copy()), rtol=1e-3)

    def test_input_gradient_with_padding(self, attention, rng):
        x = rng.normal(size=(2, 4, 8))
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]], dtype=float)
        dout = rng.normal(size=(2, 4, 8))

        def loss(x_in):
            return float((attention.forward(x_in, mask) * dout).sum())

        attention.forward(x, mask)
        dx = attention.backward(dout)
        assert_close(dx, numeric_gradient(loss, x.copy()), rtol=1e-3)

    def test_parameter_gradient(self, attention, rng):
        x = rng.normal(size=(1, 3, 8))
        mask = np.ones((1, 3))
        dout = rng.normal(size=(1, 3, 8))

        def loss(w):
            attention.query_proj.weight.value = w
            return float((attention.forward(x, mask) * dout).sum())

        w0 = attention.query_proj.weight.value.copy()
        attention.forward(x, mask)
        attention.zero_grad()
        attention.backward(dout)
        assert_close(
            attention.query_proj.weight.grad,
            numeric_gradient(loss, w0.copy()),
            rtol=1e-3,
        )

    def test_key_and_value_parameter_gradients(self, attention, rng):
        """The fused backward must split gradients to all three projections."""
        x = rng.normal(size=(1, 3, 8))
        mask = np.ones((1, 3))
        dout = rng.normal(size=(1, 3, 8))
        attention.forward(x, mask)
        attention.zero_grad()
        attention.backward(dout)
        for proj_name in ("key_proj", "value_proj"):
            proj = getattr(attention, proj_name)

            def loss(w, proj=proj):
                proj.weight.value = w
                return float((attention.forward(x, mask) * dout).sum())

            w0 = proj.weight.value.copy()
            numeric = numeric_gradient(loss, w0.copy())
            proj.weight.value = w0
            assert_close(proj.weight.grad, numeric, rtol=1e-3)

    def test_attention_weights_sum_to_one(self, attention, rng):
        x = rng.normal(size=(1, 5, 8))
        mask = np.array([[1, 1, 1, 1, 0]], dtype=float)
        attention(x, mask)
        weights = attention._cache["weights"]
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-9)
        # Padded key gets ~zero attention everywhere.
        assert weights[..., 4].max() < 1e-6


class TestFusedQkvProjection:
    """The single-GEMM QKV path must match three separate projections."""

    def _reference_forward(self, attention, x, mask):
        queries = attention._split_heads(attention.query_proj(x))
        keys = attention._split_heads(attention.key_proj(x))
        values = attention._split_heads(attention.value_proj(x))
        scale = 1.0 / np.sqrt(attention.head_dim)
        scores = (queries @ keys.transpose(0, 1, 3, 2)) * scale
        key_mask = mask[:, None, None, :]
        scores = np.where(key_mask > 0, scores, -1e9)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted) * (key_mask > 0)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        context = weights @ values
        return attention.out_proj(attention._merge_heads(context))

    def test_forward_matches_three_projections(self, attention, rng):
        x = rng.normal(size=(2, 5, 8))
        mask = np.array(
            [[1, 1, 1, 1, 1], [1, 1, 1, 0, 0]], dtype=np.float64
        )
        fused = attention(x, mask)
        reference = self._reference_forward(attention, x, mask)
        # Compare real positions only; padded rows are garbage by contract.
        for row, real in enumerate((5, 3)):
            np.testing.assert_allclose(
                fused[row, :real], reference[row, :real], rtol=1e-6, atol=1e-8
            )

    def test_fused_weights_concatenate_in_qkv_order(self, attention):
        weight, bias = attention._fused_qkv_weights()
        dim = attention.dim
        np.testing.assert_array_equal(
            weight[:, :dim], attention.query_proj.weight.value
        )
        np.testing.assert_array_equal(
            weight[:, dim : 2 * dim], attention.key_proj.weight.value
        )
        np.testing.assert_array_equal(
            weight[:, 2 * dim :], attention.value_proj.weight.value
        )
        np.testing.assert_array_equal(bias[:dim], attention.query_proj.bias.value)

    def test_ctx_pinning_does_not_change_values(self, rng):
        plain = MultiHeadSelfAttention(dim=8, num_heads=2, rng=rng, dropout=0.0)
        pinned = MultiHeadSelfAttention(
            dim=8, num_heads=2, rng=rng, dropout=0.0, ctx_pad_to=16
        )
        for proj in ("query_proj", "key_proj", "value_proj", "out_proj"):
            getattr(pinned, proj).weight.value = (
                getattr(plain, proj).weight.value.copy()
            )
            getattr(pinned, proj).bias.value = (
                getattr(plain, proj).bias.value.copy()
            )
        plain.eval()
        pinned.eval()
        x = rng.normal(size=(1, 5, 8))
        mask = np.array([[1, 1, 1, 1, 0]], dtype=np.float64)
        np.testing.assert_allclose(
            plain(x, mask)[0, :4], pinned(x, mask)[0, :4], rtol=1e-9
        )

    def test_ctx_pinning_makes_output_width_invariant(self, rng):
        pinned = MultiHeadSelfAttention(
            dim=8, num_heads=2, rng=rng, dropout=0.0, ctx_pad_to=16
        )
        pinned.eval()
        x_small = rng.normal(size=(1, 4, 8)).astype(np.float32)
        x_large = np.zeros((1, 12, 8), dtype=np.float32)
        x_large[:, :4] = x_small
        x_large[:, 4:] = rng.normal(size=(1, 8, 8))  # padded garbage
        mask_small = np.ones((1, 4), dtype=np.float32)
        mask_large = np.zeros((1, 12), dtype=np.float32)
        mask_large[:, :4] = 1.0
        out_small = pinned(x_small, mask_small)[0, :4]
        out_large = pinned(x_large, mask_large)[0, :4]
        assert np.array_equal(out_small, out_large)
