"""Tests for the Module/Parameter base machinery."""

import numpy as np
import pytest

from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module, Parameter


class Toy(Module):
    def __init__(self, rng):
        super().__init__()
        self.linear = Linear(3, 3, rng)
        self.norm = LayerNorm(3)
        self.stack = [Linear(3, 3, rng), Linear(3, 3, rng)]

    def forward(self, x):
        return self.norm(self.linear(x))


@pytest.fixture
def toy():
    return Toy(np.random.default_rng(0))


class TestModule:
    def test_named_parameters_cover_children_and_lists(self, toy):
        names = {name for name, __ in toy.named_parameters()}
        assert "linear.weight" in names
        assert "norm.gamma" in names
        assert "stack.0.weight" in names
        assert "stack.1.bias" in names

    def test_parameter_count(self, toy):
        # 3 Linears: (3*3 + 3) each; LayerNorm: 3 + 3.
        assert toy.num_parameters() == 3 * 12 + 6

    def test_train_eval_propagates(self, toy):
        toy.eval()
        assert all(not m.training for m in toy.modules())
        toy.train()
        assert all(m.training for m in toy.modules())

    def test_zero_grad(self, toy):
        for param in toy.parameters():
            param.grad += 1.0
        toy.zero_grad()
        assert all(np.all(p.grad == 0) for p in toy.parameters())

    def test_state_dict_roundtrip(self, toy):
        state = toy.state_dict()
        other = Toy(np.random.default_rng(42))
        other.load_state_dict(state)
        for (__, a), (__, b) in zip(
            toy.named_parameters(), other.named_parameters()
        ):
            np.testing.assert_array_equal(a.value, b.value)

    def test_load_rejects_missing_keys(self, toy):
        state = toy.state_dict()
        state.pop("linear.weight")
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_load_rejects_extra_keys(self, toy):
        state = toy.state_dict()
        state["phantom"] = np.zeros(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self, toy):
        state = toy.state_dict()
        state["linear.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            toy.load_state_dict(state)

    def test_parameter_repr(self):
        assert "shape" in repr(Parameter(np.zeros((2, 3))))
