"""Gradient-check tests need float64 precision; restore float32 after."""

import numpy as np
import pytest

from repro.nn import precision


@pytest.fixture(autouse=True)
def float64_precision():
    previous = precision.dtype()
    precision.set_dtype(np.float64)
    yield
    precision.set_dtype(previous)
