"""Tests for residual-coded int8 quantization and its equivalence gate."""

import numpy as np
import pytest

from repro.models.token_classifier import TokenClassifier
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.encoder import EncoderConfig
from repro.nn.layers import Linear
from repro.nn.module import inference_mode
from repro.nn.quant import (
    INT8,
    QMAX,
    EquivalenceReport,
    dequantize_module,
    dequantize_weight,
    equivalence_report,
    quantization_state,
    quantize_module,
    quantize_weight,
)
from repro.nn.serialize import state_digest

pytestmark = pytest.mark.quant


@pytest.fixture
def weight():
    rng = np.random.default_rng(0)
    w = rng.normal(scale=0.2, size=(24, 16))
    w[:, 3] = 0.0  # an all-zero output channel
    return w


class TestQuantizeWeight:
    def test_codes_within_symmetric_range(self, weight):
        tensor = quantize_weight(weight)
        for plane in (tensor.q, tensor.q2):
            assert plane.dtype == np.int8
            assert plane.min() >= -QMAX
            assert plane.max() <= QMAX

    def test_operands_are_exact_code_images(self, weight):
        tensor = quantize_weight(weight)
        np.testing.assert_array_equal(tensor.operand, tensor.q)
        np.testing.assert_array_equal(tensor.operand2, tensor.q2)

    def test_primary_scale_is_per_channel_absmax(self, weight):
        tensor = quantize_weight(weight)
        absmax = np.abs(np.asarray(weight, dtype=np.float32)).max(axis=0)
        expected = np.where(absmax > 0, absmax / QMAX, 1.0)
        np.testing.assert_allclose(tensor.scale, expected, rtol=1e-6)

    def test_residual_plane_bounds_the_error(self, weight):
        """Two code planes shrink worst-case error from ``scale/2`` to
        ``scale2/2`` — roughly 250x — which is the whole point."""
        tensor = quantize_weight(weight)
        error = np.abs(
            np.asarray(weight, dtype=np.float32) - dequantize_weight(tensor)
        )
        # Residual rounding bound per channel, plus fp slack.
        bound = tensor.scale2 / 2 + 1e-7
        assert (error <= bound).all()
        # And far tighter than single-plane int8 could be.
        single_plane_error = np.abs(
            np.asarray(weight, dtype=np.float32)
            - tensor.operand * tensor.scale
        )
        assert error.max() < single_plane_error.max() / 50

    def test_zero_column_roundtrips_exactly(self, weight):
        tensor = quantize_weight(weight)
        np.testing.assert_array_equal(dequantize_weight(tensor)[:, 3], 0.0)

    def test_arrays_are_frozen(self, weight):
        tensor = quantize_weight(weight)
        with pytest.raises(ValueError):
            tensor.q[0, 0] = 0

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            quantize_weight(np.ones(5))

    def test_matmul_matches_two_plane_formula(self, weight):
        tensor = quantize_weight(weight)
        x = np.random.default_rng(1).normal(size=(3, 24)).astype(np.float32)
        expected = (x @ tensor.operand) * tensor.scale + (
            x @ tensor.operand2
        ) * tensor.scale2
        np.testing.assert_array_equal(tensor.matmul(x), expected)


class TestLinearAttachment:
    def test_inference_forward_close_detach_bitwise(self, rng):
        layer = Linear(8, 6, rng)
        x = rng.normal(size=(4, 8))
        with inference_mode():
            baseline = layer(x)
            layer.attach_quantized(quantize_weight(layer.weight.value))
            quantized = layer(x)
            assert layer.detach_quantized()
            restored = layer(x)
        assert not np.array_equal(baseline, quantized)
        np.testing.assert_allclose(quantized, baseline, atol=1e-4)
        np.testing.assert_array_equal(restored, baseline)

    def test_row_invariant_path(self, rng):
        layer = Linear(8, 3, rng, row_invariant=True)
        layer.attach_quantized(quantize_weight(layer.weight.value))
        x = rng.normal(size=(5, 8))
        with inference_mode():
            batched = layer(x)
            single = np.stack([layer(row[None])[0] for row in x])
        np.testing.assert_array_equal(batched, single)

    def test_training_forward_ignores_quantization(self, rng):
        layer = Linear(8, 6, rng)
        x = rng.normal(size=(4, 8))
        baseline = layer(x)
        layer.attach_quantized(quantize_weight(layer.weight.value))
        np.testing.assert_array_equal(layer(x), baseline)

    def test_shape_mismatch_rejected(self, rng):
        layer = Linear(8, 6, rng)
        with pytest.raises(ValueError):
            layer.attach_quantized(quantize_weight(np.ones((4, 4))))


class TestModuleQuantization:
    @pytest.fixture
    def model(self):
        config = EncoderConfig(
            vocab_size=40, dim=16, num_layers=2, num_heads=2, ffn_dim=32,
            max_len=12, dropout=0.0,
        )
        return TokenClassifier(
            config, num_labels=3, rng=np.random.default_rng(7)
        )

    def test_attachment_census(self, model):
        """Every attention quantizes fused; its q/k/v Linears do not."""
        attentions = sum(
            isinstance(m, MultiHeadSelfAttention) for m in model.modules()
        )
        linears = sum(isinstance(m, Linear) for m in model.modules())
        count = quantize_module(model)
        assert count == attentions + (linears - 3 * attentions)
        for child in model.modules():
            if isinstance(child, MultiHeadSelfAttention):
                assert child._quant_fused is not None
                assert child.query_proj._quant is None
        assert dequantize_module(model) == count

    def test_quantization_state_transitions(self, model):
        assert quantization_state(model) is None
        quantize_module(model)
        assert quantization_state(model) == INT8
        dequantize_module(model)
        assert quantization_state(model) is None

    def test_unknown_mode_rejected(self, model):
        with pytest.raises(ValueError):
            quantize_module(model, mode="int4")

    def test_predictions_close_and_restore_bitwise(self, model):
        sequences = [[1, 2, 3, 4], [5, 6], [7, 8, 9, 10, 11]]
        baseline = model.predict_logits(sequences)
        assert model.enable_quantization() > 0
        quantized = model.predict_logits(sequences)
        assert model.disable_quantization() > 0
        restored = model.predict_logits(sequences)
        for base, quant, rest in zip(baseline, quantized, restored):
            assert not np.array_equal(base, quant)
            np.testing.assert_allclose(quant, base, atol=1e-3)
            np.testing.assert_array_equal(rest, base)

    def test_fingerprint_matches_state_digest_and_survives(self, model):
        """Quantization attaches derived state only: the fingerprint —
        the cache's weight pin, same convention as ``state_digest`` —
        must not move, while the *variant* separates the entries."""
        before = model.fingerprint()
        assert before == state_digest(model)
        quantize_module(model)
        assert model.fingerprint() == before
        dequantize_module(model)
        assert model.fingerprint() == before


class TestEquivalenceGate:
    def test_pass_and_report_fields(self):
        baseline = [np.array([[0.1, 0.9], [0.8, 0.2]])]
        candidate = [np.array([[0.11, 0.89], [0.79, 0.21]])]
        report = equivalence_report(baseline, candidate, bound=0.05)
        assert report.passed
        assert report.total == 1
        assert report.top_label_matches == 1
        assert report.max_abs_delta == pytest.approx(0.01)
        assert report.as_dict()["passed"] is True

    def test_label_flip_fails_even_within_bound(self):
        baseline = [np.array([0.51, 0.49])]
        candidate = [np.array([0.49, 0.51])]
        report = equivalence_report(baseline, candidate, bound=1.0)
        assert not report.passed
        assert report.top_label_matches == 0

    def test_delta_overflow_fails_even_with_matching_labels(self):
        baseline = [np.array([1.0, 0.0])]
        candidate = [np.array([2.0, 0.0])]
        report = equivalence_report(baseline, candidate, bound=0.5)
        assert not report.passed
        assert report.top_label_matches == 1

    def test_zero_bound_is_a_synthetic_refusal(self):
        """bound=0.0 refuses any real quantization (nonzero delta)."""
        baseline = [np.array([0.6, 0.4])]
        candidate = [np.array([0.6 + 1e-7, 0.4])]
        assert not equivalence_report(baseline, candidate, bound=0.0).passed

    def test_empty_items_match(self):
        report = equivalence_report(
            [np.zeros((0, 3))], [np.zeros((0, 3))], bound=0.1
        )
        assert report.passed

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            equivalence_report([np.zeros((2, 3))], [np.zeros((3, 3))], 0.1)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            equivalence_report([np.zeros(2)], [], 0.1)

    def test_report_is_frozen(self):
        report = EquivalenceReport(
            total=1, top_label_matches=1, max_abs_delta=0.0, bound=0.1
        )
        with pytest.raises(Exception):
            report.total = 2
