"""Tests for npz state persistence."""

import numpy as np

from repro.nn.encoder import EncoderConfig, TransformerEncoder
from repro.nn.serialize import load_state, save_state


def test_save_load_roundtrip(tmp_path):
    config = EncoderConfig(
        vocab_size=20, dim=8, num_layers=1, num_heads=2, ffn_dim=16,
        max_len=10, dropout=0.0,
    )
    encoder = TransformerEncoder(config, np.random.default_rng(0))
    path = tmp_path / "enc.npz"
    save_state(encoder, path)

    other = TransformerEncoder(config, np.random.default_rng(99))
    load_state(other, path)

    ids = np.array([[1, 2, 3]])
    mask = np.ones((1, 3))
    encoder.eval()
    other.eval()
    np.testing.assert_allclose(encoder(ids, mask), other(ids, mask))
