"""Tests for softmax cross-entropy with ignore-index."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.loss import IGNORE_INDEX, cross_entropy
from tests.nn.gradcheck import assert_close, numeric_gradient


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, __ = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((4, 3))
        loss, __ = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss == pytest.approx(np.log(3))

    def test_ignore_index_excluded(self):
        logits = np.array([[10.0, 0.0], [0.0, 10.0]])
        loss_all, __ = cross_entropy(logits, np.array([0, 0]))
        loss_ignored, dlogits = cross_entropy(
            logits, np.array([0, IGNORE_INDEX])
        )
        assert loss_ignored < loss_all
        np.testing.assert_array_equal(dlogits[1], 0.0)

    def test_all_ignored(self):
        logits = np.ones((2, 3))
        loss, dlogits = cross_entropy(
            logits, np.array([IGNORE_INDEX, IGNORE_INDEX])
        )
        assert loss == 0.0
        np.testing.assert_array_equal(dlogits, 0.0)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 3, IGNORE_INDEX, 2])

        def loss_fn(l):
            return cross_entropy(l, targets)[0]

        __, dlogits = cross_entropy(logits.copy(), targets)
        assert_close(dlogits, numeric_gradient(loss_fn, logits.copy()), rtol=1e-4)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        __, dlogits = cross_entropy(logits, np.array([1, 2, 0]))
        np.testing.assert_allclose(dlogits.sum(axis=1), 0.0, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))

    def test_extreme_logits_stable(self):
        logits = np.array([[1e9, -1e9], [-1e9, 1e9]])
        loss, dlogits = cross_entropy(logits, np.array([0, 1]))
        assert np.isfinite(loss)
        assert np.isfinite(dlogits).all()

    @given(
        hnp.arrays(
            np.float64,
            (6, 4),
            elements=st.floats(-20, 20),
        ),
        st.lists(st.integers(0, 3), min_size=6, max_size=6),
    )
    def test_loss_nonnegative(self, logits, targets):
        loss, __ = cross_entropy(logits, np.array(targets))
        assert loss >= 0.0
