"""CRF and prompting baselines on the NetZeroFacts schema."""

import pytest

from repro.core.schema import NETZEROFACTS_FIELDS
from repro.crf.extractor import CrfConfig, CrfDetailExtractor
from repro.datasets.base import train_test_split
from repro.datasets.netzerofacts import build_netzerofacts
from repro.eval import evaluate_extractions
from repro.llm import PromptingExtractor


@pytest.fixture(scope="module")
def nz_split():
    dataset = build_netzerofacts(seed=2, size=200)
    return train_test_split(dataset, 0.2, seed=0)


class TestNetZeroFactsBaselines:
    def test_crf_learns_emission_schema(self, nz_split):
        train, test = nz_split
        extractor = CrfDetailExtractor(
            fields=NETZEROFACTS_FIELDS, config=CrfConfig(epochs=5)
        )
        extractor.fit(train.objectives)
        predictions = extractor.extract_batch(
            [o.text for o in test.objectives]
        )
        report = evaluate_extractions(
            predictions,
            [o.details for o in test.objectives],
            NETZEROFACTS_FIELDS,
        )
        assert report.f1 > 0.5

    def test_few_shot_prompting_on_emission_schema(self, nz_split):
        train, test = nz_split
        extractor = PromptingExtractor(
            "few", fields=NETZEROFACTS_FIELDS, seed=1
        )
        extractor.fit(train.objectives)
        predictions = extractor.extract_batch(
            [o.text for o in test.objectives[:50]]
        )
        report = evaluate_extractions(
            predictions,
            [o.details for o in test.objectives[:50]],
            NETZEROFACTS_FIELDS,
        )
        assert report.f1 > 0.3  # heuristic reading works on emission goals

    def test_zero_below_few(self, nz_split):
        train, test = nz_split
        texts = [o.text for o in test.objectives[:60]]
        gold = [o.details for o in test.objectives[:60]]
        scores = {}
        for mode in ("zero", "few"):
            extractor = PromptingExtractor(
                mode, fields=NETZEROFACTS_FIELDS, seed=2
            )
            extractor.fit(train.objectives)
            predictions = extractor.extract_batch(texts)
            scores[mode] = evaluate_extractions(
                predictions, gold, NETZEROFACTS_FIELDS
            ).f1
        assert scores["few"] >= scores["zero"]
