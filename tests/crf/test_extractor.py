"""End-to-end tests for the CRF detail extractor."""

import pytest

from repro.core.schema import AnnotatedObjective
from repro.crf.extractor import CrfConfig, CrfDetailExtractor


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    extractor = CrfDetailExtractor(config=CrfConfig(epochs=4))
    return extractor.fit(tiny_dataset.objectives)


class TestCrfDetailExtractor:
    def test_fit_returns_self(self, tiny_dataset):
        extractor = CrfDetailExtractor(config=CrfConfig(epochs=1))
        assert extractor.fit(tiny_dataset.objectives[:10]) is extractor

    def test_extract_has_all_fields(self, fitted):
        details = fitted.extract("Reduce waste by 20% by 2030.")
        assert set(details) == {
            "Action", "Amount", "Qualifier", "Baseline", "Deadline",
        }

    def test_learns_training_patterns(self, fitted, tiny_dataset):
        """On its own training data the CRF should be mostly right."""
        from repro.eval import evaluate_extractions

        subset = tiny_dataset.objectives[:30]
        predictions = fitted.extract_batch([o.text for o in subset])
        report = evaluate_extractions(
            predictions, [o.details for o in subset], tiny_dataset.fields
        )
        assert report.f1 > 0.6

    def test_extract_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CrfDetailExtractor().extract("text")

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            CrfDetailExtractor().fit([])

    def test_empty_text_extraction(self, fitted):
        details = fitted.extract("...")
        assert all(isinstance(v, str) for v in details.values())

    def test_weak_stats_populated(self, fitted):
        assert fitted.weak_stats.annotations_total > 0
        assert fitted.weak_stats.coverage > 0.9

    def test_values_are_substrings(self, fitted):
        text = "Cut energy consumption by 25% by 2031 (baseline 2019)."
        details = fitted.extract(text)
        for value in details.values():
            if value:
                assert value in text

    def test_extract_single_objective(self):
        examples = [
            AnnotatedObjective(
                f"Reduce waste by {p}% by {y}.",
                {"Action": "Reduce", "Amount": f"{p}%", "Deadline": str(y)},
            )
            for p, y in zip(range(10, 60, 5), range(2025, 2035))
        ]
        extractor = CrfDetailExtractor(config=CrfConfig(epochs=6)).fit(examples)
        details = extractor.extract("Reduce waste by 33% by 2040.")
        assert details["Amount"] == "33%"
        assert details["Action"] == "Reduce"


class TestPersistence:
    def test_save_load_roundtrip(self, fitted, tmp_path):
        fitted.save(tmp_path / "crf")
        from repro.crf.extractor import CrfDetailExtractor

        loaded = CrfDetailExtractor.load(tmp_path / "crf")
        text = "Reduce waste by 20% by 2030."
        assert loaded.extract(text) == fitted.extract(text)

    def test_save_unfitted_raises(self, tmp_path):
        from repro.crf.extractor import CrfDetailExtractor

        with pytest.raises(RuntimeError):
            CrfDetailExtractor().save(tmp_path / "x")
