"""Tests for CRF feature extraction."""

import pytest

from repro.crf.features import FeatureExtractor, token_features, token_shape


class TestTokenShape:
    @pytest.mark.parametrize(
        "token,shape",
        [
            ("Reduce", "Xx"),
            ("2040", "d"),
            ("20%", "d%"),
            ("net-zero", "x-x"),
            ("CO2", "Xd"),
            ("ALL", "X"),
            ("", ""),
        ],
    )
    def test_shapes(self, token, shape):
        assert token_shape(token) == shape


class TestTokenFeatures:
    def test_lexical_feature_present(self):
        features = token_features(["Reduce", "waste"], 0)
        assert "w0=reduce" in features

    def test_orthographic_features(self):
        features = token_features(["2040"], 0)
        assert "is_year=True" in features
        assert "is_digit=True" in features

    def test_percent_feature(self):
        assert "has_percent=True" in token_features(["20%"], 0)

    def test_bos_eos(self):
        features_first = token_features(["a", "b"], 0)
        features_last = token_features(["a", "b"], 1)
        assert "BOS" in features_first
        assert "EOS" in features_last

    def test_context_features(self):
        features = token_features(["cut", "waste", "by"], 1)
        assert "w-1=cut" in features
        assert "w+1=by" in features
        assert "w-1|w0=cut|waste" in features

    def test_wide_context(self):
        features = token_features(["a", "b", "c", "d", "e"], 2)
        assert "w-2=a" in features
        assert "w+2=e" in features

    def test_year_not_flagged_for_word(self):
        assert "is_year=False" in token_features(["waste"], 0)


class TestFeatureExtractor:
    def test_fit_interns_features(self):
        extractor = FeatureExtractor()
        ids = extractor.fit_sentence(["Reduce", "waste"])
        assert len(extractor) > 0
        assert all(isinstance(i, int) for row in ids for i in row)

    def test_same_feature_same_id(self):
        extractor = FeatureExtractor()
        first = extractor.fit_sentence(["waste"])
        second = extractor.fit_sentence(["waste"])
        assert first == second

    def test_transform_skips_unseen(self):
        extractor = FeatureExtractor()
        extractor.fit_sentence(["known"])
        extractor.freeze()
        transformed = extractor.transform_sentence(["unseen"])
        known_count = len(extractor.transform_sentence(["known"])[0])
        assert len(transformed[0]) < known_count

    def test_frozen_rejects_fit(self):
        extractor = FeatureExtractor()
        extractor.freeze()
        with pytest.raises(RuntimeError):
            extractor.fit_sentence(["x"])
