"""Batched Viterbi must be bitwise-identical to sequential decoding.

``viterbi_batch`` pads the emission matrices and vectorizes the DP over
sentences; the tests pin that the vectorization changes nothing — not
even argmax tie-breaking, which integer-valued weights force constantly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crf.extractor import CrfConfig, CrfDetailExtractor
from repro.crf.model import LinearChainCRF


def make_crf(seed: int, num_features: int = 8, num_labels: int = 4):
    rng = np.random.default_rng(seed)
    crf = LinearChainCRF(num_features=num_features, num_labels=num_labels)
    crf.emission_weights = rng.normal(size=crf.emission_weights.shape)
    crf.transition_weights = rng.normal(size=crf.transition_weights.shape)
    crf.start_weights = rng.normal(size=num_labels)
    crf.end_weights = rng.normal(size=num_labels)
    return crf


def random_sentences(rng, count, num_features, max_len=7):
    sentences = []
    for __ in range(count):
        length = int(rng.integers(1, max_len + 1))
        sentences.append(
            [
                sorted(
                    set(
                        map(
                            int,
                            rng.integers(
                                0,
                                num_features,
                                size=int(rng.integers(1, 4)),
                            ),
                        )
                    )
                )
                for __ in range(length)
            ]
        )
    return sentences


class TestViterbiBatch:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 8))
    def test_matches_sequential_bitwise(self, seed, count):
        crf = make_crf(seed)
        sentences = random_sentences(
            np.random.default_rng(seed + 1), count, crf.num_features
        )
        expected = [crf.viterbi(sentence) for sentence in sentences]
        assert crf.viterbi_batch(sentences) == expected

    def test_tie_breaking_identical_under_integer_weights(self):
        """Integer weights make equal-score paths ubiquitous; batched
        argmax must pick exactly the label sequential argmax picks."""
        crf = make_crf(0)
        rng = np.random.default_rng(42)
        crf.emission_weights = rng.integers(
            -1, 2, size=crf.emission_weights.shape
        ).astype(float)
        crf.transition_weights = np.zeros_like(crf.transition_weights)
        crf.start_weights = np.zeros_like(crf.start_weights)
        crf.end_weights = np.zeros_like(crf.end_weights)
        sentences = random_sentences(rng, 12, crf.num_features)
        expected = [crf.viterbi(sentence) for sentence in sentences]
        assert crf.viterbi_batch(sentences) == expected

    def test_all_zero_weights_break_ties_to_label_zero(self):
        crf = LinearChainCRF(num_features=3, num_labels=3)
        sentences = [[[0], [1]], [[2]]]
        assert crf.viterbi_batch(sentences) == [[0, 0], [0]]

    def test_mixed_lengths(self):
        crf = make_crf(5)
        sentences = [
            [[0]],
            [[1], [2], [3], [4], [5], [6], [7]],
            [[0, 1], [2, 3]],
        ]
        expected = [crf.viterbi(sentence) for sentence in sentences]
        assert crf.viterbi_batch(sentences) == expected

    def test_empty_batch(self):
        assert make_crf(1).viterbi_batch([]) == []

    def test_zero_length_sentences(self):
        crf = make_crf(2)
        assert crf.viterbi_batch([[], [[0]], []]) == [
            [],
            crf.viterbi([[0]]),
            [],
        ]

    def test_single_sentence_equals_viterbi(self):
        crf = make_crf(3)
        sentence = [[0, 2], [1], [3, 4]]
        assert crf.viterbi_batch([sentence]) == [crf.viterbi(sentence)]


class TestExtractorBatchDecode:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset):
        extractor = CrfDetailExtractor(config=CrfConfig(epochs=2))
        return extractor.fit(tiny_dataset.objectives[:40])

    def test_extract_batch_matches_sequential(self, fitted, tiny_dataset):
        texts = [o.text for o in tiny_dataset.objectives[:20]]
        texts += ["", "...", texts[0]]  # empty-token and duplicate inputs
        assert fitted.extract_batch(texts) == [
            fitted.extract(text) for text in texts
        ]

    def test_extract_batch_empty(self, fitted):
        assert fitted.extract_batch([]) == []
