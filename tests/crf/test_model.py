"""Tests for the linear-chain CRF: brute-force checks on tiny chains."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crf.model import LinearChainCRF


def brute_force_log_partition(crf: LinearChainCRF, features) -> float:
    """Enumerate all label paths and logsumexp their scores."""
    length = len(features)
    scores = [
        crf.sequence_score(features, list(path))
        for path in itertools.product(range(crf.num_labels), repeat=length)
    ]
    return float(np.log(np.sum(np.exp(scores))))


@pytest.fixture
def small_crf():
    rng = np.random.default_rng(5)
    crf = LinearChainCRF(num_features=6, num_labels=3)
    crf.emission_weights = rng.normal(size=crf.emission_weights.shape)
    crf.transition_weights = rng.normal(size=crf.transition_weights.shape)
    crf.start_weights = rng.normal(size=3)
    crf.end_weights = rng.normal(size=3)
    return crf


@pytest.fixture
def features():
    return [[0, 2], [1], [3, 4, 5], [0]]


class TestPartition:
    def test_matches_brute_force(self, small_crf, features):
        assert small_crf.log_partition(features) == pytest.approx(
            brute_force_log_partition(small_crf, features)
        )

    def test_log_likelihood_is_negative_log_prob(self, small_crf, features):
        total = 0.0
        for path in itertools.product(range(3), repeat=len(features)):
            total += np.exp(small_crf.log_likelihood(features, list(path)))
        assert total == pytest.approx(1.0)

    def test_partition_upper_bounds_any_path(self, small_crf, features):
        log_z = small_crf.log_partition(features)
        for path in itertools.product(range(3), repeat=len(features)):
            assert small_crf.sequence_score(features, list(path)) <= log_z + 1e-9


class TestMarginals:
    def test_unary_marginals_sum_to_one(self, small_crf, features):
        unary, __ = small_crf.marginals(features)
        np.testing.assert_allclose(unary.sum(axis=1), 1.0)

    def test_unary_matches_brute_force(self, small_crf, features):
        unary, __ = small_crf.marginals(features)
        log_z = small_crf.log_partition(features)
        expected = np.zeros_like(unary)
        for path in itertools.product(range(3), repeat=len(features)):
            probability = np.exp(
                small_crf.sequence_score(features, list(path)) - log_z
            )
            for position, label in enumerate(path):
                expected[position, label] += probability
        np.testing.assert_allclose(unary, expected, atol=1e-9)

    def test_pairwise_consistent_with_unary(self, small_crf, features):
        unary, pairwise = small_crf.marginals(features)
        # Marginalizing the pairwise over the next label gives the unary.
        np.testing.assert_allclose(
            pairwise[0].sum(axis=1), unary[0], atol=1e-9
        )
        np.testing.assert_allclose(
            pairwise[0].sum(axis=0), unary[1], atol=1e-9
        )


class TestViterbi:
    def test_finds_best_path(self, small_crf, features):
        best = small_crf.viterbi(features)
        best_score = small_crf.sequence_score(features, best)
        for path in itertools.product(range(3), repeat=len(features)):
            assert small_crf.sequence_score(features, list(path)) <= (
                best_score + 1e-9
            )

    def test_empty_sequence(self, small_crf):
        assert small_crf.viterbi([]) == []

    def test_single_position(self, small_crf):
        path = small_crf.viterbi([[0]])
        assert len(path) == 1


class TestTraining:
    def test_sgd_increases_likelihood(self, small_crf, features):
        labels = [0, 1, 2, 0]
        before = small_crf.log_likelihood(features, labels)
        for __ in range(20):
            small_crf.sgd_update(features, labels, lr=0.2)
        after = small_crf.log_likelihood(features, labels)
        assert after > before

    def test_learns_simple_pattern(self):
        # Feature 0 -> label 0, feature 1 -> label 1.
        crf = LinearChainCRF(num_features=2, num_labels=2, l2=0.0)
        data = [
            ([[0], [1], [0]], [0, 1, 0]),
            ([[1], [0]], [1, 0]),
        ]
        for __ in range(50):
            for features, labels in data:
                crf.sgd_update(features, labels, lr=0.1)
        assert crf.viterbi([[0], [1], [1], [0]]) == [0, 1, 1, 0]

    def test_mismatched_lengths_raise(self, small_crf):
        with pytest.raises(ValueError):
            small_crf.sgd_update([[0]], [0, 1], lr=0.1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LinearChainCRF(0, 3)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1000))
def test_partition_bounds_property(seed):
    """log Z >= score of the Viterbi path, always."""
    rng = np.random.default_rng(seed)
    crf = LinearChainCRF(num_features=4, num_labels=3)
    crf.emission_weights = rng.normal(size=crf.emission_weights.shape)
    crf.transition_weights = rng.normal(size=crf.transition_weights.shape)
    features = [
        list(rng.choice(4, size=rng.integers(1, 3), replace=False))
        for __ in range(int(rng.integers(1, 6)))
    ]
    best = crf.viterbi(features)
    assert crf.log_partition(features) >= crf.sequence_score(features, best)
