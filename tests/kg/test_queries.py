"""Scorecards, topic comparison, and the greenwashing-risk ranking."""

import json
from pathlib import Path

import pytest

from repro.datasets.sustainability import build_company_panel, panel_records
from repro.kg import (
    DRIFT_WEIGHTS,
    all_scorecards,
    build_graph,
    company_scorecard,
    detect_drift,
    greenwashing_ranking,
    risk_score,
    rows_from_records,
    topic_comparison,
)

pytestmark = pytest.mark.kg

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "golden" / "kg_scorecards.json"
)


@pytest.fixture(scope="module")
def panel():
    return build_company_panel(seed=0)


@pytest.fixture(scope="module")
def graph(panel):
    return build_graph(rows_from_records(panel_records(panel)))


@pytest.fixture(scope="module")
def findings(graph):
    return detect_drift(graph)


class TestRiskScore:
    def test_pure_vagueness(self):
        assert risk_score(5.0, {}) == 0.0
        assert risk_score(0.0, {}) == 1.0

    def test_drift_weights_accumulate(self):
        counts = {"dropped_target": 1, "deadline_push": 2}
        expected = (
            DRIFT_WEIGHTS["dropped_target"]
            + 2 * DRIFT_WEIGHTS["deadline_push"]
        )
        assert risk_score(5.0, counts) == pytest.approx(expected)

    def test_severity_contributes_lightly(self):
        assert risk_score(5.0, {}, severity_total=10.0) == pytest.approx(1.0)


class TestScorecards:
    def test_drifting_company_outranks_clean_one(self, graph, findings):
        ranking = greenwashing_ranking(graph, findings)
        drifting = {f.company for f in findings}
        risks = dict(ranking)
        for company, risk in ranking:
            if company in drifting:
                assert risk > 0.0
        clean = [c for c, __ in ranking if c not in drifting]
        assert all(risks[c] == 0.0 for c in clean)
        # Sorted by risk desc, company asc.
        assert ranking == sorted(ranking, key=lambda r: (-r[1], r[0]))

    def test_scorecard_fields(self, graph, panel, findings):
        cards = all_scorecards(graph, findings)
        assert len(cards) == len(panel.companies)
        for card in cards:
            assert card.reporting_years == panel.years
            assert card.objectives > 0
            assert 0.0 <= card.mean_specificity <= 5.0
            assert set(card.drift_counts) == set(DRIFT_WEIGHTS)

    def test_unknown_company_raises(self, graph):
        with pytest.raises(KeyError):
            company_scorecard(graph, "No Such Corp")

    def test_topic_comparison_covers_all_goals(self, graph, panel):
        stats = topic_comparison(graph)
        assert sum(s.objectives for s in stats) == panel.num_objectives
        topics = [s.topic for s in stats]
        assert topics == sorted(topics)


@pytest.mark.golden
class TestGoldenScorecards:
    def test_scorecards_match_golden(self, graph, findings, update_golden):
        """The full scorecard + ranking payload is frozen bitwise.

        Regenerate with ``pytest --update-golden`` and review the diff.
        """
        payload = {
            "scorecards": [
                card.as_dict() for card in all_scorecards(graph, findings)
            ],
            "ranking": [
                {"company": company, "risk": risk, "risk_hex": risk.hex()}
                for company, risk in greenwashing_ranking(graph, findings)
            ],
            "findings": [finding.as_dict() for finding in findings],
        }
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if update_golden:
            GOLDEN_PATH.write_text(rendered, encoding="utf-8")
            pytest.skip("golden fixture regenerated")
        assert GOLDEN_PATH.exists(), (
            "golden fixture missing; run pytest --update-golden"
        )
        assert rendered == GOLDEN_PATH.read_text(encoding="utf-8")
