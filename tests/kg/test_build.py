"""Graph construction: typed nodes, provenance, parallel ≡ serial."""

import pytest

from repro.datasets.sustainability import build_company_panel, panel_records
from repro.kg import (
    GRAPH_SCHEMA_VERSION,
    GraphRow,
    as_graph_row,
    build_graph,
    build_graph_parallel,
    graph_fingerprint,
    graph_to_payload,
    infer_topic,
    objective_node_id,
    rows_from_records,
    rows_from_store,
)

pytestmark = pytest.mark.kg


@pytest.fixture(scope="module")
def panel():
    return build_company_panel(seed=0)


@pytest.fixture(scope="module")
def rows(panel):
    return rows_from_records(panel_records(panel))


@pytest.fixture(scope="module")
def graph(rows):
    return build_graph(rows)


class TestTopics:
    @pytest.mark.parametrize(
        ("objective", "qualifier", "topic"),
        [
            ("Reduce carbon emissions by 30% by 2030.", "carbon emissions",
             "emissions"),
            ("Reach net zero by 2040.", "", "emissions"),
            ("Cut landfill waste in half.", "landfill waste", "waste"),
            ("Reduce water consumption.", "water consumption", "water"),
            ("40% women in leadership.", "women in leadership", "diversity"),
            ("Lower injury rate.", "workplace injury rate", "safety"),
            ("Improve supplier audits.", "supply chain", "supply_chain"),
            ("Be excellent.", "", "other"),
        ],
    )
    def test_keyword_buckets(self, objective, qualifier, topic):
        assert infer_topic(objective, {"Qualifier": qualifier}) == topic


class TestGraphShape:
    def test_node_kinds_and_counts(self, graph, panel):
        kinds = {}
        for __, attrs in graph.nodes(data=True):
            kinds[attrs["kind"]] = kinds.get(attrs["kind"], 0) + 1
        assert kinds["company"] == len(panel.companies)
        assert kinds["objective"] == panel.num_objectives
        assert kinds["topic"] >= 1
        assert kinds["year"] >= 1
        assert graph.graph["schema_version"] == GRAPH_SCHEMA_VERSION

    def test_objective_provenance_attrs(self, graph):
        for __, attrs in graph.nodes(data=True):
            if attrs["kind"] != "objective":
                continue
            assert attrs["report_id"]
            assert attrs["page"] >= 0
            assert attrs["reporting_year"] is not None
            assert "extractor_fingerprint" in attrs
            assert attrs["score_hex"] == float(attrs["score"]).hex()

    def test_edges_are_typed(self, graph):
        kinds = {attrs["kind"] for __, __, attrs in graph.edges(data=True)}
        assert kinds == {"has_objective", "about", "due"}

    def test_company_nodes_carry_aliases(self, graph, panel):
        by_name = {
            attrs["name"]: attrs
            for __, attrs in graph.nodes(data=True)
            if attrs["kind"] == "company"
        }
        # Every panel company resolved to one node holding >1 alias
        # (the panel varies surface forms across years).
        assert len(by_name) == len(panel.companies)
        assert any(len(attrs["aliases"]) > 1 for attrs in by_name.values())


class TestDeterminism:
    def test_content_addressed_ingest_is_idempotent(self, rows):
        once = build_graph(rows)
        twice = build_graph(list(rows) + list(rows))
        assert graph_fingerprint(once) == graph_fingerprint(twice)

    def test_row_order_does_not_matter(self, rows):
        forward = build_graph(rows)
        backward = build_graph(list(reversed(rows)))
        assert graph_fingerprint(forward) == graph_fingerprint(backward)

    def test_node_ids_are_stable_hashes(self):
        row = GraphRow(
            company="Acme Corp.",
            report_id="acme-2024",
            page=3,
            objective="Reduce waste by 20% by 2030.",
            details=(("Action", "Reduce"),),
            score=0.9,
        )
        assert objective_node_id(row) == objective_node_id(row)
        assert objective_node_id(row).startswith("objective::")

    def test_payload_is_canonical_json(self, graph):
        import json

        payload = graph_to_payload(graph)
        assert list(payload) == [
            "schema_version", "resolution", "nodes", "edges",
        ]
        node_ids = [node["id"] for node in payload["nodes"]]
        assert node_ids == sorted(node_ids)
        json.dumps(payload)  # JSON-serializable throughout


@pytest.mark.parallel
class TestParallelBitwise:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, rows, workers):
        serial = build_graph(rows)
        parallel = build_graph_parallel(rows, workers=workers)
        assert graph_fingerprint(parallel) == graph_fingerprint(serial)

    def test_shard_layout_does_not_matter(self, rows):
        serial = graph_fingerprint(build_graph(rows))
        for num_shards in (1, 3, 7):
            parallel = build_graph_parallel(
                rows, workers=2, num_shards=num_shards
            )
            assert graph_fingerprint(parallel) == serial

    def test_empty_rows(self):
        graph = build_graph_parallel([], workers=2)
        assert graph_fingerprint(graph) == graph_fingerprint(build_graph([]))


class TestStoreRoundtrip:
    def test_rows_from_store_match_records(self, panel, tmp_path):
        from repro.storage import ObjectiveStore

        records = panel_records(panel)
        with ObjectiveStore(tmp_path / "obj.db") as store:
            store.insert_records(records)
            stored_rows = rows_from_store(store)
        direct = build_graph(rows_from_records(records))
        from_store = build_graph(stored_rows)
        assert graph_fingerprint(from_store) == graph_fingerprint(direct)

    def test_fingerprint_column_reaches_graph(self, panel, tmp_path):
        from repro.storage import ObjectiveStore

        with ObjectiveStore(tmp_path / "obj.db") as store:
            store.insert_records(
                panel_records(panel), extractor_fingerprint="sha256:abc"
            )
            graph = build_graph(rows_from_store(store))
        fingerprints = {
            attrs["extractor_fingerprint"]
            for __, attrs in graph.nodes(data=True)
            if attrs["kind"] == "objective"
        }
        assert fingerprints == {"sha256:abc"}

    def test_accepts_extracted_records_directly(self, panel):
        records = panel_records(panel)
        row = as_graph_row(records[0])
        assert row.reporting_year == records[0].reporting_year
        assert row.details_dict == records[0].details
