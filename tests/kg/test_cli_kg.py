"""CLI coverage for the ``repro kg`` subcommand group."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.kg


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    from repro.datasets.sustainability import (
        build_company_panel,
        panel_records,
    )
    from repro.storage import ObjectiveStore

    path = tmp_path_factory.mktemp("kg-cli") / "objectives.db"
    with ObjectiveStore(path) as store:
        store.insert_records(panel_records(build_company_panel(seed=0)))
    return path


class TestKgBuild:
    def test_build_from_panel_writes_canonical_payload(
        self, tmp_path, capsys
    ):
        out = tmp_path / "graph.json"
        code = main(["kg", "build", "--panel", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "fingerprint:" in stdout
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 1
        assert {node["kind"] for node in payload["nodes"]} == {
            "company", "objective", "topic", "year",
        }

    def test_build_from_store_matches_panel_fingerprint(
        self, store_path, tmp_path, capsys
    ):
        code = main(["kg", "build", "--db", str(store_path)])
        assert code == 0
        store_out = capsys.readouterr().out
        code = main(["kg", "build", "--panel"])
        assert code == 0
        panel_out = capsys.readouterr().out
        fingerprint = lambda text: [  # noqa: E731
            line for line in text.splitlines() if "fingerprint" in line
        ]
        assert fingerprint(store_out) == fingerprint(panel_out)

    def test_parallel_build_is_identical(self, capsys):
        code = main(["kg", "build", "--panel", "--workers", "1"])
        assert code == 0
        serial = capsys.readouterr().out
        code = main(["kg", "build", "--panel", "--workers", "2"])
        assert code == 0
        assert capsys.readouterr().out == serial

    def test_requires_source(self, capsys):
        code = main(["kg", "build"])
        assert code == 2
        assert "--db or --panel" in capsys.readouterr().err


class TestKgDrift:
    def test_json_findings(self, store_path, capsys):
        code = main(["kg", "drift", "--db", str(store_path), "--json"])
        assert code == 0
        captured = capsys.readouterr()
        findings = [
            json.loads(line) for line in captured.out.splitlines() if line
        ]
        assert len(findings) == 4
        assert {f["kind"] for f in findings} == {
            "deadline_push", "weakened_amount", "dropped_target",
            "baseline_rewrite",
        }
        for finding in findings:
            assert finding["provenance"][0]["report_id"]
        assert "4 drift finding(s)" in captured.err

    def test_table_output(self, capsys):
        code = main(["kg", "drift", "--panel"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Kind" in out and "deadline_push" in out

    def test_amount_tolerance_knob(self, capsys):
        code = main(
            ["kg", "drift", "--panel", "--json", "--amount-tolerance", "1.0"]
        )
        assert code == 0
        findings = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        assert not any(f["kind"] == "weakened_amount" for f in findings)


class TestKgCompany:
    def test_ranking_table(self, store_path, capsys):
        code = main(["kg", "company", "--db", str(store_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Risk" in out
        # Highest-risk company is listed first (drifting beats clean).
        rows = [
            line for line in out.splitlines()
            if "|" in line and "Risk" not in line
        ]
        assert "Royal Airlines" in rows[0]

    def test_single_scorecard_json(self, capsys):
        code = main(
            ["kg", "company", "--panel", "--name", "Royal Airlines S.A."]
        )
        assert code == 0
        card = json.loads(capsys.readouterr().out)
        assert card["company"] == "Royal Airlines S.A."
        assert len(card["aliases"]) > 1
        assert card["risk"] > 0.0
        assert card["risk_hex"] == float(card["risk"]).hex()

    def test_unknown_company(self, capsys):
        code = main(["kg", "company", "--panel", "--name", "No Such Corp"])
        assert code == 2
        assert "unknown company" in capsys.readouterr().err
