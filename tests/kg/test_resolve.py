"""Entity-resolution properties: idempotent, order-invariant, auditable."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg.resolve import (
    LEGAL_SUFFIX_TOKENS,
    name_similarity,
    name_tokens,
    normalize_company_name,
    resolve_companies,
)

pytestmark = pytest.mark.kg

_WORDS = ("acme", "blue", "chemical", "delta", "global", "industry", "royal")
_SUFFIXES = ("", "Inc.", "Incorporated", "Corp.", "Corporation", "Ltd.",
             "Limited", "plc", "PLC", "SA", "S.A.", "AG")


@st.composite
def company_names(draw):
    core = draw(
        st.lists(st.sampled_from(_WORDS), min_size=1, max_size=3)
    )
    suffix = draw(st.sampled_from(_SUFFIXES))
    name = " ".join(core + ([suffix] if suffix else []))
    if draw(st.booleans()):
        name = name.upper()
    return name


class TestNormalization:
    def test_suffix_and_case_variants_normalize_identically(self):
        variants = [
            "Acme Corp.",
            "ACME CORPORATION",
            "Acme Corp",
            "acme incorporated",
            "Acme Inc.",
        ]
        norms = {normalize_company_name(name) for name in variants}
        assert norms == {"acme"}

    def test_dotted_abbreviations_collapse(self):
        assert name_tokens("Royal Airlines S.A.") == name_tokens(
            "Royal Airlines SA"
        )

    def test_pure_legal_name_still_resolves_to_itself(self):
        # A name made only of legal tokens keeps its raw tokens.
        assert name_tokens("Inc. Corp.") == frozenset({"inc", "corp"})

    def test_similarity_bounds(self):
        assert name_similarity("Acme Widgets", "Acme Widgets Inc.") == 1.0
        assert name_similarity("Acme Widgets", "Blue Chemicals") == 0.0


class TestResolveProperties:
    @given(st.lists(company_names(), min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, names):
        """Resolving the canonicals of a resolution is the identity."""
        first = resolve_companies(names)
        second = resolve_companies(first.canonical_names())
        assert second.canonical_names() == first.canonical_names()
        assert not second.merges

    @given(
        st.lists(company_names(), min_size=1, max_size=12),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_order_invariant(self, names, random):
        baseline = resolve_companies(names)
        shuffled = list(names)
        random.shuffle(shuffled)
        other = resolve_companies(shuffled)
        assert dict(other.canonical_of) == dict(baseline.canonical_of)
        assert other.merges == baseline.merges

    @given(st.lists(company_names(), min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_every_input_maps_and_merges_are_reversible(self, names):
        resolution = resolve_companies(names)
        for name in names:
            canonical = resolution.canonical(name)
            assert name in resolution.aliases(canonical)
        # Audit trail covers exactly the non-canonical names.
        merged_aliases = {merge.alias for merge in resolution.merges}
        canonicals = set(resolution.canonical_names())
        assert merged_aliases == set(resolution.canonical_of) - canonicals

    @given(st.lists(company_names(), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_exact_rule_survives_disabled_token_set_rule(self, names):
        """threshold > 1 keeps exact-normalized merging on."""
        resolution = resolve_companies(names, threshold=1.5)
        for merge in resolution.merges:
            assert merge.rule == "exact-normalized"
            assert normalize_company_name(
                merge.alias
            ) == normalize_company_name(merge.canonical)


class TestResolveBehaviour:
    def test_token_set_rule_merges_near_names(self):
        resolution = resolve_companies(
            ["Global Chemical Industry Group", "Global Chemical Industry"]
        )
        assert len(resolution.canonical_names()) == 1
        (merge,) = resolution.merges
        assert merge.similarity >= 0.6

    def test_distinct_companies_stay_apart(self):
        resolution = resolve_companies(["Acme Widgets", "Blue Chemicals"])
        assert len(resolution.canonical_names()) == 2
        assert not resolution.merges

    def test_canonical_is_longest_then_lexicographic(self):
        resolution = resolve_companies(["Acme Inc.", "Acme Incorporated"])
        assert resolution.canonical_names() == ("Acme Incorporated",)

    def test_as_dict_is_json_stable(self):
        import json

        resolution = resolve_companies(["Acme Inc.", "ACME INC."])
        payload = resolution.as_dict()
        assert json.dumps(payload) == json.dumps(
            resolve_companies(["ACME INC.", "Acme Inc."]).as_dict()
        )

    def test_legal_suffixes_are_lowercase_tokens(self):
        assert all(token == token.lower() for token in LEGAL_SUFFIX_TOKENS)
