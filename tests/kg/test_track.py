"""Goal threading and drift detection, scored against injected ground truth.

The acceptance bar: over the seeded multi-year panel, ``detect_drift``
recovers **every** injected drift event with **zero** false positives at
the default thresholds, and each finding carries provenance back to the
report/page it came from.
"""

import pytest

from repro.datasets.sustainability import (
    PANEL_DRIFT_KINDS,
    build_company_panel,
    panel_records,
)
from repro.kg import (
    build_graph,
    company_reporting_years,
    detect_drift,
    link_goal_threads,
    rows_from_records,
)
from repro.kg.resolve import normalize_company_name
from repro.kg.track import DRIFT_KINDS, _qualifier_tokens

pytestmark = pytest.mark.kg


def _panel_graph(seed, **panel_kwargs):
    panel = build_company_panel(seed=seed, **panel_kwargs)
    graph = build_graph(rows_from_records(panel_records(panel)))
    return panel, graph


def _finding_keys(findings):
    return {
        (f.kind, normalize_company_name(f.company), f.topic,
         f.year_from, f.year_to)
        for f in findings
    }


def _injected_keys(panel):
    return {
        (e.kind, normalize_company_name(e.company), e.topic,
         e.year_from, e.year_to)
        for e in panel.drift_events
    }


class TestDriftPrecisionRecall:
    @pytest.mark.parametrize("seed", range(8))
    def test_exact_recovery_zero_false_positives(self, seed):
        panel, graph = _panel_graph(seed)
        findings = detect_drift(graph)
        assert _finding_keys(findings) == _injected_keys(panel)

    def test_more_drift_per_kind(self):
        panel, graph = _panel_graph(
            100, num_companies=8, drift_per_kind=2
        )
        findings = detect_drift(graph)
        assert _finding_keys(findings) == _injected_keys(panel)
        by_kind = {}
        for finding in findings:
            by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
        assert by_kind == {kind: 2 for kind in PANEL_DRIFT_KINDS}

    def test_clean_panel_is_silent(self):
        panel, graph = _panel_graph(7, drift_per_kind=0)
        assert not panel.drift_events
        assert detect_drift(graph) == []


class TestProvenance:
    def test_every_finding_traces_to_report_and_page(self):
        panel, graph = _panel_graph(0)
        report_pages = {
            (report.report_id, page_index)
            for report in panel.reports
            for page_index in range(report.num_pages)
        }
        for finding in detect_drift(graph):
            assert finding.provenance, finding.kind
            for provenance in finding.provenance:
                assert (
                    provenance.report_id, provenance.page
                ) in report_pages
                assert provenance.reporting_year in panel.years

    def test_two_sided_findings_carry_both_years(self):
        __, graph = _panel_graph(0)
        for finding in detect_drift(graph):
            if finding.kind == "dropped_target":
                assert finding.objective_to is None
                assert len(finding.provenance) == 1
            else:
                assert len(finding.provenance) == 2
                years = [p.reporting_year for p in finding.provenance]
                assert years == [finding.year_from, finding.year_to]


class TestThreading:
    def test_threads_span_all_reporting_years(self):
        panel, graph = _panel_graph(3, drift_per_kind=0)
        threads = link_goal_threads(graph)
        # With no drift, every goal threads through every year.
        assert len(threads) == len(panel.goals)
        for thread in threads:
            assert thread.years == panel.years

    def test_threads_never_cross_topics(self):
        __, graph = _panel_graph(0)
        for thread in link_goal_threads(graph):
            topics = {
                graph.nodes[entry.node_id]["topic"]
                for entry in thread.entries
            }
            assert topics == {thread.topic}

    def test_reporting_years_table(self):
        panel, graph = _panel_graph(0)
        table = company_reporting_years(graph)
        assert len(table) == len(panel.companies)
        assert all(years == panel.years for years in table.values())

    def test_qualifier_tokens_ignore_numbers_and_stopwords(self):
        attrs = {
            "details": {},
            "text": "Reduce energy consumption by 20% by 2025.",
        }
        tokens = _qualifier_tokens(attrs)
        assert "2025" not in tokens and "20" not in tokens
        assert "energy" in tokens and "consumption" in tokens


class TestKnobs:
    def test_amount_tolerance_suppresses_small_shrinks(self):
        panel, graph = _panel_graph(0)
        lenient = detect_drift(graph, amount_tolerance=1.0)
        assert not any(
            f.kind == "weakened_amount" for f in lenient
        )
        # Other kinds are unaffected by the amount knob.
        strict_other = {
            key for key in _finding_keys(detect_drift(graph))
            if key[0] != "weakened_amount"
        }
        assert {
            key for key in _finding_keys(lenient)
            if key[0] != "weakened_amount"
        } == strict_other

    def test_findings_are_stably_ordered(self):
        __, graph = _panel_graph(0)
        first = [f.as_dict() for f in detect_drift(graph)]
        second = [f.as_dict() for f in detect_drift(graph)]
        assert first == second

    def test_kind_taxonomy_matches_panel(self):
        assert set(DRIFT_KINDS) == set(PANEL_DRIFT_KINDS)
