"""Fleet router tests: policies, health, failover basics, aggregation.

Everything here drives cheap deterministic stub backends so routing
decisions and failure handling are exact; the heavier end-to-end chaos
and hot-swap properties live in ``test_fleet_chaos.py`` and
``test_hot_swap.py``.
"""

import threading
import time

import pytest

from repro.runtime.errors import (
    InputError,
    OverloadedError,
    ReplicaCrashError,
)
from repro.serve.engine import ServingConfig
from repro.serve.fleet import FleetConfig, FleetRouter
from repro.serve.router import (
    DEAD,
    EJECTED,
    HEALTHY,
    PROBATION,
    ROUTING_POLICIES,
    LeastLoadedPolicy,
    ReplicaHealth,
    RoundRobinPolicy,
    TokenCostAwarePolicy,
    make_policy,
)
from tests.serve.conftest import RecordingExtractor

pytestmark = [pytest.mark.serve, pytest.mark.fleet]


def make_fleet(extractor, detector=None, *, replicas=2, **kwargs):
    config = FleetConfig(
        replicas=replicas,
        engine=ServingConfig(
            num_workers=1, max_wait_ms=0.0, queue_depth=128
        ),
        **kwargs.pop("fleet", {}),
    )
    return FleetRouter(
        detector=detector, extractor=extractor, config=config, **kwargs
    )


class FakeReplica:
    def __init__(self, replica_id, load=0, tokens=0):
        self.replica_id = replica_id
        self._load = load
        self._tokens = tokens

    def load(self):
        return self._load

    def outstanding_tokens(self):
        return self._tokens


class TestRoutingPolicies:
    def test_registry_and_factory(self):
        assert set(ROUTING_POLICIES) == {
            "round-robin",
            "least-loaded",
            "token-cost",
        }
        for name in ROUTING_POLICIES:
            assert make_policy(name).name == name
        with pytest.raises(ValueError):
            make_policy("hash-ring")

    def test_round_robin_cycles_in_id_order(self):
        policy = RoundRobinPolicy()
        replicas = [FakeReplica("r2"), FakeReplica("r0"), FakeReplica("r1")]
        picks = [policy.select(replicas, 1).replica_id for _ in range(6)]
        assert picks == ["r0", "r1", "r2", "r0", "r1", "r2"]

    def test_least_loaded_picks_min_with_id_tiebreak(self):
        policy = LeastLoadedPolicy()
        replicas = [
            FakeReplica("r0", load=3),
            FakeReplica("r1", load=1),
            FakeReplica("r2", load=1),
        ]
        assert policy.select(replicas, 1).replica_id == "r1"

    def test_token_cost_ignores_request_count(self):
        policy = TokenCostAwarePolicy()
        replicas = [
            FakeReplica("r0", load=1, tokens=500),
            FakeReplica("r1", load=3, tokens=30),
        ]
        # r1 holds more requests but far fewer outstanding tokens.
        assert policy.select(replicas, 10).replica_id == "r1"


class TestReplicaHealth:
    def test_ejects_after_consecutive_failures(self):
        clock = [0.0]
        health = ReplicaHealth(
            failure_threshold=3,
            readmission_seconds=10.0,
            clock=lambda: clock[0],
        )
        assert health.state == HEALTHY
        for _ in range(2):
            health.record_failure()
        assert health.admissible()  # two strikes: still in
        health.record_failure()
        assert health.state == EJECTED
        assert not health.admissible()

    def test_probation_readmits_then_reejects_on_failure(self):
        clock = [0.0]
        health = ReplicaHealth(
            failure_threshold=1,
            readmission_seconds=5.0,
            clock=lambda: clock[0],
        )
        health.record_failure()
        assert not health.admissible()
        clock[0] = 6.0
        assert health.admissible()  # the probation trial
        assert health.state == PROBATION
        health.record_failure()
        assert health.state == EJECTED

    def test_probation_success_restores_health(self):
        clock = [0.0]
        health = ReplicaHealth(
            failure_threshold=1,
            readmission_seconds=5.0,
            clock=lambda: clock[0],
        )
        health.record_failure()
        clock[0] = 6.0
        assert health.admissible()
        health.record_success()
        assert health.state == HEALTHY

    def test_dead_is_terminal(self):
        health = ReplicaHealth(failure_threshold=3)
        health.mark_dead()
        assert health.state == DEAD
        assert not health.admissible()
        health.record_success()
        assert health.state == DEAD


class TestFleetBasics:
    def test_needs_a_backend_and_valid_config(self):
        with pytest.raises(ValueError):
            FleetRouter()
        with pytest.raises(ValueError):
            FleetConfig(replicas=0)
        with pytest.raises(ValueError):
            FleetConfig(policy="least-loaded", max_redispatch=0)
        with pytest.raises(ValueError):
            FleetRouter(
                extractor=RecordingExtractor(),
                config=FleetConfig(policy="nope"),
            )

    def test_serves_requests_across_replicas(self, recording_extractor):
        router = make_fleet(recording_extractor, replicas=3)
        with router:
            futures = [
                router.submit(kind="extract", texts=f"request {i}")
                for i in range(9)
            ]
            results = [f.result(timeout=10.0) for f in futures]
        assert all(result.status == "ok" for result in results)
        snap = router.metrics_snapshot()
        assert snap["router"]["counters"]["completed"] == 9
        assert snap["router"]["replicas"] == 3
        assert snap["fleet"]["counters"]["completed"] == 9

    def test_round_robin_spreads_across_replica_engines(
        self, recording_extractor
    ):
        router = make_fleet(
            recording_extractor,
            replicas=3,
            fleet={"policy": "round-robin"},
        )
        # Submit before start: requests queue at their routed replica, so
        # the spread is exact regardless of worker timing.
        futures = [
            router.submit(kind="extract", texts=f"request {i}")
            for i in range(6)
        ]
        with router:
            for future in futures:
                assert future.result(timeout=10.0).status == "ok"
        snap = router.metrics_snapshot()
        per_replica = [
            replica["counters"].get("completed", 0)
            for replica in snap["replicas"].values()
        ]
        assert sorted(per_replica) == [2, 2, 2]

    def test_rejects_kind_without_backend(self, recording_extractor):
        router = make_fleet(recording_extractor)
        with pytest.raises(InputError):
            router.submit(kind="detect", texts="score me")

    def test_sheds_when_no_admissible_replica(self, recording_extractor):
        router = make_fleet(recording_extractor, replicas=2)
        with router:
            router.kill_replica("r000")
            router.kill_replica("r001")
            with pytest.raises(OverloadedError):
                router.submit(kind="extract", texts="nowhere to go")
        assert router.metrics_snapshot()["router"]["counters"]["rejected"] >= 1

    def test_kill_replica_unknown_or_dead_returns_false(
        self, recording_extractor
    ):
        router = make_fleet(recording_extractor)
        with router:
            assert router.kill_replica("r999") is False
            assert router.kill_replica("r000") is True
            assert router.kill_replica("r000") is False

    def test_failover_redispatches_killed_replicas_queue(self):
        slow = RecordingExtractor(delay=0.01)
        router = make_fleet(slow, replicas=2)
        with router:
            futures = [
                router.submit(kind="extract", texts=f"request {i}")
                for i in range(10)
            ]
            victim = router.live_replicas()[0]
            assert router.kill_replica(victim)
            results = [f.result(timeout=20.0) for f in futures]
        assert all(result.status == "ok" for result in results)
        snap = router.metrics_snapshot()
        assert snap["router"]["counters"].get("failed", 0) == 0
        assert snap["router"]["health"][victim] == DEAD

    def test_failover_gives_up_after_max_redispatch(self):
        class AlwaysCrash:
            def extract_batch(self, texts):
                raise ReplicaCrashError("simulated wipeout", stage="extract")

        router = make_fleet(
            AlwaysCrash(), replicas=2, fleet={"max_redispatch": 2}
        )
        with router:
            future = router.submit(kind="extract", texts="doomed")
            with pytest.raises(ReplicaCrashError):
                future.result(timeout=10.0)
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters["failover.exhausted"] == 1
        assert counters["failover.redispatched"] == 2

    def test_scale_up_and_down(self, recording_extractor):
        router = make_fleet(recording_extractor, replicas=1)
        with router:
            assert router.scale_to(3) == 3
            futures = [
                router.submit(kind="extract", texts=f"request {i}")
                for i in range(6)
            ]
            for future in futures:
                assert future.result(timeout=10.0).status == "ok"
            assert router.scale_to(1) == 1
            assert len(router.live_replicas()) == 1
            late = router.submit(kind="extract", texts="after scale-down")
            assert late.result(timeout=10.0).status == "ok"
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters["scaled_up"] == 2
        assert counters["scaled_down"] == 2
        with pytest.raises(ValueError):
            router.scale_to(0)


class TestFleetCacheAggregation:
    def test_fleet_wide_cache_stats_merge_replica_stores(self, demo_backend):
        detector, extractor = demo_backend
        router = FleetRouter(
            detector=detector,
            extractor=extractor,
            config=FleetConfig(
                replicas=2,
                policy="round-robin",
                engine=ServingConfig(
                    num_workers=1,
                    max_wait_ms=0.0,
                    queue_depth=128,
                    result_cache_capacity=32,
                ),
            ),
        )
        text = "Reduce emissions 30% by 2030."
        with router:
            # Round-robin sends the repeats to *different* replicas: each
            # replica's first sight is a miss even though the fleet has
            # seen the text before — the per-engine hit rate undercounts.
            for _ in range(4):
                router.submit(kind="extract", texts=text).result(timeout=30.0)
        snap = router.metrics_snapshot()
        fleet_cache = snap["fleet"]["cache"]
        by_priority = fleet_cache["by_priority"]["interactive"]
        assert by_priority["hits"] == 2
        assert by_priority["misses"] == 2
        assert by_priority["hit_rate"] == pytest.approx(0.5)
        assert fleet_cache["store"]["insertions"] == 2
        assert fleet_cache["store"]["hit_rate"] == pytest.approx(0.5)
        # Each individual replica saw 1 miss then 1 hit.
        for replica in snap["replicas"].values():
            assert replica["cache"]["by_priority"]["interactive"]["hits"] == 1

    def test_merge_counters_is_additive(self):
        from repro.serve.metrics import merge_counters

        merged = merge_counters(
            [{"completed": 3.0, "failed": 1.0}, {"completed": 2.0}]
        )
        assert merged == {"completed": 5.0, "failed": 1.0}


class TestFleetLifecycle:
    def test_shutdown_drains_every_replica(self, recording_extractor):
        router = make_fleet(recording_extractor, replicas=2)
        router.start()
        futures = [
            router.submit(kind="extract", texts=f"request {i}")
            for i in range(4)
        ]
        router.shutdown()
        for future in futures:
            assert future.result(timeout=0).status == "ok"
        with pytest.raises(RuntimeError):
            router.start()

    def test_context_manager_aborts_on_error(self, recording_extractor):
        router = make_fleet(recording_extractor)
        with pytest.raises(RuntimeError):
            with router:
                raise RuntimeError("caller blew up")
        # Abort shutdown: the fleet is stopped either way.
        with pytest.raises(OverloadedError):
            router.submit(kind="extract", texts="after stop")
