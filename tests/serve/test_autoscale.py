"""Autoscaler tests: decision hysteresis, cooldown, bounds, simulator.

The decision core is pure (observations in, decision out), so most of
this file needs no threads; one integration test closes the loop against
a live fleet.
"""

import pytest

from repro.serve.autoscale import (
    HOLD,
    SCALE_DOWN,
    SCALE_UP,
    AutoscalePolicy,
    FleetAutoscaler,
    FleetSimulator,
    nearest_rank_p95,
)
from repro.serve.engine import ServingConfig
from repro.serve.fleet import FleetConfig, FleetRouter
from tests.serve.conftest import RecordingExtractor

pytestmark = [pytest.mark.serve, pytest.mark.fleet]

POLICY = AutoscalePolicy(
    target_queue_wait_p95=0.05,
    low_water_fraction=0.2,
    min_replicas=1,
    max_replicas=4,
    breach_ticks=2,
    idle_ticks=3,
    cooldown_ticks=2,
    step=1,
)


def breach(scaler, replicas):
    return scaler.decide(queue_wait_p95=0.2, pending=50, replicas=replicas)


def idle(scaler, replicas):
    return scaler.decide(queue_wait_p95=0.001, pending=0, replicas=replicas)


class TestPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(target_queue_wait_p95=0.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(low_water_fraction=1.5)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=2, max_replicas=1)
        with pytest.raises(ValueError):
            AutoscalePolicy(breach_ticks=0)

    def test_nearest_rank_p95(self):
        assert nearest_rank_p95([]) == 0.0
        assert nearest_rank_p95([0.3]) == 0.3
        samples = [index / 100.0 for index in range(1, 101)]
        assert nearest_rank_p95(samples) == pytest.approx(0.95)


class TestDecisionCore:
    def test_single_breach_is_noise(self):
        scaler = FleetAutoscaler(POLICY)
        assert breach(scaler, 2)["action"] == HOLD

    def test_sustained_breach_scales_up(self):
        scaler = FleetAutoscaler(POLICY)
        assert breach(scaler, 2)["action"] == HOLD
        decision = breach(scaler, 2)
        assert decision["action"] == SCALE_UP
        assert decision["target"] == 3

    def test_breach_counter_resets_on_recovery(self):
        scaler = FleetAutoscaler(POLICY)
        breach(scaler, 2)
        scaler.decide(queue_wait_p95=0.01, pending=2, replicas=2)  # recovered
        assert breach(scaler, 2)["action"] == HOLD  # streak restarted

    def test_cooldown_blocks_consecutive_actions(self):
        scaler = FleetAutoscaler(POLICY)
        breach(scaler, 2)
        assert breach(scaler, 2)["action"] == SCALE_UP
        # Still breaching, but the cooldown holds the line.
        third = breach(scaler, 3)
        fourth = breach(scaler, 3)
        assert third["action"] == HOLD and "cooldown" in third["reason"]
        assert fourth["action"] == HOLD
        # Cooldown over; the sustained breach acts again.
        fifth = breach(scaler, 3)
        assert fifth["action"] == SCALE_UP

    def test_sustained_idle_scales_down(self):
        scaler = FleetAutoscaler(POLICY)
        for _ in range(2):
            assert idle(scaler, 3)["action"] == HOLD
        decision = idle(scaler, 3)
        assert decision["action"] == SCALE_DOWN
        assert decision["target"] == 2

    def test_bounds_are_respected(self):
        scaler = FleetAutoscaler(POLICY)
        breach(scaler, POLICY.max_replicas)
        decision = breach(scaler, POLICY.max_replicas)
        assert decision["action"] == HOLD
        assert "max_replicas" in decision["reason"]
        scaler = FleetAutoscaler(POLICY)
        for _ in range(POLICY.idle_ticks - 1):
            idle(scaler, POLICY.min_replicas)
        decision = idle(scaler, POLICY.min_replicas)
        assert decision["action"] == HOLD
        assert "min_replicas" in decision["reason"]

    def test_busy_but_within_target_holds(self):
        scaler = FleetAutoscaler(POLICY)
        for _ in range(10):
            decision = scaler.decide(
                queue_wait_p95=0.03, pending=10, replicas=2
            )
            assert decision["action"] == HOLD


class TestSimulator:
    def test_deterministic_under_a_seed(self):
        first = FleetSimulator(POLICY, seed=11).run(ticks=45)
        second = FleetSimulator(POLICY, seed=11).run(ticks=45)
        assert first == second
        assert first != FleetSimulator(POLICY, seed=12).run(ticks=45)

    def test_ramp_scales_up_and_decay_scales_down(self):
        result = FleetSimulator(POLICY, seed=0).run(ticks=60)
        assert result["scale_ups"] >= 1
        assert result["scale_downs"] >= 1
        assert result["peak_replicas"] > POLICY.min_replicas
        assert result["peak_replicas"] <= POLICY.max_replicas
        assert result["final_replicas"] < result["peak_replicas"]

    def test_replica_counts_stay_in_bounds_every_tick(self):
        result = FleetSimulator(POLICY, seed=3).run(ticks=80)
        for step in result["steps"]:
            assert (
                POLICY.min_replicas
                <= step["replicas"]
                <= POLICY.max_replicas
            )

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            FleetSimulator(replica_capacity=0)
        with pytest.raises(ValueError):
            FleetSimulator(service_seconds=0)


class TestLiveIntegration:
    def test_tick_scales_a_live_fleet(self):
        router = FleetRouter(
            extractor=RecordingExtractor(delay=0.005),
            config=FleetConfig(
                replicas=1,
                engine=ServingConfig(
                    num_workers=1,
                    max_batch_requests=1,
                    max_wait_ms=0.0,
                    queue_depth=128,
                ),
            ),
        )
        scaler = FleetAutoscaler(
            AutoscalePolicy(
                target_queue_wait_p95=0.01,
                breach_ticks=1,
                idle_ticks=2,
                cooldown_ticks=0,
                max_replicas=3,
            )
        )
        with router:
            # A burst against one slow replica: the tail of the queue
            # waits ~30 service times, far past the 10 ms target.
            futures = [
                router.submit(kind="extract", texts=f"load {index}")
                for index in range(30)
            ]
            for future in futures:
                future.result(timeout=10.0)
            decision = scaler.tick(router)
            assert decision["samples"] == 30
            assert decision["action"] == SCALE_UP
            assert decision["replicas_after"] == 2
            assert router.replica_count() == 2
            # No new samples at all: two idle ticks scale back down.
            assert scaler.tick(router)["action"] == HOLD
            decision = scaler.tick(router)
            assert decision["action"] == SCALE_DOWN
            assert router.replica_count() == 1
