"""The micro-batching correctness contract (ISSUE satellite 3).

Property: N requests submitted concurrently through the micro-batcher
resolve to results **bitwise-identical** to N sequential single calls on
the bare backend. This is the serving-side face of the PR 1
width-invariance guarantee — a request's logits do not depend on which
micro-batch it rides in or what it is padded with.

The backend is the real (untrained, seeded) demo pair: genuine BPE
tokenization and transformer forward passes, so the equality below is an
end-to-end float-exactness claim, not a stub artifact.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.engine import ServingConfig, ServingEngine

pytestmark = pytest.mark.serve


def serving_results(backend, requests, max_batch_requests=8):
    """Run ``requests`` [(kind, text)] concurrently through an engine."""
    detector, extractor = backend
    engine = ServingEngine(
        detector=detector,
        extractor=extractor,
        config=ServingConfig(
            num_workers=2,
            max_batch_requests=max_batch_requests,
            max_batch_tokens=4096,
            max_wait_ms=5.0,
            queue_depth=256,
        ),
    )
    # Submit everything before starting the workers so the batcher sees a
    # full queue and actually coalesces (the property must hold for every
    # packing, and this forces non-trivial ones).
    futures = [
        engine.submit(kind=kind, texts=text) for kind, text in requests
    ]
    with engine:
        results = [future.result(timeout=60.0) for future in futures]
    return results, engine


def sequential_expected(backend, requests):
    detector, extractor = backend
    expected = []
    for kind, text in requests:
        if kind == "detect":
            expected.append(tuple(detector.predict_proba([text])))
        else:
            expected.append(tuple(extractor.extract_batch([text])))
    return expected


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    picks=st.lists(
        st.tuples(
            st.sampled_from(["extract", "detect"]), st.integers(0, 11)
        ),
        min_size=1,
        max_size=10,
    )
)
def test_concurrent_submits_match_sequential_singles(
    demo_backend, demo_texts, picks
):
    requests = [(kind, demo_texts[index]) for kind, index in picks]
    results, engine = serving_results(demo_backend, requests)
    expected = sequential_expected(demo_backend, requests)
    for result, (kind, _), want in zip(results, requests, expected):
        assert result.status == "ok"
        assert result.kind == kind
        if kind == "detect":
            # numpy float64 scores: require exact equality, not approx
            assert tuple(float(v) for v in result.values) == tuple(
                float(v) for v in want
            )
        else:
            assert result.values == want


def test_batched_run_actually_coalesced(demo_backend, demo_texts):
    """Guard the guard: the property above must exercise real batches."""
    requests = [("extract", text) for text in demo_texts]
    results, engine = serving_results(demo_backend, requests)
    assert max(result.batch_size for result in results) > 1
    snapshot = engine.metrics_snapshot()
    assert snapshot["counters"]["batches"] < len(requests)


def test_multi_text_requests_split_correctly(demo_backend, demo_texts):
    """A request's values line up with its own texts, not its batch-mates'."""
    requests = [("extract", demo_texts[i]) for i in range(4)]
    detector, extractor = demo_backend
    engine = ServingEngine(
        extractor=extractor,
        config=ServingConfig(num_workers=1, max_batch_requests=8,
                             max_wait_ms=5.0),
    )
    futures = [
        engine.submit(kind="extract", texts=tuple(demo_texts[i : i + 2]))
        for i in range(0, 8, 2)
    ]
    with engine:
        results = [future.result(timeout=60.0) for future in futures]
    for index, result in enumerate(results):
        want = extractor.extract_batch(demo_texts[2 * index : 2 * index + 2])
        assert list(result.values) == want
