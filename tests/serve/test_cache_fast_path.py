"""Serving-layer result cache: the fast path around the micro-batcher.

Hits resolve at ``submit()`` time — before admission, queueing, worker
lease, or batch-token accounting — and are marked ``batch_size=0``.
Backends without a fingerprintable model (stubs, unfitted demos) key to
nothing, so caching degrades to a no-op rather than a correctness risk.
"""

import numpy as np
import pytest

from repro.runtime.errors import OverloadedError
from repro.serve.engine import ServeRequest, ServingConfig, ServingEngine
from tests.serve.conftest import RecordingExtractor, StubDetector

pytestmark = [pytest.mark.serve, pytest.mark.cache]


class _FingerprintedModel:
    """The minimal surface ``_cache_key`` needs: fingerprint + modules."""

    def __init__(self, fingerprint: str = "sha-fixed"):
        self._fingerprint = fingerprint

    def fingerprint(self) -> str:
        return self._fingerprint

    def modules(self):
        return iter(())  # no quantized layers -> fp32 variant


class CacheableExtractor(RecordingExtractor):
    def __init__(self, delay: float = 0.0):
        super().__init__(delay)
        self.model = _FingerprintedModel()


class CacheableDetector(StubDetector):
    def __init__(self):
        self.model = _FingerprintedModel("sha-detector")


def make_engine(**config):
    config.setdefault("num_workers", 1)
    config.setdefault("max_wait_ms", 0.0)
    config.setdefault("result_cache_capacity", 64)
    extractor = CacheableExtractor()
    engine = ServingEngine(
        detector=CacheableDetector(),
        extractor=extractor,
        config=ServingConfig(**config),
    )
    return engine, extractor


class TestFastPath:
    def test_repeat_request_served_from_cache(self):
        engine, extractor = make_engine()
        engine.start()
        try:
            first = engine.submit(
                kind="extract", texts="Reduce waste by 20% by 2030."
            ).result(timeout=10)
            second = engine.submit(
                kind="extract", texts="Reduce waste by 20% by 2030."
            ).result(timeout=10)
        finally:
            engine.shutdown()
        assert first.values == second.values
        assert first.batch_size >= 1
        assert second.batch_size == 0  # the fast-path marker
        assert len(extractor.calls) == 1  # backend ran exactly once
        counters = engine.metrics_snapshot()["counters"]
        assert counters["cache_fast_path"] == 1
        assert counters["cache.hits.interactive"] == 1
        assert counters["cache.misses.interactive"] == 1

    def test_hit_bypasses_admission_queue(self):
        """A full queue sheds new work but still serves cached repeats."""
        # Unstarted engine: nothing drains the queue, so its single slot
        # stays occupied and only the cache can serve anything.
        engine, __ = make_engine(queue_depth=1)
        engine.result_cache.put(
            engine._cache_key(
                ServeRequest(kind="extract", texts=("cached one",))
            ),
            ({"Action": "cached"},),
        )
        engine.submit(kind="extract", texts="occupies the only slot")
        with pytest.raises(OverloadedError):
            engine.submit(kind="extract", texts="shed: queue is full")
        result = engine.submit(kind="extract", texts="cached one").result(
            timeout=1
        )
        assert result.batch_size == 0
        assert result.values == ({"Action": "cached"},)

    def test_hit_values_are_copies(self):
        engine, __ = make_engine()
        engine.start()
        try:
            text = "Cut emissions 50% by 2035."
            first = engine.submit(kind="extract", texts=text).result(
                timeout=10
            )
            first.values[0]["Action"] = "CORRUPTED"
            second = engine.submit(kind="extract", texts=text).result(
                timeout=10
            )
        finally:
            engine.shutdown()
        assert second.batch_size == 0
        assert second.values[0]["Action"] != "CORRUPTED"

    def test_detect_kind_cached_independently(self):
        engine, __ = make_engine()
        engine.start()
        try:
            text = "Increase recycling to 80%."
            cold = engine.submit(kind="detect", texts=text).result(timeout=10)
            warm = engine.submit(kind="detect", texts=text).result(timeout=10)
            # Same text under the *other* kind is a different key.
            other = engine.submit(kind="extract", texts=text).result(
                timeout=10
            )
        finally:
            engine.shutdown()
        assert warm.batch_size == 0
        np.testing.assert_array_equal(cold.values, warm.values)
        assert other.batch_size >= 1

    def test_texts_order_changes_key(self):
        engine, extractor = make_engine()
        engine.start()
        try:
            engine.submit(kind="extract", texts=("a b", "c d")).result(
                timeout=10
            )
            engine.submit(kind="extract", texts=("c d", "a b")).result(
                timeout=10
            )
        finally:
            engine.shutdown()
        assert len(extractor.calls) == 2  # no false sharing


class TestDegradation:
    def test_disabled_by_default(self):
        extractor = CacheableExtractor()
        engine = ServingEngine(
            extractor=extractor,
            config=ServingConfig(num_workers=1, max_wait_ms=0.0),
        )
        assert engine.result_cache is None
        engine.start()
        try:
            for __ in range(2):
                engine.submit(kind="extract", texts="same text").result(
                    timeout=10
                )
        finally:
            engine.shutdown()
        assert len(extractor.calls) == 2

    def test_model_less_backend_never_keys(self):
        """Stub backends without ``.model`` run uncached, never crash."""
        extractor = RecordingExtractor()
        engine = ServingEngine(
            extractor=extractor,
            config=ServingConfig(
                num_workers=1, max_wait_ms=0.0, result_cache_capacity=8
            ),
        )
        engine.start()
        try:
            for __ in range(2):
                engine.submit(kind="extract", texts="same text").result(
                    timeout=10
                )
        finally:
            engine.shutdown()
        assert len(extractor.calls) == 2
        counters = engine.metrics_snapshot()["counters"]
        assert "cache_fast_path" not in counters

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(result_cache_capacity=-1)


class TestMetricsView:
    def test_snapshot_exposes_per_priority_hit_rates(self):
        engine, __ = make_engine()
        engine.start()
        try:
            for __unused in range(3):
                engine.submit(
                    kind="extract", texts="repeated", priority="interactive"
                ).result(timeout=10)
            engine.submit(
                kind="extract", texts="repeated", priority="bulk"
            ).result(timeout=10)
            engine.submit(
                kind="extract", texts="bulk only", priority="bulk"
            ).result(timeout=10)
        finally:
            engine.shutdown()
        cache = engine.metrics_snapshot()["cache"]
        assert cache["fast_path"] == 3
        interactive = cache["by_priority"]["interactive"]
        assert interactive["hits"] == 2
        assert interactive["misses"] == 1
        assert interactive["hit_rate"] == pytest.approx(2 / 3)
        bulk = cache["by_priority"]["bulk"]
        assert bulk["hits"] == 1
        assert bulk["misses"] == 1
