"""Unit tests for the SLO metrics layer and the merge-safe run stats."""

import threading

import pytest

from repro.runtime.profiling import PerfCounters, RunStats
from repro.serve.metrics import LatencyHistogram, SloMetrics

pytestmark = pytest.mark.serve


class TestLatencyHistogram:
    def test_empty_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50"] == 0.0
        assert snapshot["p99"] == 0.0

    def test_quantiles_nearest_rank(self):
        hist = LatencyHistogram()
        for value in range(1, 101):  # 1..100 ms
            hist.observe(value / 1000.0)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50"] == pytest.approx(0.050)
        assert snapshot["p95"] == pytest.approx(0.095)
        assert snapshot["p99"] == pytest.approx(0.099)
        assert snapshot["max_seconds"] == pytest.approx(0.100)
        assert snapshot["mean_seconds"] == pytest.approx(0.0505)

    def test_ring_buffer_keeps_exact_totals(self):
        hist = LatencyHistogram(max_samples=8)
        for value in range(100):
            hist.observe(float(value))
        snapshot = hist.snapshot()
        # count/mean/max are exact even after the reservoir wrapped.
        assert snapshot["count"] == 100
        assert snapshot["max_seconds"] == 99.0
        # quantiles come from the retained window (the last 8 samples).
        assert snapshot["p50"] >= 92.0

    def test_concurrent_observe_keeps_count(self):
        hist = LatencyHistogram()
        threads = [
            threading.Thread(
                target=lambda: [hist.observe(0.001) for _ in range(500)]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.snapshot()["count"] == 2000


class TestSloMetrics:
    def test_snapshot_shape(self):
        clock_value = [0.0]
        metrics = SloMetrics(clock=lambda: clock_value[0])
        metrics.count("submitted")
        metrics.count("completed", 2)
        metrics.observe("extract.total", 0.004)
        clock_value[0] = 2.0
        snapshot = metrics.snapshot()
        assert snapshot["uptime_seconds"] == pytest.approx(2.0)
        assert snapshot["counters"]["submitted"] == 1
        assert snapshot["counters"]["completed"] == 2
        assert snapshot["latency"]["extract.total"]["count"] == 1
        assert snapshot["throughput"]["completed"] == 2
        assert snapshot["throughput"]["requests_per_second"] == pytest.approx(
            1.0
        )


class TestPerfCountersConcurrency:
    def test_parallel_adds_do_not_lose_updates(self):
        counters = PerfCounters()

        def hammer():
            for _ in range(1000):
                counters.add("hits")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.get("hits") == 8000

    def test_merge_and_snapshot(self):
        a, b = PerfCounters(), PerfCounters()
        a.add("hits", 3)
        b.add("hits", 2)
        b.add("misses", 1)
        a.merge(b)
        assert a.snapshot() == {"hits": 5, "misses": 1}
        # snapshot is a copy, not a live view
        a.snapshot()["hits"] = 99
        assert a.get("hits") == 5


class TestRunStatsMerge:
    def test_merge_sums_fields(self):
        a = RunStats(wall_seconds=1.0, sequences=10, total_tokens=100,
                     bpe_cache_hits=5, retries=1)
        b = RunStats(wall_seconds=0.5, sequences=4, total_tokens=40,
                     bpe_cache_hits=2, failures=1)
        merged = a.merge(b)
        assert merged.wall_seconds == pytest.approx(1.5)
        assert merged.sequences == 14
        assert merged.total_tokens == 140
        assert merged.bpe_cache_hits == 7
        assert merged.retries == 1
        assert merged.failures == 1
        # merge returns a new instance; inputs stay untouched
        assert a.sequences == 10 and b.sequences == 4

    def test_merge_sums_timings_and_extra(self):
        a = RunStats(timings={"encode": 1.0}, extra={"batches": 2})
        b = RunStats(timings={"encode": 0.5, "forward": 0.2},
                     extra={"batches": 3})
        merged = a.merge(b)
        assert merged.timings == {"encode": 1.5, "forward": 0.2}
        assert merged.extra == {"batches": 5}
