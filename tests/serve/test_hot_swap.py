"""Hot-swap atomicity: sweep swap timing against in-flight load.

The blue-green guarantee under test: a request is served *entirely* by
one model generation — never by a half-loaded model, never rejected
because a swap is in progress — and an aborted swap (failed gate or
injected ``swap_abort``) leaves the old generation serving untouched.
"""

import threading

import pytest

from repro.runtime.errors import InputError
from repro.runtime.resilience import FaultInjector, FaultSpec
from repro.serve.engine import ServingConfig
from repro.serve.fleet import FleetConfig, FleetRouter
from repro.serve.loadgen import build_swappable_extractor

pytestmark = [pytest.mark.serve, pytest.mark.fleet]


class GenerationExtractor:
    """Stub whose records carry their generation — a mixed record would
    be direct evidence of a half-loaded model serving traffic."""

    def __init__(self, generation: str, delay: float = 0.0):
        self.generation = generation
        self.delay = delay

    def extract_batch(self, texts):
        if self.delay:
            import time

            time.sleep(self.delay)
        return [
            {"gen": self.generation, "echo": text[:16]} for text in texts
        ]


def make_fleet(extractor, *, replicas=2, fault_injector=None, **fleet_kwargs):
    return FleetRouter(
        extractor=extractor,
        config=FleetConfig(
            replicas=replicas,
            engine=ServingConfig(
                num_workers=1, max_wait_ms=0.0, queue_depth=512
            ),
            **fleet_kwargs,
        ),
        fault_injector=fault_injector,
    )


def assert_pure_generation(result) -> str:
    """Every record in one result must come from a single generation."""
    generations = {record["gen"] for record in result.values}
    assert len(generations) == 1, f"mixed-generation result: {result.values}"
    return generations.pop()


class TestSwapTimingSweep:
    @pytest.mark.parametrize("swap_after", [0, 4, 9, 15, 20])
    def test_no_request_sees_a_half_loaded_model(self, swap_after):
        """Swap at every phase of an in-flight load; purity + zero sheds."""
        router = make_fleet(GenerationExtractor("old", delay=0.002))
        futures = []
        with router:
            for index in range(20):
                if index == swap_after:
                    report = router.swap_model(
                        extractor=GenerationExtractor("new", delay=0.002)
                    )
                    assert report.ok, report.reason
                futures.append(
                    router.submit(
                        kind="extract",
                        texts=(f"text {index} a", f"text {index} b"),
                    )
                )
            if swap_after >= 20:
                report = router.swap_model(
                    extractor=GenerationExtractor("new", delay=0.002)
                )
                assert report.ok, report.reason
            tail = [
                router.submit(kind="extract", texts=f"post-swap {index}")
                for index in range(5)
            ]
            results = [future.result(timeout=30.0) for future in futures]
            tail_results = [future.result(timeout=30.0) for future in tail]
        # Zero swap-caused rejections, zero failures.
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters.get("rejected", 0) == 0
        assert counters.get("failed", 0) == 0
        assert report.rejections_during_swap == 0
        # Purity: every result came from exactly one generation, and the
        # cut is clean — old before the swap returned, new after.
        generations = [assert_pure_generation(result) for result in results]
        assert generations == ["old"] * min(swap_after, 20) + ["new"] * (
            20 - min(swap_after, 20)
        )
        assert all(
            assert_pure_generation(result) == "new"
            for result in tail_results
        )

    def test_swap_under_concurrent_submission_storm(self):
        """A submission thread races the swap; purity must still hold."""
        router = make_fleet(GenerationExtractor("old", delay=0.001))
        futures = []
        stop = threading.Event()

        def pump() -> None:
            import time

            # Paced below fleet capacity: any rejection the test then
            # sees would be swap-caused, which is exactly the bug class
            # under test.
            index = 0
            while not stop.is_set() and index < 500:
                futures.append(
                    router.submit(kind="extract", texts=f"storm {index}")
                )
                index += 1
                time.sleep(0.001)

        with router:
            pumper = threading.Thread(target=pump, daemon=True)
            pumper.start()
            report = router.swap_model(
                extractor=GenerationExtractor("new", delay=0.001)
            )
            stop.set()
            pumper.join(timeout=10.0)
            results = [future.result(timeout=30.0) for future in futures]
        assert report.ok, report.reason
        assert report.rejections_during_swap == 0
        generations = [assert_pure_generation(result) for result in results]
        # The storm straddled the cutover: pure old before, pure new
        # after, with a single switch point.
        switches = sum(
            1
            for before, after in zip(generations, generations[1:])
            if before != after
        )
        assert switches <= 1
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters.get("failed", 0) == 0


class TestSwapAbort:
    def test_injected_swap_abort_leaves_old_generation_serving(self):
        injector = FaultInjector(
            [FaultSpec(stage="swap_abort", error="model", rate=1.0)],
            seed=5,
        )
        router = make_fleet(
            GenerationExtractor("old"), fault_injector=injector
        )
        with router:
            before = router.submit(kind="extract", texts="before swap")
            report = router.swap_model(
                extractor=GenerationExtractor("new")
            )
            assert not report.ok
            assert report.states[-1] == "starting"  # never reached cutover
            assert "swap_abort" not in report.states
            assert router.generation == 0
            after = router.submit(kind="extract", texts="after abort")
            assert assert_pure_generation(before.result(timeout=10.0)) == "old"
            assert assert_pure_generation(after.result(timeout=10.0)) == "old"
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters["swaps_aborted"] == 1
        assert counters.get("swaps", 0) == 0
        # The aborted generation's replicas never entered routing.
        assert router.live_replicas() == ["r000", "r001"]

    def test_probe_gate_failure_aborts(self):
        class WrongShape:
            def extract_batch(self, texts):
                return [{"gen": "new"} for _ in texts[:-1]]  # short!

        router = make_fleet(GenerationExtractor("old"))
        with router:
            report = router.swap_model(
                extractor=WrongShape(), probe_texts=("p1", "p2")
            )
            assert not report.ok
            assert report.gate["status"] == "failed"
            assert router.generation == 0
            still = router.submit(kind="extract", texts="still old")
            assert assert_pure_generation(still.result(timeout=10.0)) == "old"

    def test_swap_requires_started_fleet_and_a_model(self):
        router = make_fleet(GenerationExtractor("old"))
        with pytest.raises(RuntimeError):
            router.swap_model(extractor=GenerationExtractor("new"))
        with router:
            with pytest.raises(InputError):
                router.swap_model()


@pytest.fixture(scope="module")
def swappable_checkpoint(tmp_path_factory):
    """A saved zoo-geometry extractor checkpoint (built once per module)."""
    extractor = build_swappable_extractor(seed=3, num_objectives=12)
    directory = tmp_path_factory.mktemp("fleet-swap") / "ckpt"
    extractor.save(directory)
    return extractor, directory


class TestCheckpointSwap:
    def test_happy_swap_through_verified_checkpoint(
        self, swappable_checkpoint
    ):
        extractor, directory = swappable_checkpoint
        texts = ["Reduce waste by 20% by 2030.", "Cut emissions in half."]
        router = make_fleet(extractor, replicas=2)
        with router:
            before = [
                router.submit(kind="extract", texts=text).result(timeout=60.0)
                for text in texts
            ]
            report = router.swap_model(directory, probe_texts=texts[:1])
            assert report.ok, report.reason
            assert report.states == [
                "loading",
                "gating",
                "starting",
                "cutover",
                "draining",
                "retired",
            ]
            assert report.config_hash_checked
            assert report.gate["status"] == "passed"
            assert report.rejections_during_swap == 0
            after = [
                router.submit(kind="extract", texts=text).result(timeout=60.0)
                for text in texts
            ]
        # Same weights reloaded through the manifest-verified path: the
        # new generation's records are bitwise-identical to the old's.
        assert [r.values for r in before] == [r.values for r in after]
        assert router.generation == 1
        states = router.health_states().values()
        assert sorted(states) == ["healthy", "healthy", "retired", "retired"]

    def test_corrupt_checkpoint_aborts_swap(
        self, swappable_checkpoint, tmp_path
    ):
        import shutil

        extractor, directory = swappable_checkpoint
        corrupt = tmp_path / "corrupt"
        shutil.copytree(directory, corrupt)
        payload = (corrupt / "model.npz").read_bytes()
        (corrupt / "model.npz").write_bytes(payload[:-64] + b"\x00" * 64)
        router = make_fleet(extractor, replicas=1)
        with router:
            report = router.swap_model(corrupt)
            assert not report.ok
            assert report.states == ["loading"]
            assert router.generation == 0
            still = router.submit(
                kind="extract", texts="still serving old weights"
            )
            assert still.result(timeout=60.0).status == "ok"

    def test_config_hash_mismatch_aborts_swap(
        self, swappable_checkpoint, tmp_path
    ):
        extractor, _ = swappable_checkpoint
        other = build_swappable_extractor(seed=3, num_objectives=12)
        object.__setattr__(other.config, "outside_weight", 0.99)
        other_dir = tmp_path / "other"
        other.save(other_dir)
        router = make_fleet(extractor, replicas=1)
        with router:
            report = router.swap_model(other_dir)
            assert not report.ok
            assert "config hash mismatch" in report.reason
            assert report.config_hash_checked
            assert router.generation == 0
