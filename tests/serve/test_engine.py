"""Engine lifecycle tests: overload shedding, priorities, drain, metrics.

Requests may be submitted before ``start()`` — the queue fills with no
workers attached — which is what makes the overload and priority-order
assertions here fully deterministic.
"""

import pytest

from repro.runtime.errors import InputError, OverloadedError, ReproError
from repro.serve.engine import ServingConfig, ServingEngine
from tests.serve.conftest import RecordingExtractor

pytestmark = pytest.mark.serve


def make_engine(extractor, detector=None, **config):
    config.setdefault("num_workers", 1)
    config.setdefault("max_wait_ms", 0.0)
    return ServingEngine(
        detector=detector, extractor=extractor, config=ServingConfig(**config)
    )


class TestValidation:
    def test_needs_a_backend(self):
        with pytest.raises(ValueError):
            ServingEngine()

    def test_rejects_unknown_kind_and_priority(self, recording_extractor):
        engine = make_engine(recording_extractor)
        with pytest.raises(InputError):
            engine.submit(kind="translate", texts="hello world")
        with pytest.raises(InputError):
            engine.submit(kind="extract", texts="hi", priority="urgent")

    def test_rejects_empty_texts(self, recording_extractor):
        engine = make_engine(recording_extractor)
        with pytest.raises(InputError):
            engine.submit(kind="extract", texts=())
        with pytest.raises(InputError):
            engine.submit(kind="extract", texts="   ")

    def test_rejects_kind_without_backend(self, recording_extractor):
        engine = make_engine(recording_extractor)
        with pytest.raises(InputError):
            engine.submit(kind="detect", texts="is this an objective?")


class TestOverload:
    def test_sheds_deterministically_at_queue_bound(self, recording_extractor):
        engine = make_engine(recording_extractor, queue_depth=4)
        for index in range(4):  # unstarted engine: nothing drains the queue
            engine.submit(kind="extract", texts=f"request {index}")
        with pytest.raises(OverloadedError):
            engine.submit(kind="extract", texts="one too many")
        snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["submitted"] == 5
        assert snapshot["counters"]["admitted"] == 4
        assert snapshot["counters"]["rejected"] == 1
        assert snapshot["counters"]["rejected.interactive"] == 1
        assert snapshot["engine"]["queue_depth"]["interactive"] == 4

    def test_shed_requests_complete_after_start(self, recording_extractor):
        engine = make_engine(recording_extractor, queue_depth=2)
        futures = [
            engine.submit(kind="extract", texts=f"request {i}")
            for i in range(2)
        ]
        with pytest.raises(OverloadedError):
            engine.submit(kind="extract", texts="shed me")
        with engine:
            results = [future.result(timeout=10.0) for future in futures]
        assert all(result.status == "ok" for result in results)


class TestPriorities:
    def test_interactive_dispatched_before_bulk(self, recording_extractor):
        engine = make_engine(recording_extractor, max_batch_requests=1)
        bulk = [
            engine.submit(kind="extract", texts=f"bulk {i}", priority="bulk")
            for i in range(3)
        ]
        interactive = [
            engine.submit(kind="extract", texts=f"user {i}")
            for i in range(2)
        ]
        with engine:
            for future in interactive + bulk:
                future.result(timeout=10.0)
        processed = [texts[0] for texts in recording_extractor.calls]
        assert processed == ["user 0", "user 1", "bulk 0", "bulk 1", "bulk 2"]


class TestDrainAndShutdown:
    def test_drain_completes_in_flight_and_sheds_new(self):
        slow = RecordingExtractor(delay=0.02)
        engine = make_engine(slow, num_workers=2)
        futures = [
            engine.submit(kind="extract", texts=f"request {i}")
            for i in range(6)
        ]
        engine.start()
        assert engine.drain(timeout=10.0) is True
        assert engine.state == "draining"
        for future in futures:  # everything admitted before drain finished
            assert future.result(timeout=0).status == "ok"
        with pytest.raises(OverloadedError):
            engine.submit(kind="extract", texts="late arrival")
        engine.shutdown()
        assert engine.state == "stopped"

    def test_drain_requires_a_started_engine(self, recording_extractor):
        engine = make_engine(recording_extractor)
        with pytest.raises(RuntimeError):
            engine.drain()

    def test_abort_shutdown_fails_queued_requests(self, recording_extractor):
        engine = make_engine(recording_extractor)
        future = engine.submit(kind="extract", texts="never ran")
        engine.shutdown(drain=False)  # never started: abort path
        with pytest.raises(OverloadedError):
            future.result(timeout=0)
        assert engine.state == "stopped"
        assert recording_extractor.calls == []

    def test_context_manager_drains(self, recording_extractor):
        engine = make_engine(recording_extractor)
        with engine:
            future = engine.extract("cut emissions 30% by 2030")
        assert future.result(timeout=0).status == "ok"
        assert engine.state == "stopped"

    def test_restart_after_stop_is_an_error(self, recording_extractor):
        engine = make_engine(recording_extractor)
        engine.start()
        engine.shutdown()
        with pytest.raises(RuntimeError):
            engine.start()


class TestServing:
    def test_detect_and_extract_round_trip(
        self, recording_extractor, stub_detector
    ):
        engine = make_engine(recording_extractor, detector=stub_detector)
        with engine:
            detect = engine.detect(["cut waste 5%", "plain narrative"])
            extract = engine.extract("cut waste 5% by 2030")
            scores = detect.result(timeout=10.0)
            details = extract.result(timeout=10.0)
        assert scores.kind == "detect"
        assert [float(s) for s in scores.values] == [0.9, 0.1]
        assert details.kind == "extract"
        assert details.values[0]["Action"] == "reduce"
        assert details.batch_size >= 1
        assert details.total_seconds >= details.compute_seconds >= 0.0

    def test_metrics_snapshot_shape(self, recording_extractor):
        engine = make_engine(recording_extractor)
        with engine:
            engine.extract("cut waste 5%").result(timeout=10.0)
        snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["completed"] == 1
        assert snapshot["latency"]["extract.total"]["count"] == 1
        assert snapshot["latency"]["extract.queue_wait"]["count"] == 1
        assert snapshot["latency"]["extract.compute"]["count"] == 1
        assert snapshot["throughput"]["completed"] == 1
        assert snapshot["engine"]["state"] == "stopped"
        assert snapshot["engine"]["breakers"]["extract"] == "closed"
        assert snapshot["engine"]["quarantined"] == 0


class TestDrainShutdownFix:
    def test_drain_shutdown_completes_queued_futures_on_unstarted_engine(
        self, recording_extractor
    ):
        """A drain shutdown never abandons accepted work — even when the
        engine was never started, it spins workers up just to run the
        queue down (the abort path in
        ``test_abort_shutdown_fails_queued_requests`` is unchanged)."""
        engine = make_engine(recording_extractor)
        futures = [
            engine.submit(kind="extract", texts=f"queued {index}")
            for index in range(3)
        ]
        engine.shutdown(drain=True, timeout=10.0)
        for future in futures:
            assert future.result(timeout=0).status == "ok"
        assert engine.state == "stopped"
        assert len(recording_extractor.calls) >= 1

    def test_drain_shutdown_on_idle_unstarted_engine_stays_cheap(
        self, recording_extractor
    ):
        engine = make_engine(recording_extractor)
        engine.shutdown(drain=True)  # nothing queued: no workers spawned
        assert engine.state == "stopped"
        assert engine.metrics_snapshot()["engine"]["workers"] == 0


class TestWorkerCrashGuard:
    def test_worker_survives_an_escaped_exception(
        self, recording_extractor, monkeypatch
    ):
        """A non-ReproError escaping batch execution fails that batch's
        futures with a classified error but leaves the worker alive for
        the next request."""
        engine = make_engine(recording_extractor)
        original = engine._execute_batch
        calls = {"count": 0}

        def explode_once(batch):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("worker bug: unguarded KeyError-alike")
            return original(batch)

        monkeypatch.setattr(engine, "_execute_batch", explode_once)
        with engine:
            doomed = engine.submit(kind="extract", texts="first in line")
            with pytest.raises(ReproError):
                doomed.result(timeout=10.0)
            # Same worker, next request: still serving.
            healthy = engine.submit(kind="extract", texts="second in line")
            assert healthy.result(timeout=10.0).status == "ok"
        snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["worker_faults"] == 1
        assert snapshot["counters"]["failed"] == 1
        assert snapshot["counters"]["completed"] == 1
