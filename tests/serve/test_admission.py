"""Unit tests for the admission controller: bounds, priorities, leases."""

import pytest

from repro.runtime.errors import OverloadedError
from repro.serve.admission import PRIORITIES, AdmissionController
from repro.serve.engine import ServeRequest, _QueuedRequest

pytestmark = pytest.mark.serve


def entry(text="cut waste 5%", kind="extract", priority="interactive",
          cost=None):
    request = ServeRequest(kind=kind, texts=(text,), priority=priority)
    return _QueuedRequest(
        request, cost if cost is not None else len(text.split()), 0.0
    )


class TestBounds:
    def test_rejects_at_exact_depth_bound(self):
        controller = AdmissionController(queue_depth=3)
        for _ in range(3):
            controller.admit(entry())
        with pytest.raises(OverloadedError) as excinfo:
            controller.admit(entry())
        assert excinfo.value.retryable is False
        assert len(controller) == 3

    def test_bounds_are_per_priority_class(self):
        controller = AdmissionController(queue_depth=2)
        controller.admit(entry(priority="interactive"))
        controller.admit(entry(priority="interactive"))
        with pytest.raises(OverloadedError):
            controller.admit(entry(priority="interactive"))
        # the bulk class has its own bound and still has room
        controller.admit(entry(priority="bulk"))
        assert controller.depth("bulk") == 1

    def test_mapping_depths(self):
        controller = AdmissionController(
            queue_depth={"interactive": 1, "bulk": 2}
        )
        controller.admit(entry(priority="interactive"))
        with pytest.raises(OverloadedError):
            controller.admit(entry(priority="interactive"))
        controller.admit(entry(priority="bulk"))
        controller.admit(entry(priority="bulk"))

    def test_shedding_rejects_everything(self):
        controller = AdmissionController(queue_depth=8)
        controller.shed()
        with pytest.raises(OverloadedError):
            controller.admit(entry())


class TestPriorities:
    def test_pop_prefers_interactive(self):
        controller = AdmissionController(queue_depth=8)
        bulk = entry("bulk job", priority="bulk")
        interactive = entry("user query", priority="interactive")
        controller.admit(bulk)
        controller.admit(interactive)
        assert controller.pop(timeout=0) is interactive
        assert controller.pop(timeout=0) is bulk

    def test_fifo_within_a_class(self):
        controller = AdmissionController(queue_depth=8)
        first, second = entry("first request"), entry("second request")
        controller.admit(first)
        controller.admit(second)
        assert controller.pop(timeout=0) is first
        assert controller.pop(timeout=0) is second


class TestGather:
    def test_coalesces_up_to_request_bound(self):
        controller = AdmissionController(queue_depth=16)
        entries = [entry(f"request number {i}") for i in range(5)]
        for item in entries:
            controller.admit(item)
        first = controller.pop(timeout=0)
        batch = controller.gather(
            first, max_requests=3, max_tokens=1024, max_wait_seconds=0.0
        )
        assert batch == entries[:3]
        assert len(controller) == 2

    def test_respects_token_budget(self):
        controller = AdmissionController(queue_depth=16)
        small = entry("tiny", cost=2)
        big = entry("huge request", cost=100)
        controller.admit(small)
        controller.admit(big)
        first = controller.pop(timeout=0)
        batch = controller.gather(
            first, max_requests=8, max_tokens=50, max_wait_seconds=0.0
        )
        # the big head does not fit the remaining budget: flush without it
        assert batch == [small]
        assert controller.depth("interactive") == 1

    def test_never_mixes_kinds(self):
        controller = AdmissionController(queue_depth=16)
        extract = entry("extract me", kind="extract")
        detect = entry("detect me", kind="detect")
        controller.admit(extract)
        controller.admit(detect)
        first = controller.pop(timeout=0)
        batch = controller.gather(
            first, max_requests=8, max_tokens=1024, max_wait_seconds=0.0
        )
        assert batch == [extract]

    def test_idle_gather_returns_immediately(self):
        # nothing else queued or leased: a lone request pays no batching tax
        ticks = []

        def clock():
            ticks.append(None)
            return 0.0  # frozen clock: any wait() would loop forever

        controller = AdmissionController(queue_depth=16, clock=clock)
        only = entry()
        controller.admit(only)
        first = controller.pop(timeout=0)
        batch = controller.gather(
            first, max_requests=8, max_tokens=1024, max_wait_seconds=10.0
        )
        assert batch == [only]


class TestLeases:
    def test_wait_idle_waits_for_leases(self):
        controller = AdmissionController(queue_depth=8)
        controller.admit(entry())
        leased = controller.pop(timeout=0)
        assert leased is not None
        assert len(controller) == 0  # queue empty ...
        assert controller.wait_idle(timeout=0.01) is False  # ... not idle
        controller.release()
        assert controller.wait_idle(timeout=1.0) is True

    def test_over_release_is_an_error(self):
        controller = AdmissionController(queue_depth=8)
        with pytest.raises(RuntimeError):
            controller.release()

    def test_pop_all_empties_every_class(self):
        controller = AdmissionController(queue_depth=8)
        for priority in PRIORITIES:
            controller.admit(entry(priority=priority))
        drained = controller.pop_all()
        assert len(drained) == 2
        assert len(controller) == 0
        assert controller.wait_idle(timeout=0.1) is True
