"""Shared fixtures for the serving-subsystem tests.

Most engine tests drive cheap deterministic stub backends; the
equivalence property and the bench smoke test use the real (untrained,
seeded) demo backend from :mod:`repro.serve.loadgen`, built once per
session because BPE training dominates its cost.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve.loadgen import build_demo_backend, build_request_texts


class RecordingExtractor:
    """Deterministic stub extractor that records processing order."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.calls: list[list[str]] = []
        self._lock = threading.Lock()

    def extract_batch(self, texts):
        with self._lock:
            self.calls.append(list(texts))
        if self.delay:
            time.sleep(self.delay)
        return [{"Action": "reduce", "Qualifier": text[:12]} for text in texts]


class PoisonedExtractor(RecordingExtractor):
    """Fails every attempt on texts carrying a poison tag."""

    def __init__(self, tag: str = "POISON", delay: float = 0.0):
        super().__init__(delay)
        self.tag = tag

    def extract_batch(self, texts):
        if any(self.tag in text for text in texts):
            raise ValueError(f"poisoned request in batch of {len(texts)}")
        return super().extract_batch(texts)


class StubDetector:
    """Deterministic stub detector: scores by presence of a % sign."""

    def predict_proba(self, texts):
        return np.array([0.9 if "%" in text else 0.1 for text in texts])


@pytest.fixture
def recording_extractor():
    return RecordingExtractor()


@pytest.fixture
def stub_detector():
    return StubDetector()


@pytest.fixture(scope="session")
def demo_backend():
    """The real untrained detector + extractor pair (built once)."""
    return build_demo_backend(seed=3, num_objectives=24)


@pytest.fixture(scope="session")
def demo_texts():
    return build_request_texts(seed=7, num_texts=12)
