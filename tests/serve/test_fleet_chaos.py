"""Chaos tier for the fleet: replica kills mid-storm, stalls, fault sites.

The headline property (the ISSUE's at-least-once failover guarantee):
kill one replica at a seeded random point while an open-loop storm is in
flight, and (a) zero accepted requests are lost, (b) every result is
bitwise-identical to a single-replica no-chaos reference, (c) the
router's health view converges — the victim is ``dead``, the survivors
are ``healthy``.
"""

import time

import numpy as np
import pytest

from repro.runtime.errors import ModelError, OverloadedError
from repro.runtime.resilience import FaultInjector, FaultSpec
from repro.serve.engine import ServingConfig
from repro.serve.fleet import FleetConfig, FleetRouter
from tests.serve.conftest import RecordingExtractor

pytestmark = [pytest.mark.serve, pytest.mark.fleet, pytest.mark.chaos]


def storm_fleet(extractor, *, replicas, fault_injector=None, queue_depth=512):
    return FleetRouter(
        extractor=extractor,
        config=FleetConfig(
            replicas=replicas,
            engine=ServingConfig(
                num_workers=1, max_wait_ms=0.0, queue_depth=queue_depth
            ),
        ),
        fault_injector=fault_injector,
    )


class TestChaosStorm:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_replica_kill_mid_storm_loses_nothing(self, seed):
        """Seeded kill point; zero lost, bitwise-identical, converged."""
        num_requests = 40
        texts = [f"chaos request {index:03d}" for index in range(num_requests)]
        rng = np.random.default_rng(seed)
        kill_point = int(rng.integers(5, num_requests - 5))
        router = storm_fleet(
            RecordingExtractor(delay=0.002), replicas=3
        )
        victim = None
        futures = []
        with router:
            for index, text in enumerate(texts):
                if index == kill_point:
                    victim = router.live_replicas()[
                        int(rng.integers(0, 3))
                    ]
                    assert router.kill_replica(victim)
                futures.append(router.submit(kind="extract", texts=text))
            results = [future.result(timeout=30.0) for future in futures]

        # (a) zero lost: every accepted request resolved successfully.
        assert len(results) == num_requests
        assert all(result.status == "ok" for result in results)
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters["completed"] == num_requests
        assert counters.get("failed", 0) == 0

        # (b) bitwise-identical to a 1-replica, no-chaos reference.
        reference = storm_fleet(RecordingExtractor(), replicas=1)
        with reference:
            reference_values = [
                reference.submit(kind="extract", texts=text)
                .result(timeout=30.0)
                .values
                for text in texts
            ]
        assert [result.values for result in results] == reference_values

        # (c) health convergence: victim dead, survivors healthy.
        health = router.health_states()
        assert health[victim] == "dead"
        survivors = [rid for rid in health if rid != victim]
        assert all(health[rid] == "healthy" for rid in survivors)

    def test_injected_replica_crash_at_dispatch(self):
        """The ``replica_crash`` fault site kills the selected replica."""
        injector = FaultInjector(
            [FaultSpec(stage="replica_crash", error="crash", nth_calls=(4,))],
            seed=3,
        )
        router = storm_fleet(
            RecordingExtractor(delay=0.002),
            replicas=2,
            fault_injector=injector,
        )
        with router:
            futures = [
                router.submit(kind="extract", texts=f"request {index}")
                for index in range(12)
            ]
            results = [future.result(timeout=30.0) for future in futures]
        assert all(result.status == "ok" for result in results)
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters["chaos.replica_crash"] == 1
        assert counters["replicas_killed"] == 1
        assert counters.get("failed", 0) == 0
        assert sorted(router.health_states().values()) == ["dead", "healthy"]

    def test_injected_replica_stall_strikes_health_not_request(self):
        """``replica_stall`` costs the replica a strike; the request reroutes."""
        # Odd ordinals only: the stall check runs again on the same
        # dispatch's retry pass (which must NOT stall, or the request has
        # nowhere left to go), so consecutive ordinals would burn both
        # replicas for one request.
        injector = FaultInjector(
            [
                FaultSpec(
                    stage="replica_stall",
                    error="timeout",
                    nth_calls=(1, 3, 5),
                )
            ],
            seed=3,
        )
        router = storm_fleet(
            RecordingExtractor(),
            replicas=2,
            fault_injector=injector,
        )
        # Submit sequentially on an idle fleet: least-loaded always picks
        # r000 first (id tie-break at load 0), so all three strikes land
        # on r000 and the third ejects it.
        with router:
            results = [
                router.submit(kind="extract", texts=f"request {index}")
                .result(timeout=30.0)
                for index in range(6)
            ]
        assert all(result.status == "ok" for result in results)
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters["chaos.replica_stall"] == 3
        assert counters.get("failed", 0) == 0
        states = sorted(router.health_states().values())
        assert "ejected" in states  # three stalls ejected one replica

    def test_ejected_replica_readmitted_on_probation(self):
        """A stall-ejected replica re-enters routing after the cooldown."""
        clock_start = time.monotonic()
        injector = FaultInjector(
            [
                FaultSpec(
                    stage="replica_stall",
                    error="timeout",
                    nth_calls=(1,),
                )
            ],
            seed=3,
        )
        router = FleetRouter(
            extractor=RecordingExtractor(),
            config=FleetConfig(
                replicas=1,
                failure_threshold=1,
                readmission_seconds=0.05,
                engine=ServingConfig(
                    num_workers=1, max_wait_ms=0.0, queue_depth=64
                ),
            ),
            fault_injector=injector,
        )
        with router:
            # First submit: the only replica stalls, gets ejected, and no
            # other replica can take the request.
            with pytest.raises(OverloadedError):
                router.submit(kind="extract", texts="stalled away")
            assert router.health_states() == {"r000": "ejected"}
            time.sleep(0.1)  # cooldown elapses
            future = router.submit(kind="extract", texts="probation trial")
            assert future.result(timeout=10.0).status == "ok"
        assert router.health_states() == {"r000": "healthy"}

    def test_backend_faults_do_not_trigger_failover(self):
        """Ordinary model errors fail the request, not the replica."""

        class FailsOnTag:
            def extract_batch(self, texts):
                if any("BAD" in text for text in texts):
                    raise ValueError("poisoned")
                return [{"Action": "ok"} for _ in texts]

        router = storm_fleet(FailsOnTag(), replicas=2)
        with router:
            bad = router.submit(kind="extract", texts="BAD request")
            good = router.submit(kind="extract", texts="fine request")
            with pytest.raises(ModelError):
                bad.result(timeout=10.0)
            assert good.result(timeout=10.0).status == "ok"
        counters = router.metrics_snapshot()["router"]["counters"]
        assert counters.get("failover.redispatched", 0) == 0
        assert counters["failed"] == 1
        # One strike each at most — nobody ejected, nobody dead.
        assert all(
            state == "healthy"
            for state in router.health_states().values()
        )
