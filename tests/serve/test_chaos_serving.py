"""Chaos tests: the engine under injected faults and poisoned requests.

Property (ISSUE satellite 4): a poisoned request degrades (fallback
extractor) or lands in the quarantine — its batch-mates complete
normally, the workers survive, and the engine keeps serving afterwards.
"""

import pytest

from repro.runtime.errors import ModelError, ReproError
from repro.runtime.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.serve.engine import ServingConfig, ServingEngine
from tests.serve.conftest import PoisonedExtractor, RecordingExtractor

pytestmark = [pytest.mark.serve, pytest.mark.chaos]

NO_RETRY = RetryPolicy(max_retries=0, base_delay=0.0, jitter=0.0)


def chaos_engine(extractor, fallback=None, injector=None, **config):
    config.setdefault("num_workers", 1)
    config.setdefault("max_wait_ms", 0.0)
    config.setdefault("breaker_threshold", 1000)  # chaos aims at the ladder
    return ServingEngine(
        extractor=extractor,
        fallback_extractor=fallback,
        fault_injector=injector,
        retry_policy=NO_RETRY,
        config=ServingConfig(**config),
    )


class TestPoisonedRequests:
    def test_poison_is_isolated_from_batch_mates(self):
        extractor = PoisonedExtractor()
        engine = chaos_engine(extractor, max_batch_requests=8)
        futures = [
            engine.submit(kind="extract", texts=f"reduce waste, batch {i}")
            for i in range(3)
        ]
        poisoned = engine.submit(kind="extract", texts="POISON this one")
        with engine:
            results = [future.result(timeout=10.0) for future in futures]
            error = poisoned.exception(timeout=10.0)
        # batch-mates all completed despite sharing a batch with the poison
        assert all(result.status == "ok" for result in results)
        assert isinstance(error, ReproError)
        snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["batch_isolations"] >= 1
        assert snapshot["counters"]["failed"] == 1
        assert snapshot["counters"]["completed"] == 3

    def test_poison_quarantined_with_provenance(self):
        engine = chaos_engine(PoisonedExtractor())
        future = engine.submit(kind="extract", texts="POISON pill")
        with engine:
            assert future.exception(timeout=10.0) is not None
        assert len(engine.quarantine) == 1
        record = engine.quarantine[0]
        assert record["kind"] == "extract"
        assert record["texts"] == ["POISON pill"]
        assert record["stage"] == "extract"

    def test_poison_degrades_through_fallback(self):
        fallback = RecordingExtractor()
        engine = chaos_engine(PoisonedExtractor(), fallback=fallback)
        future = engine.submit(kind="extract", texts="POISON but recoverable")
        with engine:
            result = future.result(timeout=10.0)
        assert result.status == "degraded"
        assert result.values[0]["Action"] == "reduce"
        assert len(engine.quarantine) == 0
        assert engine.metrics_snapshot()["counters"]["degraded"] == 1


class TestInjectedFaults:
    def test_engine_survives_fault_storm_and_keeps_serving(self):
        injector = FaultInjector(
            [FaultSpec(stage="extract", error="model", rate=0.4)], seed=2
        )
        fallback = RecordingExtractor()
        engine = chaos_engine(
            RecordingExtractor(),
            fallback=fallback,
            injector=injector,
            max_batch_requests=4,
        )
        futures = [
            engine.submit(kind="extract", texts=f"cut emissions run {i}")
            for i in range(24)
        ]
        engine.start()
        results = [future.result(timeout=30.0) for future in futures]
        # fallback always recovers: every request resolves ok-or-degraded
        statuses = {result.status for result in results}
        assert statuses <= {"ok", "degraded"}
        assert injector.injected("extract") > 0
        assert "degraded" in statuses
        # the engine is still alive and serving after the storm
        late = engine.extract("late request after chaos")
        assert late.result(timeout=10.0).status in ("ok", "degraded")
        engine.shutdown()
        snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["completed"] == 25
        assert snapshot["counters"].get("failed", 0) == 0

    def test_fault_without_fallback_quarantines_not_kills(self):
        injector = FaultInjector(
            [FaultSpec(stage="extract", error="model", nth_calls=(1,))],
            seed=5,
        )
        engine = chaos_engine(RecordingExtractor(), injector=injector)
        first = engine.submit(kind="extract", texts="doomed request")
        with engine:
            error = first.exception(timeout=10.0)
            # worker survived the fault: the next request still completes
            second = engine.extract("healthy request")
            result = second.result(timeout=10.0)
        assert isinstance(error, ModelError)
        assert error.injected
        assert result.status == "ok"
        assert len(engine.quarantine) == 1
