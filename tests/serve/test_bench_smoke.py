"""Smoke tests for the serving benchmark and the serve-bench CLI.

Runs tiny load levels and asserts the ``BENCH_serving.json`` schema —
no performance claims here (those live in ``benchmarks/bench_serving.py``,
which only runs when the benchmarks tree is invoked explicitly).
"""

import json

import pytest

import benchmarks.bench_serving as bench_serving
from repro.cli import main
from repro.serve.loadgen import LoadLevel, run_serving_bench

pytestmark = [pytest.mark.serve, pytest.mark.smoke]

LEVEL_KEYS = {
    "level", "mode", "offered", "requests", "completed", "rejected",
    "failed", "wall_seconds", "throughput_rps", "latency", "queue_wait",
    "compute", "mean_batch_rows", "engine_metrics",
}
PERCENTILE_KEYS = {"count", "mean_seconds", "max_seconds", "p50", "p95", "p99"}


def assert_report_schema(report, num_levels):
    assert report["schema_version"] == 1
    assert {"seed", "num_workers", "max_batch_requests", "levels"} <= set(
        report["config"]
    )
    assert len(report["levels"]) == num_levels
    for level in report["levels"]:
        assert set(level) == {"level", "offered", "mode", "modes"}
        assert set(level["modes"]) == {"microbatch", "batch1"}
        for mode_report in level["modes"].values():
            assert LEVEL_KEYS <= set(mode_report)
            for split in ("latency", "queue_wait", "compute"):
                assert set(mode_report[split]) == PERCENTILE_KEYS
            assert mode_report["completed"] + mode_report[
                "rejected"
            ] + mode_report["failed"] == mode_report["requests"]
    comparison = report["comparison"]
    assert {
        "level", "microbatch_throughput_rps", "batch1_throughput_rps",
        "throughput_speedup", "microbatch_p95_seconds",
        "batch1_p95_seconds", "microbatch_wins",
    } == set(comparison)
    assert isinstance(comparison["microbatch_wins"], bool)


def test_run_serving_bench_schema_closed_and_open():
    report = run_serving_bench(
        [
            LoadLevel("closed-2", "closed", 2, 6),
            LoadLevel("open-80rps", "open", 80.0, 6),
        ],
        seed=0,
        num_texts=8,
        num_workers=2,
    )
    assert_report_schema(report, num_levels=2)
    for level in report["levels"]:
        for mode_report in level["modes"].values():
            assert mode_report["completed"] == 6
            engine = mode_report["engine_metrics"]
            assert engine["counters"]["completed"] == 6
            assert "extract.total" in engine["latency"]


def test_bench_module_writes_report(monkeypatch, tmp_path):
    result_path = tmp_path / "BENCH_serving.json"
    monkeypatch.setattr(bench_serving, "RESULT_PATH", result_path)
    monkeypatch.setenv("REPRO_BENCH_SERVE_REQUESTS", "8")
    report = bench_serving.run_serving_benchmark()
    assert result_path.exists()
    on_disk = json.loads(result_path.read_text())
    assert on_disk["comparison"] == report["comparison"]
    assert_report_schema(on_disk, num_levels=4)
    modes = {level["mode"] for level in on_disk["levels"]}
    assert modes == {"closed", "open"}  # both loop disciplines covered


def test_cli_serve_bench(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main(
        [
            "serve-bench",
            "--level", "closed:2",
            "--requests", "6",
            "--out", str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert_report_schema(report, num_levels=1)
    stdout = capsys.readouterr().out
    assert "throughput" in stdout
    assert str(out) in stdout


def test_cli_serve_bench_bad_level(tmp_path, capsys):
    code = main(
        ["serve-bench", "--level", "sideways", "--out", str(tmp_path / "r")]
    )
    assert code == 2
    assert "bad --level" in capsys.readouterr().err
