"""CLI failure-policy tests: exit codes, --on-error, --max-retries.

Exit-code contract (DESIGN.md "Failure model"): input error -> 2,
model/numerical error -> 3, partial success -> 0 + warning on stderr.
Uses a stubbed model loader so no training is needed.
"""

import json

import pytest

import repro.cli as cli
from repro.core.extractor import ExtractorConfig
from repro.runtime.errors import NumericalError
from repro.runtime.resilience import MAX_BLOCK_CHARS


class StubCliExtractor:
    """Stands in for a loaded WeakSupervisionExtractor."""

    def __init__(self, fail_texts=(), fail_first_n_batches=0, error=None):
        self.config = ExtractorConfig()
        self.last_run_stats = None
        self.fail_texts = set(fail_texts)
        self.remaining_batch_failures = fail_first_n_batches
        self.error = error or ValueError("model exploded")

    def _maybe_fail(self, text):
        if any(marker in text for marker in self.fail_texts):
            raise self.error

    def extract(self, text):
        self._maybe_fail(text)
        return {field: "v" for field in self.config.fields}

    def extract_batch(self, texts):
        if self.remaining_batch_failures > 0:
            self.remaining_batch_failures -= 1
            raise self.error
        for text in texts:
            self._maybe_fail(text)
        return [self.extract(text) for text in texts]


@pytest.fixture
def stub_loader(monkeypatch):
    def install(stub):
        monkeypatch.setattr(
            cli.WeakSupervisionExtractor,
            "load",
            classmethod(lambda _cls, _directory: stub),
        )
        return stub

    return install


def run_extract(args):
    return cli.main(["extract", "--model", "unused", *args])


class TestExitCodes:
    def test_missing_model_is_input_error(self, tmp_path, capsys):
        code = cli.main(
            ["extract", "--model", str(tmp_path / "nope"), "--text", "x"]
        )
        assert code == 2
        assert "cannot load model" in capsys.readouterr().err

    def test_model_error_maps_to_3(self, stub_loader, capsys):
        stub_loader(StubCliExtractor(fail_texts=["BAD"]))
        assert run_extract(["--text", "BAD input"]) == 3
        assert "ModelError" in capsys.readouterr().err

    def test_numerical_error_maps_to_3(self, stub_loader, capsys):
        stub_loader(
            StubCliExtractor(
                fail_texts=["BAD"],
                error=NumericalError("nan in logits", stage="forward"),
            )
        )
        assert run_extract(["--text", "BAD input"]) == 3
        assert "NumericalError" in capsys.readouterr().err

    def test_oversized_input_is_input_error(self, stub_loader, capsys):
        stub_loader(StubCliExtractor())
        code = run_extract(["--text", "x" * (MAX_BLOCK_CHARS + 1)])
        assert code == 2
        assert "InputError" in capsys.readouterr().err

    def test_empty_input_file_is_input_error(
        self, stub_loader, tmp_path, capsys
    ):
        stub_loader(StubCliExtractor())
        source = tmp_path / "empty.txt"
        source.write_text("\n\n")
        assert run_extract(["--input", str(source)]) == 2

    def test_clean_run_exits_zero(self, stub_loader, capsys):
        stub_loader(StubCliExtractor())
        assert run_extract(["--text", "Reduce waste by 20%."]) == 0
        out = capsys.readouterr()
        payload = json.loads(out.out.strip())
        assert payload["details"]
        assert "status" not in payload  # raise mode keeps legacy output
        assert "warning" not in out.err


class TestOnErrorPolicies:
    def input_file(self, tmp_path):
        source = tmp_path / "objectives.txt"
        source.write_text("good one 20%\nBAD apple\nanother good 30%\n")
        return source

    def test_skip_drops_failed_inputs_with_warning(
        self, stub_loader, tmp_path, capsys
    ):
        stub_loader(StubCliExtractor(fail_texts=["BAD"]))
        code = run_extract(
            ["--input", str(self.input_file(tmp_path)), "--on-error", "skip"]
        )
        out = capsys.readouterr()
        assert code == 0
        lines = [json.loads(line) for line in out.out.strip().splitlines()]
        assert [line["objective"] for line in lines] == [
            "good one 20%",
            "another good 30%",
        ]
        assert all(line["status"] == "ok" for line in lines)
        assert "1 input(s) skipped" in out.err

    def test_degrade_emits_flagged_empty_details(
        self, stub_loader, tmp_path, capsys
    ):
        stub_loader(StubCliExtractor(fail_texts=["BAD"]))
        code = run_extract(
            [
                "--input", str(self.input_file(tmp_path)),
                "--on-error", "degrade",
            ]
        )
        out = capsys.readouterr()
        assert code == 0
        lines = [json.loads(line) for line in out.out.strip().splitlines()]
        assert len(lines) == 3  # every input yields a line
        statuses = [line["status"] for line in lines]
        assert statuses == ["ok", "failed", "ok"]
        failed = lines[1]
        assert all(value == "" for value in failed["details"].values())
        assert "1 degraded" in out.err

    def test_max_retries_recovers_flaky_model(
        self, stub_loader, tmp_path, capsys
    ):
        stub = stub_loader(StubCliExtractor(fail_first_n_batches=2))
        code = run_extract(
            [
                "--input", str(self.input_file(tmp_path)),
                "--max-retries", "2",
            ]
        )
        out = capsys.readouterr()
        assert code == 0
        assert stub.remaining_batch_failures == 0
        assert len(out.out.strip().splitlines()) == 3
        assert "warning" not in out.err

    def test_raise_mode_fails_whole_run(self, stub_loader, tmp_path, capsys):
        stub_loader(StubCliExtractor(fail_texts=["BAD"]))
        code = run_extract(["--input", str(self.input_file(tmp_path))])
        assert code == 3
