"""Tests for domain pre-training and its disk cache."""

import numpy as np
import pytest

from repro.models.pretrained import (
    _cache_key,
    build_pretraining_corpus,
    pretrain_for_domain,
)


class TestBuildPretrainingCorpus:
    def test_size_and_content(self):
        blocks = build_pretraining_corpus(seed=0, num_blocks=50)
        assert len(blocks) == 50
        assert all(isinstance(block, str) and block for block in blocks)

    def test_seeded(self):
        assert build_pretraining_corpus(seed=3, num_blocks=20) == (
            build_pretraining_corpus(seed=3, num_blocks=20)
        )


class TestCacheKey:
    def test_distinct_models_distinct_keys(self):
        assert _cache_key("roberta", 0, 100, 50, 32) != _cache_key(
            "bert", 0, 100, 50, 32
        )

    def test_seed_changes_key(self):
        assert _cache_key("roberta", 0, 100, 50, 32) != _cache_key(
            "roberta", 1, 100, 50, 32
        )


@pytest.mark.slow
class TestPretrainForDomain:
    """Domain pretraining (MLM steps + BPE training) — `slow`-marked."""

    def test_capped_run_returns_consistent_pair(self):
        tokenizer, encoder = pretrain_for_domain(
            "roberta",
            seed=0,
            corpus_blocks=40,
            num_merges=60,
            max_len=24,
            cache_dir=None,
            max_steps=2,
        )
        assert encoder.config.vocab_size == len(tokenizer.vocab)
        states = encoder(np.array([[1, 2, 3]]), np.ones((1, 3)))
        assert states.shape[-1] == encoder.config.dim

    def test_distilled_variant(self):
        tokenizer, encoder = pretrain_for_domain(
            "distilbert",
            seed=0,
            corpus_blocks=30,
            num_merges=50,
            max_len=24,
            cache_dir=None,
            max_steps=2,
        )
        assert len(encoder.layers) == 2

    def test_cache_roundtrip(self, tmp_path):
        first = pretrain_for_domain(
            "roberta",
            seed=5,
            corpus_blocks=30,
            num_merges=50,
            max_len=24,
            cache_dir=tmp_path,
            max_steps=None,
        )
        # Second call must hit the cache and reproduce identical weights.
        second = pretrain_for_domain(
            "roberta",
            seed=5,
            corpus_blocks=30,
            num_merges=50,
            max_len=24,
            cache_dir=tmp_path,
        )
        np.testing.assert_allclose(
            first[1].token_embedding.weight.value,
            second[1].token_embedding.weight.value,
        )
        assert first[0].encode(["reduce"]).pieces == (
            second[0].encode(["reduce"]).pieces
        )
