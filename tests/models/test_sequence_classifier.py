"""Tests for the sequence classifier (GoalSpotter's detection model)."""

import numpy as np
import pytest

from repro.models.sequence_classifier import SequenceClassifier
from repro.models.training import FineTuneConfig, fit_sequence_classifier
from repro.nn.encoder import EncoderConfig


@pytest.fixture
def config():
    return EncoderConfig(
        vocab_size=30, dim=16, num_layers=1, num_heads=2, ffn_dim=32,
        max_len=12, dropout=0.0,
    )


class TestSequenceClassifier:
    def test_logit_shape(self, config, rng):
        model = SequenceClassifier(config, num_classes=3, rng=rng)
        logits = model(rng.integers(0, 30, size=(4, 7)), np.ones((4, 7)))
        assert logits.shape == (4, 3)

    def test_invalid_num_classes(self, config, rng):
        with pytest.raises(ValueError):
            SequenceClassifier(config, num_classes=0, rng=rng)

    def test_padding_does_not_change_prediction(self, config, rng):
        model = SequenceClassifier(config, num_classes=2, rng=rng)
        model.eval()
        short = model.predict_proba([[3, 4, 5]])
        padded = model.predict_proba([[3, 4, 5], [3, 4, 5, 6, 7, 8]])
        np.testing.assert_allclose(short[0], padded[0], atol=1e-9)

    def test_learns_token_presence(self, config, rng):
        """Class 1 iff token 7 appears anywhere in the sequence."""
        model = SequenceClassifier(config, num_classes=2, rng=rng)
        seqs, labels = [], []
        for __ in range(80):
            seq = list(rng.integers(8, 30, size=6))
            label = int(rng.random() < 0.5)
            if label:
                seq[int(rng.integers(6))] = 7
            seqs.append(seq)
            labels.append(label)
        fit_sequence_classifier(
            model, seqs, labels,
            FineTuneConfig(epochs=8, learning_rate=2e-3, batch_size=8),
        )
        assert model.predict([[7, 9, 10]])[0] == 1
        assert model.predict([[9, 10, 11]])[0] == 0

    def test_predict_proba_rows_sum_to_one(self, config, rng):
        model = SequenceClassifier(config, num_classes=4, rng=rng)
        probs = model.predict_proba([[1, 2], [3]])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_loss_and_backward_returns_scalar(self, config, rng):
        model = SequenceClassifier(config, num_classes=2, rng=rng)
        loss = model.loss_and_backward(
            rng.integers(0, 30, size=(2, 5)),
            np.ones((2, 5)),
            np.array([0, 1]),
        )
        assert loss > 0
