"""Validation tests for training/extractor configuration."""

import pytest

from repro.core.extractor import ExtractorConfig
from repro.models.training import FineTuneConfig


class TestFineTuneConfig:
    def test_defaults_follow_paper(self):
        config = FineTuneConfig()
        assert config.epochs == 10
        assert config.batch_size == 16
        assert config.optimizer == "adam"

    def test_rejects_bad_epochs(self):
        with pytest.raises(ValueError):
            FineTuneConfig(epochs=0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            FineTuneConfig(batch_size=0)

    def test_rejects_unknown_optimizer(self):
        with pytest.raises(ValueError):
            FineTuneConfig(optimizer="sgd")


class TestExtractorConfig:
    def test_defaults(self):
        config = ExtractorConfig()
        assert config.model == "roberta"
        assert config.matcher == "exact"  # the paper's implementation
        assert config.subword_strategy == "all"
        assert config.constrained_decoding is True

    def test_rejects_empty_fields(self):
        with pytest.raises(ValueError):
            ExtractorConfig(fields=())

    def test_rejects_unknown_matcher(self):
        with pytest.raises(ValueError):
            ExtractorConfig(matcher="psychic")

    def test_rejects_bad_outside_weight(self):
        with pytest.raises(ValueError):
            ExtractorConfig(outside_weight=0.0)

    def test_matcher_factory(self):
        from repro.core.matching import FuzzyMatcher

        config = ExtractorConfig(matcher="fuzzy")
        assert isinstance(config.build_matcher(), FuzzyMatcher)
