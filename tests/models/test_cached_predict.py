"""Cached prediction paths: bitwise identity, dedup, chaos resilience.

The cache contract is absolute: a prediction served from (or through) a
:class:`~repro.runtime.rescache.ResultCache` is bit-for-bit what the
uncached forward would have produced — across corpora, capacities (i.e.
under eviction pressure), warm re-runs, and mid-miss faults.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.sequence_classifier import SequenceClassifier
from repro.models.token_classifier import TokenClassifier
from repro.nn.encoder import EncoderConfig
from repro.runtime import rescache
from repro.runtime.profiling import PerfCounters
from repro.runtime.rescache import ResultCache

pytestmark = pytest.mark.cache

CONFIG = EncoderConfig(
    vocab_size=50, dim=16, num_layers=1, num_heads=2, ffn_dim=32,
    max_len=12, dropout=0.0,
)


@pytest.fixture(scope="module")
def token_model():
    return TokenClassifier(
        CONFIG, num_labels=4, rng=np.random.default_rng(11)
    )


@pytest.fixture(scope="module")
def seq_model():
    return SequenceClassifier(
        CONFIG, num_classes=3, rng=np.random.default_rng(12)
    )


def random_corpus(seed: int, size: int) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    corpus = []
    for __ in range(size):
        length = int(rng.integers(1, 16))  # some sequences exceed max_len
        corpus.append(list(map(int, rng.integers(1, 50, size=length))))
    # Guarantee duplicates: the cache's reason to exist.
    if size >= 4:
        corpus[size // 2] = list(corpus[0])
        corpus[-1] = list(corpus[1])
    return corpus


def assert_bitwise(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(expected, actual):
        np.testing.assert_array_equal(left, right)


class TestTokenClassifierCache:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        size=st.integers(1, 24),
        capacity=st.integers(1, 32),
    )
    def test_cached_equals_uncached_bitwise(
        self, token_model, seed, size, capacity
    ):
        """The property: any corpus, any capacity, cold and warm."""
        corpus = random_corpus(seed, size)
        baseline = token_model.predict_logits(corpus)
        cache = ResultCache(capacity=capacity, seed=seed)
        cold = token_model.predict_logits(corpus, cache=cache)
        warm = token_model.predict_logits(corpus, cache=cache)
        assert_bitwise(baseline, cold)
        assert_bitwise(baseline, warm)

    def test_intra_call_dedup_computes_once(self, token_model):
        corpus = [[7, 8, 9]] * 6
        counters = PerfCounters()
        cache = ResultCache(capacity=8)
        outputs = token_model.predict_logits(
            corpus, counters=counters, cache=cache
        )
        values = counters.snapshot()
        # One microbatch of one sequence; five fan-out copies.
        assert values["microbatches"] == 1
        assert values[rescache.MISSES] == 6
        assert values[rescache.CACHED_TOKENS] == 15  # 5 copies * 3 tokens
        assert cache.stats.insertions == 1
        assert_bitwise([outputs[0]] * 6, outputs)

    def test_warm_call_counts_bypass(self, token_model):
        corpus = random_corpus(3, 5)
        cache = ResultCache(capacity=16)
        token_model.predict_logits(corpus, cache=cache)
        counters = PerfCounters()
        token_model.predict_logits(corpus, cache=cache, counters=counters)
        values = counters.snapshot()
        assert values[rescache.BYPASSES] == 1
        assert values[rescache.HITS] == 5
        assert values.get(rescache.MISSES, 0) == 0
        assert values["microbatches"] == 0
        # Cached tokens still count as served work.
        assert values["total_tokens"] == values[rescache.CACHED_TOKENS] > 0

    def test_weight_change_misses(self, token_model):
        """A byte-level weight change must key differently — no stale
        records after a hot-swap/resume."""
        corpus = [[1, 2, 3], [4, 5]]
        cache = ResultCache(capacity=8)
        before = token_model.predict_logits(corpus, cache=cache)
        state = token_model.state_dict()
        head = state["head.weight"].copy()
        head.flat[0] = np.nextafter(head.flat[0], np.inf)  # one-ulp flip
        state["head.weight"] = head
        token_model.load_state_dict(state)
        try:
            counters = PerfCounters()
            after = token_model.predict_logits(
                corpus, cache=cache, counters=counters
            )
            assert counters.snapshot()[rescache.MISSES] == 2
            assert not np.array_equal(before[0], after[0])
            # The swapped-weight results are cached under their own key.
            warm = token_model.predict_logits(corpus, cache=cache)
            assert_bitwise(after, warm)
        finally:
            state["head.weight"] = head  # leave the module consistent
            token_model.load_state_dict(state)

    @pytest.mark.chaos
    def test_fault_mid_miss_does_not_poison(self, token_model, monkeypatch):
        """A forward crash while filling misses leaves no wrong entries:
        the retry and an uncached run stay bitwise-identical."""
        corpus = random_corpus(9, 12)
        baseline = token_model.predict_logits(corpus)
        cache = ResultCache(capacity=32)
        real_forward = type(token_model).forward
        calls = {"count": 0}

        def flaky_forward(self, ids, mask):
            calls["count"] += 1
            if calls["count"] == 2:
                raise RuntimeError("injected fault mid-miss")
            return real_forward(self, ids, mask)

        monkeypatch.setattr(type(token_model), "forward", flaky_forward)
        with pytest.raises(RuntimeError, match="injected fault"):
            token_model.predict_logits(corpus, batch_size=2, cache=cache)
        monkeypatch.setattr(type(token_model), "forward", real_forward)
        # Whatever the crashed call managed to insert is complete and
        # correct; the retry serves/fills the rest.
        retry = token_model.predict_logits(corpus, cache=cache)
        warm = token_model.predict_logits(corpus, cache=cache)
        assert_bitwise(baseline, retry)
        assert_bitwise(baseline, warm)


class TestSequenceClassifierCache:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        size=st.integers(1, 24),
        capacity=st.integers(1, 32),
    )
    def test_cached_equals_uncached_bitwise(
        self, seq_model, seed, size, capacity
    ):
        corpus = random_corpus(seed, size)
        baseline = seq_model.predict_proba(corpus)
        cache = ResultCache(capacity=capacity, seed=seed)
        cold = seq_model.predict_proba(corpus, cache=cache)
        warm = seq_model.predict_proba(corpus, cache=cache)
        np.testing.assert_array_equal(baseline, cold)
        np.testing.assert_array_equal(baseline, warm)

    def test_counters_roundtrip(self, seq_model):
        corpus = random_corpus(5, 8)
        cache = ResultCache(capacity=16)
        counters = PerfCounters()
        seq_model.predict_proba(corpus, cache=cache, counters=counters)
        cold = counters.snapshot()
        assert cold[rescache.MISSES] == 8
        assert cold[rescache.HITS] + cold[rescache.MISSES] == 8
        seq_model.predict_proba(corpus, cache=cache, counters=counters)
        warm = counters.snapshot()
        assert warm[rescache.HITS] == 8
        assert warm[rescache.BYPASSES] == 1

    def test_empty_corpus_short_circuits(self, seq_model):
        cache = ResultCache(capacity=4)
        out = seq_model.predict_proba([], cache=cache)
        assert out.shape == (0, 3)
        assert cache.stats.lookups == 0
