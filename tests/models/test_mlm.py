"""Tests for MLM corruption and pre-training."""

import numpy as np
import pytest

from repro.models.mlm import (
    MaskedLanguageModel,
    apply_mlm_corruption,
    pretrain_encoder,
    pretrain_mlm,
)
from repro.models.zoo import get_model_spec
from repro.nn.encoder import EncoderConfig, TransformerEncoder
from repro.nn.loss import IGNORE_INDEX
from repro.text.vocab import Vocabulary


@pytest.fixture
def vocab():
    return Vocabulary([f"tok{i}" for i in range(30)])


class TestApplyMlmCorruption:
    def test_targets_only_at_selected_positions(self, vocab, rng):
        ids = rng.integers(5, 35, size=(4, 10))
        mask = np.ones((4, 10))
        corrupted, targets = apply_mlm_corruption(ids, mask, vocab, rng)
        selected = targets != IGNORE_INDEX
        # Original ids preserved as targets where selected.
        np.testing.assert_array_equal(targets[selected], ids[selected])
        # Non-selected positions are untouched in the input.
        np.testing.assert_array_equal(corrupted[~selected], ids[~selected])

    def test_padding_never_selected(self, vocab, rng):
        ids = rng.integers(5, 35, size=(2, 6))
        mask = np.zeros((2, 6))
        mask[:, :2] = 1
        __, targets = apply_mlm_corruption(ids, mask, vocab, rng)
        assert (targets[:, 2:] == IGNORE_INDEX).all()

    def test_at_least_one_target(self, vocab, rng):
        ids = rng.integers(5, 35, size=(1, 3))
        mask = np.ones((1, 3))
        # Probability 0 would select nothing; the guard must pick one.
        __, targets = apply_mlm_corruption(ids, mask, vocab, rng, mask_prob=0.0)
        assert (targets != IGNORE_INDEX).sum() == 1

    def test_mask_token_used(self, vocab, rng):
        ids = rng.integers(5, 35, size=(8, 20))
        mask = np.ones((8, 20))
        corrupted, targets = apply_mlm_corruption(
            ids, mask, vocab, rng, mask_prob=0.5
        )
        assert (corrupted == vocab.mask_id).sum() > 0


@pytest.mark.slow
class TestPretraining:
    """MLM training loops — `slow`-marked, deselected in tier 1."""

    def _sequences(self, rng, count=30):
        return [list(rng.integers(5, 30, size=8)) for __ in range(count)]

    def test_pretrain_mlm_keeps_head(self, vocab, rng):
        model = pretrain_mlm(
            get_model_spec("roberta"),
            self._sequences(rng),
            vocab,
            rng,
            max_len=12,
            max_steps=3,
        )
        assert isinstance(model, MaskedLanguageModel)
        logits = model(np.array([[5, 6, 7]]), np.ones((1, 3)))
        assert logits.shape == (1, 3, len(vocab))

    def test_pretrain_encoder_returns_encoder(self, vocab, rng):
        encoder = pretrain_encoder(
            get_model_spec("bert"),
            self._sequences(rng),
            vocab,
            rng,
            max_len=12,
            max_steps=3,
        )
        assert isinstance(encoder, TransformerEncoder)

    def test_max_steps_caps_work(self, vocab, rng):
        # Must finish fast even with a large epoch budget.
        pretrain_encoder(
            get_model_spec("roberta"),
            self._sequences(rng, count=100),
            vocab,
            rng,
            max_len=12,
            max_steps=2,
        )

    def test_mlm_loss_decreases(self, vocab, rng):
        """A few hundred steps on a tiny corpus should reduce MLM loss."""
        spec = get_model_spec("roberta")
        sequences = self._sequences(rng, count=20)
        config = spec.encoder_config(len(vocab), 12)
        model = MaskedLanguageModel(TransformerEncoder(config, rng), rng)
        from repro.nn.batching import pad_sequences
        from repro.nn.optim import AdamW

        optimizer = AdamW(model.parameters(), lr=1e-3)
        ids, mask = pad_sequences(sequences)
        corrupted, targets = apply_mlm_corruption(ids, mask, vocab, rng)
        first = model.loss_and_backward(corrupted, mask, targets)
        for __ in range(30):
            model.zero_grad()
            loss = model.loss_and_backward(corrupted, mask, targets)
            optimizer.step()
        assert loss < first
