"""Tests for the model zoo specs."""

import pytest

from repro.models.zoo import MODEL_ZOO, get_model_spec


class TestModelZoo:
    def test_paper_variants_present(self):
        """Figure 4 compares RoBERTa, BERT, and their distilled versions."""
        assert set(MODEL_ZOO) == {
            "roberta", "bert", "distilroberta", "distilbert",
        }

    def test_distilled_are_shallower(self):
        assert (
            MODEL_ZOO["distilroberta"].num_layers
            < MODEL_ZOO["roberta"].num_layers
        )
        assert MODEL_ZOO["distilbert"].num_layers < MODEL_ZOO["bert"].num_layers

    def test_distilled_have_teachers(self):
        assert MODEL_ZOO["distilroberta"].teacher == "roberta"
        assert MODEL_ZOO["distilbert"].teacher == "bert"
        assert MODEL_ZOO["roberta"].teacher is None

    def test_roberta_uses_dynamic_masking(self):
        assert MODEL_ZOO["roberta"].pretrain.dynamic_masking
        assert not MODEL_ZOO["bert"].pretrain.dynamic_masking

    def test_roberta_has_larger_pretraining_budget(self):
        assert (
            MODEL_ZOO["roberta"].pretrain.epochs
            >= MODEL_ZOO["bert"].pretrain.epochs
        )

    def test_encoder_config_instantiation(self):
        config = MODEL_ZOO["roberta"].encoder_config(
            vocab_size=500, max_len=64
        )
        assert config.vocab_size == 500
        assert config.max_len == 64
        assert config.dim == MODEL_ZOO["roberta"].dim

    def test_unknown_model_raises_with_names(self):
        with pytest.raises(KeyError, match="roberta"):
            get_model_spec("gpt4")
