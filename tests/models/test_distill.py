"""Tests for knowledge distillation."""

import numpy as np
import pytest

from repro.models.distill import _soft_cross_entropy, distill_encoder
from repro.models.mlm import pretrain_mlm
from repro.models.zoo import get_model_spec
from repro.nn.functional import softmax
from repro.text.vocab import Vocabulary


@pytest.fixture
def vocab():
    return Vocabulary([f"tok{i}" for i in range(20)])


class TestSoftCrossEntropy:
    def test_zero_when_distributions_match(self, rng):
        logits = rng.normal(size=(1, 3, 4))
        teacher = softmax(logits / 2.0, axis=-1)
        position_mask = np.ones((1, 3))
        loss, __ = _soft_cross_entropy(logits, teacher, position_mask, 2.0)
        # Cross-entropy equals entropy when p == q; it is minimal there.
        mismatched = softmax(rng.normal(size=(1, 3, 4)), axis=-1)
        worse, __ = _soft_cross_entropy(logits, mismatched, position_mask, 2.0)
        assert loss < worse

    def test_masked_positions_no_gradient(self, rng):
        logits = rng.normal(size=(1, 2, 4))
        teacher = softmax(rng.normal(size=(1, 2, 4)), axis=-1)
        position_mask = np.array([[1.0, 0.0]])
        __, dlogits = _soft_cross_entropy(logits, teacher, position_mask, 2.0)
        np.testing.assert_array_equal(dlogits[0, 1], 0.0)

    def test_empty_mask(self, rng):
        logits = rng.normal(size=(1, 2, 4))
        teacher = softmax(logits, axis=-1)
        loss, dlogits = _soft_cross_entropy(
            logits, teacher, np.zeros((1, 2)), 2.0
        )
        assert loss == 0.0
        np.testing.assert_array_equal(dlogits, 0.0)


@pytest.mark.slow
class TestDistillEncoder:
    """Teacher pretraining + distillation loops — `slow`-marked."""

    def test_student_is_shallower(self, vocab, rng):
        sequences = [list(rng.integers(5, 20, size=6)) for __ in range(20)]
        teacher = pretrain_mlm(
            get_model_spec("roberta"), sequences, vocab, rng,
            max_len=10, max_steps=2,
        )
        student = distill_encoder(
            teacher, get_model_spec("distilroberta"), sequences, vocab, rng,
            max_len=10, max_steps=2,
        )
        assert len(student.layers) < len(teacher.encoder.layers)

    def test_student_usable_downstream(self, vocab, rng):
        sequences = [list(rng.integers(5, 20, size=6)) for __ in range(10)]
        teacher = pretrain_mlm(
            get_model_spec("bert"), sequences, vocab, rng,
            max_len=10, max_steps=2,
        )
        student = distill_encoder(
            teacher, get_model_spec("distilbert"), sequences, vocab, rng,
            max_len=10, max_steps=2,
        )
        states = student(np.array([[5, 6]]), np.ones((1, 2)))
        assert states.shape == (1, 2, student.config.dim)
