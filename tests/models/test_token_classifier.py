"""Tests for the token classifier model."""

import numpy as np
import pytest

from repro.models.token_classifier import TokenClassifier
from repro.models.training import FineTuneConfig, fit_token_classifier
from repro.nn.encoder import EncoderConfig
from repro.nn.loss import IGNORE_INDEX


@pytest.fixture
def config():
    return EncoderConfig(
        vocab_size=40, dim=16, num_layers=1, num_heads=2, ffn_dim=32,
        max_len=16, dropout=0.0,
    )


class TestTokenClassifier:
    def test_logit_shape(self, config, rng):
        model = TokenClassifier(config, num_labels=5, rng=rng)
        logits = model(rng.integers(0, 40, size=(2, 6)), np.ones((2, 6)))
        assert logits.shape == (2, 6, 5)

    def test_invalid_num_labels(self, config, rng):
        with pytest.raises(ValueError):
            TokenClassifier(config, num_labels=0, rng=rng)

    def test_loss_decreases(self, config, rng):
        model = TokenClassifier(config, num_labels=2, rng=rng)
        seqs = [list(rng.integers(5, 40, size=8)) for __ in range(40)]
        labels = [[int(t % 2) for t in s] for s in seqs]
        history = fit_token_classifier(
            model, seqs, labels,
            FineTuneConfig(epochs=4, learning_rate=2e-3, batch_size=8),
        )
        assert history[-1] < history[0]

    def test_predict_returns_per_sequence_lengths(self, config, rng):
        model = TokenClassifier(config, num_labels=3, rng=rng)
        seqs = [[1, 2, 3], [4, 5], [6]]
        predictions = model.predict(seqs)
        assert [len(p) for p in predictions] == [3, 2, 1]

    def test_predict_truncates_to_max_len(self, config, rng):
        model = TokenClassifier(config, num_labels=3, rng=rng)
        predictions = model.predict([list(range(1, 30))])
        assert len(predictions[0]) == config.max_len

    def test_ignore_index_excluded_from_loss(self, config, rng):
        model = TokenClassifier(config, num_labels=2, rng=rng)
        ids = rng.integers(0, 40, size=(1, 4))
        mask = np.ones((1, 4))
        all_ignored = np.full((1, 4), IGNORE_INDEX)
        loss = model.loss_and_backward(ids, mask, all_ignored)
        assert loss == 0.0

    def test_learns_positional_rule(self, config, rng):
        """Label depends on position only — requires position embeddings."""
        model = TokenClassifier(config, num_labels=2, rng=rng)
        seqs = [list(rng.integers(5, 40, size=6)) for __ in range(60)]
        labels = [[1 if i < 2 else 0 for i in range(6)] for __ in seqs]
        fit_token_classifier(
            model, seqs, labels,
            FineTuneConfig(epochs=6, learning_rate=2e-3, batch_size=8),
        )
        prediction = model.predict([list(rng.integers(5, 40, size=6))])[0]
        assert list(prediction) == [1, 1, 0, 0, 0, 0]
