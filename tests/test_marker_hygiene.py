"""Every ``pytest.mark.<name>`` in the repo must be registered.

``pyproject.toml`` is the single source of truth for custom markers
(tier selection like ``-m 'not slow'`` silently matches nothing when a
marker is misspelled or unregistered, so hygiene here is load-bearing).
"""

import re
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markers pytest itself (or a bundled plugin) defines.
BUILTIN_MARKERS = {
    "filterwarnings",
    "parametrize",
    "skip",
    "skipif",
    "usefixtures",
    "xfail",
}

MARK_PATTERN = re.compile(r"pytest\.mark\.([A-Za-z_][A-Za-z0-9_]*)")


def registered_markers() -> set[str]:
    with open(REPO_ROOT / "pyproject.toml", "rb") as handle:
        config = tomllib.load(handle)
    lines = config["tool"]["pytest"]["ini_options"]["markers"]
    return {line.split(":", 1)[0].strip() for line in lines}


def used_markers() -> dict[str, set[str]]:
    """Marker name -> the files that use it, across tests and benches."""
    usages: dict[str, set[str]] = {}
    for directory in ("tests", "benchmarks"):
        for path in (REPO_ROOT / directory).rglob("*.py"):
            text = path.read_text(encoding="utf-8")
            for name in MARK_PATTERN.findall(text):
                usages.setdefault(name, set()).add(
                    str(path.relative_to(REPO_ROOT))
                )
    return usages


class TestMarkerHygiene:
    def test_every_used_marker_is_registered(self):
        registered = registered_markers() | BUILTIN_MARKERS
        unregistered = {
            name: sorted(files)
            for name, files in used_markers().items()
            if name not in registered
        }
        assert not unregistered, (
            f"unregistered pytest markers {unregistered}; add them to "
            f"[tool.pytest.ini_options] markers in pyproject.toml"
        )

    def test_every_registered_marker_is_used(self):
        """Dead registrations hide typos just as well as missing ones."""
        unused = registered_markers() - set(used_markers())
        assert not unused, f"registered but never used: {sorted(unused)}"

    def test_new_subsystem_markers_present(self):
        registered = registered_markers()
        assert {"cache", "quant", "fleet", "kg", "tasks"} <= registered

    def test_marker_lines_have_descriptions(self):
        with open(REPO_ROOT / "pyproject.toml", "rb") as handle:
            config = tomllib.load(handle)
        for line in config["tool"]["pytest"]["ini_options"]["markers"]:
            assert ":" in line and line.split(":", 1)[1].strip(), (
                f"marker {line!r} has no description"
            )

    def test_slow_marker_is_deselected_by_default(self):
        with open(REPO_ROOT / "pyproject.toml", "rb") as handle:
            config = tomllib.load(handle)
        addopts = config["tool"]["pytest"]["ini_options"]["addopts"]
        assert "not slow" in addopts


@pytest.mark.smoke
def test_hygiene_checks_run_under_default_tier():
    """This module itself must stay in tier 1 (not slow-marked)."""
    assert True
