"""Registry edge cases: typed errors, lazy imports, CLI exit codes."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.runtime.errors import InputError, TaskRegistryError
from repro.tasks import Task, get_task, register_task, task_names
from repro.tasks.registry import _REGISTRY

pytestmark = pytest.mark.tasks

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class TestLookup:
    def test_unknown_task_raises_typed_error(self):
        with pytest.raises(TaskRegistryError) as excinfo:
            get_task("no-such-task")
        # the message lists what IS available
        assert "goalspotter" in str(excinfo.value)

    def test_registry_error_is_an_input_error(self):
        # -> CLI exit code 2 via the shared taxonomy mapping
        assert issubclass(TaskRegistryError, InputError)

    def test_task_names_cover_all_builtins(self):
        assert {
            "goalspotter",
            "taxonomy-kpi",
            "netzero-target",
            "initiative-sentence",
        } <= set(task_names())


class TestRegistration:
    def test_duplicate_name_raises(self):
        class First(Task):
            name = "test-dup"
            kind = "classification"
            description = "first claimant"
            fields = ("Label", "Score")
            labels = ("a", "b")
            default_size = 4

            def build_dataset(self, seed=0, size=None): ...
            def build_model(self, profile="default", **overrides): ...
            def load_model(self, directory): ...
            def weak_label(self, dataset): ...
            def evaluate(self, model, dataset): ...

        register_task(First)
        try:
            with pytest.raises(TaskRegistryError, match="already registered"):
                register_task(type("Second", (First,), {}))
        finally:
            _REGISTRY.pop("test-dup", None)

    def test_builtin_names_are_reserved(self):
        # even before the builtin module is imported, its name is owned
        with pytest.raises(TaskRegistryError, match="reserved"):

            @register_task
            class Squatter(Task):
                name = "goalspotter"
                kind = "extraction"
                description = "imposter"
                fields = ("Action",)
                default_size = 4

                def build_dataset(self, seed=0, size=None): ...
                def build_model(self, profile="default", **overrides): ...
                def load_model(self, directory): ...
                def weak_label(self, dataset): ...
                def evaluate(self, model, dataset): ...

    def test_third_party_registration_round_trips(self):
        @register_task
        class Custom(Task):
            name = "test-custom-task"
            kind = "extraction"
            description = "registered by the test suite"
            fields = ("Thing",)
            default_size = 4

            def build_dataset(self, seed=0, size=None): ...
            def build_model(self, profile="default", **overrides): ...
            def load_model(self, directory): ...
            def weak_label(self, dataset): ...
            def evaluate(self, model, dataset): ...

        try:
            assert "test-custom-task" in task_names()
            assert isinstance(get_task("test-custom-task"), Custom)
        finally:
            _REGISTRY.pop("test-custom-task", None)

    @pytest.mark.parametrize(
        "attrs,match",
        [
            ({"name": ""}, "non-empty"),
            ({"kind": "regression"}, "unknown kind"),
            ({"fields": ()}, "no output fields"),
            (
                {"kind": "classification", "fields": ("Label",), "labels": ("x",)},
                ">= 2 labels",
            ),
            ({"default_size": 0}, "positive default_size"),
        ],
    )
    def test_structural_validation(self, attrs, match):
        namespace = {
            "name": "test-invalid",
            "kind": "extraction",
            "description": "structurally broken",
            "fields": ("Thing",),
            "labels": (),
            "default_size": 4,
            **attrs,
        }
        for hook in (
            "build_dataset",
            "build_model",
            "load_model",
            "weak_label",
            "evaluate",
        ):
            namespace[hook] = lambda self, *a, **k: None
        Broken = type("Broken", (Task,), namespace)
        with pytest.raises(TaskRegistryError, match=match):
            register_task(Broken)
        assert "test-invalid" not in _REGISTRY


class TestCli:
    def test_unknown_task_exits_2(self, capsys, tmp_path):
        code = main(
            ["train", "--task", "bogus", "--out", str(tmp_path / "model")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "TaskRegistryError" in err
        assert "bogus" in err

    def test_unknown_task_on_extract_exits_2(self, capsys, tmp_path):
        code = main(
            [
                "extract",
                "--task",
                "bogus",
                "--model",
                str(tmp_path / "missing"),
                "--text",
                "x",
            ]
        )
        assert code == 2
        assert "TaskRegistryError" in capsys.readouterr().err

    def test_tasks_list_names_every_task(self, capsys):
        assert main(["tasks", "list"]) == 0
        out = capsys.readouterr().out
        for name in task_names():
            assert name in out


class TestLazyImports:
    """``import repro`` must not pay for any task implementation."""

    def _run(self, code: str) -> str:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.check_output(
            [sys.executable, "-c", code], env=env, text=True
        )

    def test_import_repro_loads_no_task_impls(self):
        out = self._run(
            "import sys, repro; "
            "print(sorted(m for m in sys.modules "
            "if m.startswith('repro.tasks')))"
        )
        loaded = set(eval(out))
        assert loaded == {
            "repro.tasks",
            "repro.tasks.base",
            "repro.tasks.registry",
            "repro.tasks.weak",
        }, loaded

    def test_get_task_imports_only_the_requested_module(self):
        out = self._run(
            "import sys; from repro.tasks import get_task; "
            "get_task('netzero-target'); "
            "print(sorted(m for m in sys.modules "
            "if m.startswith('repro.tasks.') "
            "and m.split('.')[-1] in "
            "('goalspotter', 'taxonomy', 'netzero', 'initiative')))"
        )
        assert eval(out) == ["repro.tasks.netzero"]
