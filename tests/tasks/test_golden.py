"""Frozen golden fixtures, one per registered task.

Each fixture pins the exact output rows (and eval metrics) the task's
golden-recipe model produces on its pinned eval slice. Scores are
``repr`` strings, so string equality here is bitwise equality of the
underlying floats. Regenerate deliberately with::

    pytest tests/tasks/test_golden.py --update-golden

and review the diff before committing.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from tests.tasks.conftest import GOLDEN_DIR

pytestmark = [pytest.mark.tasks, pytest.mark.golden]


def _payload(trained) -> dict:
    return {
        "task": trained.task.name,
        "kind": trained.task.kind,
        "fields": list(trained.task.fields),
        "recipe": dataclasses.asdict(trained.recipe),
        "rows": [
            {"text": text, "details": row}
            for text, row in zip(trained.texts, trained.rows)
        ],
        "metrics": trained.task.evaluate(trained.model, trained.eval_dataset),
    }


def test_golden_fixture(trained, update_golden):
    path = GOLDEN_DIR / f"task_{trained.task.name}.json"
    payload = _payload(trained)
    if update_golden:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        pytest.skip(f"rewrote {path}")
    assert path.exists(), (
        f"{path} is missing; generate it with --update-golden"
    )
    with open(path, encoding="utf-8") as handle:
        frozen = json.load(handle)
    assert payload == frozen, (
        f"golden fixture drift for task {trained.task.name!r}; if the "
        "change is intentional, regenerate with --update-golden"
    )
