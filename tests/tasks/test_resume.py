"""Checkpoint-resume equivalence, parametrized over the registry.

Every task's training path must survive a mid-run crash: a run killed at
an optimizer step and resumed from the latest durable checkpoint ends
with weights bitwise-identical to an uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.errors import ReproError
from repro.runtime.resilience import FaultInjector, FaultSpec

pytestmark = [pytest.mark.tasks, pytest.mark.checkpoint]

#: Small enough to train three times per task, large enough for several
#: optimizer steps at the tiny profile's batch size of 8.
TRAIN_SIZE = 24
KILL_AT_STEP = 3


def _state(model):
    return model.backend.model.state_dict()


def _assert_states_equal(actual, expected):
    assert sorted(actual) == sorted(expected)
    for name in expected:
        assert actual[name].tobytes() == expected[name].tobytes(), name


def test_resume_equals_uninterrupted(task, tmp_path):
    recipe = task.golden_recipe()
    train = task.build_dataset(seed=recipe.train_seed, size=TRAIN_SIZE)

    baseline = task.build_model(recipe.profile).fit(train)

    checkpoint_dir = tmp_path / "ckpt"
    injector = FaultInjector(
        [
            FaultSpec(
                stage="train_step", error="model", nth_calls=(KILL_AT_STEP,)
            )
        ],
        seed=1,
    )
    interrupted = task.build_model(recipe.profile)
    with pytest.raises(ReproError):
        interrupted.fit(
            train,
            checkpoint=CheckpointManager(
                checkpoint_dir, every=1, fault_injector=injector
            ),
        )

    resumed = task.build_model(recipe.profile)
    manager = CheckpointManager(checkpoint_dir, every=1)
    resumed.fit(train, checkpoint=manager)
    assert manager.resumed_from is not None

    _assert_states_equal(_state(resumed), _state(baseline))
