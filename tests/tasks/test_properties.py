"""Property-based invariants over every task's dataset generator.

Hypothesis drives the seed; the properties are the ones the conformance
and golden suites silently rely on: seed determinism, verbatim-substring
details for extraction corpora (Algorithm 1's precondition), and
closed-world gold labels for classification corpora.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import KIND_CLASSIFICATION, KIND_EXTRACTION, get_task, task_names

pytestmark = pytest.mark.tasks

SIZE = 16


@pytest.mark.parametrize("name", sorted(task_names()))
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_same_seed_same_dataset(name, seed):
    task = get_task(name)
    first = task.build_dataset(seed=seed, size=SIZE)
    second = task.build_dataset(seed=seed, size=SIZE)
    assert [(o.text, o.details) for o in first.objectives] == [
        (o.text, o.details) for o in second.objectives
    ]


@pytest.mark.parametrize(
    "name",
    [n for n in sorted(task_names()) if get_task(n).kind == KIND_EXTRACTION],
)
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_extraction_details_are_verbatim_substrings(name, seed):
    task = get_task(name)
    dataset = task.build_dataset(seed=seed, size=SIZE)
    for objective in dataset.objectives:
        for field, value in objective.details.items():
            assert field in task.fields
            if value:
                # gold values may be case-normalized (e.g. a
                # sentence-initial "Support" annotated as "support");
                # Algorithm 1's matcher tokenizes case-insensitively.
                assert value.lower() in objective.text.lower(), (
                    field,
                    value,
                    objective.text,
                )


@pytest.mark.parametrize(
    "name",
    [
        n
        for n in sorted(task_names())
        if get_task(n).kind == KIND_CLASSIFICATION
    ],
)
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_classification_gold_labels_are_closed_world(name, seed):
    task = get_task(name)
    dataset = task.build_dataset(seed=seed, size=SIZE)
    for objective in dataset.objectives:
        assert objective.details[task.label_field] in task.labels
