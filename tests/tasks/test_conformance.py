"""Cross-task conformance: every registered task obeys the substrate's
contracts.

These tests are parametrized over the whole registry (the session-scoped
``task`` fixture), so registering a new task automatically puts it under
the same gate as GoalSpotter: bitwise batching invariance, bitwise
multiprocess parallelism, bitwise cache hits, degradation-ladder
behavior under injected faults, atomic save/load round-trips, and
serving-engine equivalence.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.runtime.errors import InputError, ReproError
from repro.runtime.resilience import FaultInjector, FaultSpec

pytestmark = pytest.mark.tasks


class TestBitwiseContracts:
    def test_batched_equals_sequential(self, trained):
        sequential = [trained.model.run_batch([t])[0] for t in trained.texts]
        assert sequential == trained.rows

    @pytest.mark.parallel
    def test_parallel_workers_bitwise(self, trained):
        for workers in (1, 2):
            rows = trained.model.run_batch_parallel(
                trained.texts, workers=workers, num_shards=2
            )
            assert rows == trained.rows, f"workers={workers}"

    @pytest.mark.cache
    def test_cache_hit_equals_recompute(self, trained):
        backend = trained.model.backend
        original = backend.config
        try:
            backend.config = dataclasses.replace(
                original, result_cache_capacity=64
            )
            first = trained.model.run_batch(trained.texts)
            second = trained.model.run_batch(trained.texts)
            assert first == trained.rows
            assert second == trained.rows
            stats = backend.last_run_stats.as_dict()
            assert stats["result_cache_hits"] == len(trained.texts)
        finally:
            backend.config = original

    def test_empty_input(self, trained):
        assert trained.model.run_batch([]) == []


class TestDegradationLadder:
    @pytest.mark.chaos
    def test_poisoned_batch_isolates_one_text(self, trained):
        model = trained.model
        # Call 1 kills the optimistic batch, call 2 kills text 0's
        # isolation retry; every other text must come back bitwise-clean.
        model.fault_injector = FaultInjector(
            [FaultSpec(stage="forward", error="model", nth_calls=(1, 2))],
            seed=11,
        )
        try:
            results = model.run_resilient(trained.texts, on_error="degrade")
        finally:
            model.fault_injector = None
        statuses = [status for __, status in results]
        assert statuses[0] == "degraded"
        assert set(statuses[1:]) == {"ok"}
        assert results[0][0] == model.empty_row()
        assert [row for row, __ in results][1:] == trained.rows[1:]

    @pytest.mark.chaos
    def test_skip_policy_drops_the_failed_text(self, trained):
        model = trained.model
        model.fault_injector = FaultInjector(
            [FaultSpec(stage="forward", error="model", nth_calls=(1, 2))],
            seed=11,
        )
        try:
            results = model.run_resilient(trained.texts, on_error="skip")
        finally:
            model.fault_injector = None
        assert [status for __, status in results][0] == "skipped"
        assert [row for row, __ in results][1:] == trained.rows[1:]

    @pytest.mark.chaos
    def test_raise_policy_propagates(self, trained):
        model = trained.model
        model.fault_injector = FaultInjector(
            [FaultSpec(stage="forward", error="model", nth_calls=(1,))],
            seed=11,
        )
        try:
            with pytest.raises(ReproError):
                model.run_resilient(trained.texts, on_error="raise")
        finally:
            model.fault_injector = None

    def test_unknown_policy_is_an_input_error(self, trained):
        with pytest.raises(InputError):
            trained.model.run_resilient(trained.texts, on_error="explode")


class TestPersistence:
    def test_save_load_round_trip_is_bitwise(self, trained, tmp_path):
        target = tmp_path / "model"
        trained.model.save(target)
        loaded = trained.task.load_model(target)
        assert loaded.run_batch(trained.texts) == trained.rows

    def test_evaluate_returns_finite_metrics(self, trained):
        metrics = trained.task.evaluate(trained.model, trained.eval_dataset)
        assert metrics, "metric dict must not be empty"
        for name, value in metrics.items():
            assert 0.0 <= value <= 1.0, (name, value)


@pytest.mark.serve
class TestServing:
    def test_engine_matches_direct_inference(self, trained):
        model = trained.model
        with model.serving_engine() as engine:
            future = engine.submit(kind=model.serving_kind, texts=trained.texts)
            result = future.result(timeout=60)
        assert result.status == "ok"
        if model.serving_kind == "detect":
            served = np.asarray(list(result.values))
            direct = model.predict_proba(trained.texts)
            assert served.tobytes() == direct.tobytes()
        else:
            assert list(result.values) == trained.rows

    @pytest.mark.fleet
    def test_fleet_router_matches_direct_inference(self, trained):
        model = trained.model
        with model.fleet_router() as router:
            future = router.submit(kind=model.serving_kind, texts=trained.texts)
            result = future.result(timeout=60)
        assert result.status == "ok"
        if model.serving_kind == "detect":
            served = np.asarray(list(result.values))
            direct = model.predict_proba(trained.texts)
            assert served.tobytes() == direct.tobytes()
        else:
            assert list(result.values) == trained.rows
