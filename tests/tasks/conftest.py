"""Shared fixtures for the cross-task conformance suite.

One trained model per registered task, built from the task's pinned
golden recipe and shared session-wide: the conformance, golden, and
serving tests all exercise the *same* fitted weights, so a contract
violation in any of them points at the runtime, not at training noise.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.tasks import get_task, task_names

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


@dataclasses.dataclass
class TrainedTask:
    """A task, its recipe-trained model, and the recipe's eval slice."""

    task: object
    recipe: object
    model: object
    eval_dataset: object
    texts: list[str]
    rows: list[dict[str, str]]


@pytest.fixture(scope="session", params=sorted(task_names()))
def task(request):
    """Every registered task, one param each — the suite's fan-out axis."""
    return get_task(request.param)


@pytest.fixture(scope="session")
def trained(task) -> TrainedTask:
    """The task's golden-recipe model plus its frozen eval rows."""
    recipe = task.golden_recipe()
    train = task.build_dataset(seed=recipe.train_seed, size=recipe.train_size)
    model = task.build_model(recipe.profile).fit(train)
    eval_dataset = task.build_dataset(
        seed=recipe.eval_seed, size=recipe.eval_size
    )
    texts = [objective.text for objective in eval_dataset.objectives]
    return TrainedTask(
        task=task,
        recipe=recipe,
        model=model,
        eval_dataset=eval_dataset,
        texts=texts,
        rows=model.run_batch(texts),
    )
