"""Durable corpus runs end-to-end (DESIGN §6i).

The tentpole guarantee under test: a journaled run killed at *any*
journal boundary — or any random storm of boundaries — and resumed
produces output bitwise-identical to an uninterrupted run, sequentially
and under ``workers=2``, across registered tasks of both kinds.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.base import DetailExtractor
from repro.datasets.reports import Page, SustainabilityReport, TextBlock
from repro.goalspotter.pipeline import GoalSpotter
from repro.runtime.errors import ReproError
from repro.runtime.resilience import FaultInjector, FaultSpec
from repro.runtime.supervisor import run_durable_reports, run_durable_rows
from repro.tasks import get_task

pytestmark = [pytest.mark.durable, pytest.mark.tasks]

#: One extraction task and one classification task (the acceptance bar).
DURABLE_TASKS = ("goalspotter", "netzero-target")
SEGMENT_ITEMS = 3
TRAIN_SIZE = 24
CORPUS_SIZE = 10


class DurableCase:
    """A trained task model, its corpus, and the uninterrupted baseline."""

    def __init__(self, name):
        self.task = get_task(name)
        recipe = self.task.golden_recipe()
        train = self.task.build_dataset(seed=recipe.train_seed, size=TRAIN_SIZE)
        self.model = self.task.build_model("tiny").fit(train)
        corpus = self.task.build_dataset(seed=recipe.eval_seed, size=CORPUS_SIZE)
        self.texts = [objective.text for objective in corpus.objectives]
        self.baseline = self.model.run_batch(self.texts)
        self.num_segments = -(-CORPUS_SIZE // SEGMENT_ITEMS)


@pytest.fixture(scope="module", params=DURABLE_TASKS)
def case(request):
    return DurableCase(request.param)


def _journaled_rows(case, run_dir, **kwargs):
    kwargs.setdefault("segment_items", SEGMENT_ITEMS)
    pairs = case.model.run_journaled(case.texts, run_dir, **kwargs)
    assert all(status == "ok" for __, status in pairs)
    return [row for row, __ in pairs]


class TestCleanPath:
    def test_durable_equals_plain_run(self, case, tmp_path):
        rows = _journaled_rows(case, tmp_path / "run")
        assert json.dumps(rows) == json.dumps(case.baseline)

    def test_workers2_equals_sequential(self, case, tmp_path):
        rows = _journaled_rows(case, tmp_path / "run", workers=2)
        assert json.dumps(rows) == json.dumps(case.baseline)

    def test_completed_run_replays_without_execution(self, case, tmp_path):
        _journaled_rows(case, tmp_path / "run")
        result = run_durable_rows(
            case.model.backend,
            case.task.kind,
            case.texts,
            tmp_path / "run",
            segment_items=SEGMENT_ITEMS,
            fields=case.model.fields,
        )
        assert result.stats["commits"] == 0
        assert result.stats["replayed_segments"] == case.num_segments
        assert json.dumps(result.rows) == json.dumps(case.baseline)


class TestKillMatrix:
    """Kill at every journal boundary; resume must be bitwise-identical."""

    @pytest.mark.chaos
    @pytest.mark.parametrize("site", ["journal_commit", "journal_publish"])
    def test_sequential_kill_at_every_boundary(self, case, tmp_path, site):
        # journal_publish fires once more than journal_commit: the
        # completion marker also traverses the append/fsync window.
        boundaries = case.num_segments + (1 if site == "journal_publish" else 0)
        for nth in range(1, boundaries + 1):
            run_dir = tmp_path / f"{site}-{nth}"
            injector = FaultInjector(
                [FaultSpec(stage=site, error="model", nth_calls=(nth,))],
                seed=0,
            )
            with pytest.raises(ReproError):
                run_durable_rows(
                    case.model.backend,
                    case.task.kind,
                    case.texts,
                    run_dir,
                    segment_items=SEGMENT_ITEMS,
                    fields=case.model.fields,
                    fault_injector=injector,
                )
            rows = _journaled_rows(case, run_dir)
            assert json.dumps(rows) == json.dumps(case.baseline), (
                f"resume after kill at {site} #{nth} diverged"
            )

    @pytest.mark.chaos
    def test_workers2_kill_at_every_commit_boundary(self, case, tmp_path):
        for nth in range(1, case.num_segments + 1):
            run_dir = tmp_path / f"kill-{nth}"
            injector = FaultInjector(
                [
                    FaultSpec(
                        stage="journal_commit", error="model", nth_calls=(nth,)
                    )
                ],
                seed=0,
            )
            with pytest.raises(ReproError):
                run_durable_rows(
                    case.model.backend,
                    case.task.kind,
                    case.texts,
                    run_dir,
                    workers=2,
                    segment_items=SEGMENT_ITEMS,
                    fields=case.model.fields,
                    fault_injector=injector,
                )
            rows = _journaled_rows(case, run_dir, workers=2)
            assert json.dumps(rows) == json.dumps(case.baseline), (
                f"workers=2 resume after kill at commit #{nth} diverged"
            )


class TestCrashStorm:
    """Random kills until the run finally completes — never diverges."""

    @pytest.mark.chaos
    def test_storm_resume_loop_converges_bitwise(self, case, tmp_path):
        rng = np.random.default_rng(42)
        run_dir = tmp_path / "storm"
        rows = None
        for attempt in range(20):
            site = ("journal_commit", "journal_publish")[attempt % 2]
            nth = int(rng.integers(1, case.num_segments + 1))
            injector = FaultInjector(
                [FaultSpec(stage=site, error="model", nth_calls=(nth,))],
                seed=attempt,
            )
            try:
                result = run_durable_rows(
                    case.model.backend,
                    case.task.kind,
                    case.texts,
                    run_dir,
                    workers=2 if attempt % 3 else 1,
                    segment_items=SEGMENT_ITEMS,
                    fields=case.model.fields,
                    fault_injector=injector,
                )
                rows = result.rows
                break
            except ReproError:
                continue  # crashed mid-run: resume in the next attempt
        if rows is None:  # storm outlasted 20 attempts: finish clean
            rows = _journaled_rows(case, run_dir)
        assert json.dumps(rows) == json.dumps(case.baseline)


# -- pipeline runs: quarantine persistence ------------------------------------


class StubDetector:
    class config:
        threshold = 0.5

    def predict_proba(self, texts):
        return np.array([0.9 if "%" in t else 0.1 for t in texts])


class StubExtractor(DetailExtractor):
    """Input-dependent details; poisons any text carrying a poison tag."""

    name = "stub"

    def fit(self, objectives):
        return self

    def extract(self, text):
        if "POISON" in text:
            raise ValueError(f"poisoned unit: {text[:30]}")
        return {"Action": text[:16].upper(), "Amount": str(len(text)),
                "Qualifier": "", "Baseline": "", "Deadline": ""}

    def extract_batch(self, texts):
        return [self.extract(text) for text in texts]


def _reports(num_docs, poisoned=()):
    reports = []
    for doc in range(num_docs):
        tag = " POISON" if doc in poisoned else ""
        blocks = [
            TextBlock(f"cut waste 5% doc-{doc:03d} block {b}{tag}", True)
            for b in range(3)
        ]
        reports.append(
            SustainabilityReport(
                company=f"C{doc % 3}",
                report_id=f"doc-{doc:03d}",
                pages=[Page(blocks=blocks)],
                reporting_year=2020 + doc % 4,
            )
        )
    return reports


class TestPipelineDurable:
    def test_process_reports_durable_equals_plain(self, tmp_path):
        corpus = _reports(6)
        plain = GoalSpotter(StubDetector(), StubExtractor()).process_reports(
            corpus
        )
        pipeline = GoalSpotter(StubDetector(), StubExtractor())
        durable = pipeline.process_reports_durable(
            corpus, tmp_path / "run", segment_items=2
        )
        assert durable == plain
        assert pipeline.last_run_stats["durable"]["complete"] is True

    def test_quarantine_survives_restart_and_is_not_retried(self, tmp_path):
        corpus = _reports(6, poisoned={2})
        run_dir = tmp_path / "run"
        pipeline = GoalSpotter(StubDetector(), StubExtractor())
        records = pipeline.process_reports_durable(
            corpus, run_dir, on_error="skip", segment_items=2
        )
        assert pipeline.quarantine.report_ids() == ["doc-002"]

        # A fresh process resuming the finished run replays everything —
        # including the quarantine — without re-executing the poison doc.
        resumed = GoalSpotter(StubDetector(), StubExtractor())
        result = run_durable_reports(
            resumed, corpus, run_dir, on_error="skip", segment_items=2
        )
        assert result.stats["commits"] == 0  # nothing re-ran
        assert resumed.quarantine.report_ids() == ["doc-002"]
        (entry,) = resumed.quarantine
        assert entry.stage is not None
        assert isinstance(entry.error, ReproError)
        payloads = [
            (p["company"], p["report_id"], p["page"], p["objective"],
             p["details"], p["score"]) for p in result.payloads
        ]
        assert payloads == [
            (r.company, r.report_id, r.page, r.objective, r.details, r.score)
            for r in records
        ]

    @pytest.mark.chaos
    def test_pipeline_kill_and_resume_bitwise(self, tmp_path):
        corpus = _reports(6)
        plain = GoalSpotter(StubDetector(), StubExtractor()).process_reports(
            corpus
        )
        run_dir = tmp_path / "run"
        injector = FaultInjector(
            [FaultSpec(stage="journal_commit", error="model", nth_calls=(2,))],
            seed=0,
        )
        pipeline = GoalSpotter(StubDetector(), StubExtractor())
        with pytest.raises(ReproError):
            run_durable_reports(
                pipeline, corpus, run_dir, segment_items=2,
                fault_injector=injector,
            )
        resumed = GoalSpotter(StubDetector(), StubExtractor())
        records = resumed.process_reports_durable(
            corpus, run_dir, segment_items=2
        )
        assert records == plain


# -- the CLI under real signals -----------------------------------------------


_DRIVER = textwrap.dedent(
    """
    import os, signal, threading, time
    from pathlib import Path
    from repro.cli import main

    run_dir = Path({run_dir!r})

    def killer():
        journal = run_dir / "journal.jsonl"
        while not (journal.exists() and journal.stat().st_size > 0):
            time.sleep(0.002)
        os.kill(os.getpid(), signal.{signame})

    threading.Thread(target=killer, daemon=True).start()
    raise SystemExit(main([
        "extract", "--task", "netzero-target", "--model", {model_dir!r},
        "--input", {input_path!r}, "--run-dir", {run_dir!r},
        "--journal-segment", "1",
    ]))
    """
)


@pytest.mark.chaos
class TestCliSignals:
    @pytest.fixture(scope="class")
    def cli_setup(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-durable")
        model_dir = root / "model"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "train", "--task",
             "netzero-target", "--out", str(model_dir), "--epochs", "2",
             "--dataset-size", str(TRAIN_SIZE)],
            env=env, check=True, capture_output=True,
        )
        task = get_task("netzero-target")
        corpus = task.build_dataset(seed=3, size=40)
        input_path = root / "texts.txt"
        input_path.write_text(
            "".join(
                objective.text.replace("\n", " ") + "\n"
                for objective in corpus.objectives
            )
        )
        baseline = subprocess.run(
            [sys.executable, "-m", "repro.cli", "extract", "--task",
             "netzero-target", "--model", str(model_dir), "--input",
             str(input_path)],
            env=env, check=True, capture_output=True, text=True,
        ).stdout
        return {"root": root, "model_dir": model_dir, "env": env,
                "input_path": input_path, "baseline": baseline}

    @pytest.mark.parametrize("signame", ["SIGINT", "SIGTERM"])
    def test_signal_drains_to_exit_4_and_resume_is_bitwise(
        self, cli_setup, tmp_path, signame
    ):
        run_dir = tmp_path / f"run-{signame}"
        driver = _DRIVER.format(
            run_dir=str(run_dir),
            signame=signame,
            model_dir=str(cli_setup["model_dir"]),
            input_path=str(cli_setup["input_path"]),
        )
        interrupted = subprocess.run(
            [sys.executable, "-c", driver],
            env=cli_setup["env"], capture_output=True, text=True, timeout=120,
        )
        # The signal lands after the first committed segment, well before
        # the 40-segment run completes: a graceful drain to exit 4.
        assert interrupted.returncode == 4, interrupted.stderr
        assert "interrupted" in interrupted.stderr
        assert "--resume" in interrupted.stderr

        resumed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "extract", "--task",
             "netzero-target", "--model", str(cli_setup["model_dir"]),
             "--input", str(cli_setup["input_path"]), "--run-dir",
             str(run_dir), "--journal-segment", "1"],
            env=cli_setup["env"], capture_output=True, text=True, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == cli_setup["baseline"]

    def test_no_resume_refuses_nothing_but_wipes(self, cli_setup, tmp_path):
        run_dir = tmp_path / "fresh"
        args = [sys.executable, "-m", "repro.cli", "extract", "--task",
                "netzero-target", "--model", str(cli_setup["model_dir"]),
                "--input", str(cli_setup["input_path"]), "--run-dir",
                str(run_dir)]
        first = subprocess.run(
            args, env=cli_setup["env"], capture_output=True, text=True,
            timeout=120,
        )
        assert first.returncode == 0
        again = subprocess.run(
            args + ["--no-resume"], env=cli_setup["env"], capture_output=True,
            text=True, timeout=120,
        )
        assert again.returncode == 0
        assert again.stdout == first.stdout == cli_setup["baseline"]
