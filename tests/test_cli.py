"""Tests for the command-line interface (small configurations)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "goals.jsonl"
    # Build a small dataset by generating and saving manually (the CLI
    # builder writes the full 1106; tests use a slice for speed).
    from repro.datasets.sustainability import build_sustainability_goals

    build_sustainability_goals(seed=0, size=120).save_jsonl(path)
    return path


@pytest.fixture(scope="module")
def model_dir(dataset_path, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-model") / "model"
    code = main(
        [
            "train",
            "--data", str(dataset_path),
            "--out", str(out),
            "--epochs", "4",
        ]
    )
    assert code == 0
    return out


class TestCli:
    def test_build_dataset(self, tmp_path, capsys):
        out = tmp_path / "nz.jsonl"
        code = main(
            ["build-dataset", "--name", "netzerofacts", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "599" in capsys.readouterr().out

    def test_extract_text(self, model_dir, capsys):
        code = main(
            [
                "extract",
                "--model", str(model_dir),
                "--text", "Reduce waste by 20% by 2030.",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert set(payload["details"]) == {
            "Action", "Amount", "Qualifier", "Baseline", "Deadline",
        }

    def test_extract_requires_input(self, model_dir, capsys):
        assert main(["extract", "--model", str(model_dir)]) == 2

    def test_extract_from_file(self, model_dir, tmp_path, capsys):
        source = tmp_path / "objectives.txt"
        source.write_text(
            "Reduce waste by 10%.\nCut emissions by 30% by 2035.\n"
        )
        code = main(
            ["extract", "--model", str(model_dir), "--input", str(source)]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_evaluate(self, model_dir, dataset_path, capsys):
        code = main(
            [
                "evaluate",
                "--data", str(dataset_path),
                "--model", str(model_dir),
            ]
        )
        assert code == 0
        assert "micro" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


@pytest.mark.serve
@pytest.mark.fleet
class TestServeFleetCli:
    def test_serve_fleet_small_run(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        code = main(
            [
                "serve-fleet",
                "--replicas", "2",
                "--requests", "8",
                "--concurrency", "2",
                "--seed", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "completed 8 / submitted 8" in stdout
        payload = json.loads(out.read_text())
        assert payload["config"]["replicas"] == 2
        assert payload["fleet"]["router"]["counters"]["completed"] == 8
        assert payload["swap"] is None

    def test_serve_fleet_rejects_bad_policy(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-fleet", "--policy", "hash-ring"])
