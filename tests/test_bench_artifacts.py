"""Schema smoke tests for the committed benchmark artifacts.

The ``BENCH_*.json`` files at the repo root are the evidence behind the
performance claims in README/DESIGN; these tests pin their shape (and
the claims themselves) so a regenerated artifact that silently drops a
field — or a number that no longer supports its claim — fails CI
instead of shipping.
"""

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_artifact(name: str) -> dict:
    path = REPO_ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not committed in this checkout")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.cache
@pytest.mark.quant
class TestCacheQuantArtifact:
    def test_schema(self):
        report = load_artifact("BENCH_cache_quant.json")
        assert set(report) == {
            "config",
            "baseline_tokens_per_second",
            "sweep",
            "quantization",
        }
        assert set(report["sweep"]) == {"0.0", "0.3", "0.7"}
        for level in report["sweep"].values():
            for key in (
                "uncached",
                "cached",
                "speedup_vs_uncached",
                "speedup_vs_baseline",
                "results_identical",
                "logits_bitwise_identical",
            ):
                assert key in level
            for run in (level["uncached"], level["cached"]):
                assert "tokens_per_second" in run
                assert "result_cache_hits" in run
        gate = report["quantization"]["gate"]
        assert set(gate) == {
            "total",
            "top_label_matches",
            "max_abs_delta",
            "bound",
            "passed",
        }

    def test_headline_claims_hold(self):
        """>=2x tokens/sec at 70% repeats, bitwise identity throughout,
        and the golden int8 gate passed — the committed evidence."""
        report = load_artifact("BENCH_cache_quant.json")
        hot = report["sweep"]["0.7"]
        assert hot["speedup_vs_baseline"] >= 2.0
        assert hot["speedup_vs_uncached"] > 1.0
        assert hot["cached"]["result_cache_hits"] > 0
        for level in report["sweep"].values():
            assert level["results_identical"] is True
            assert level["logits_bitwise_identical"] is True
        quant = report["quantization"]
        assert quant["gate"]["passed"] is True
        assert quant["gate"]["top_label_matches"] == quant["gate"]["total"]
        assert quant["reports"] == 25
        assert quant["int8_weight_bytes"] < quant["fp32_weight_bytes"]

    def test_baseline_cross_references_throughput_artifact(self):
        report = load_artifact("BENCH_cache_quant.json")
        baseline = load_artifact("BENCH_inference_throughput.json")
        assert report["baseline_tokens_per_second"] == pytest.approx(
            baseline["extractor"]["bucketed"]["tokens_per_second"]
        )


class TestThroughputArtifact:
    def test_schema_and_claims(self):
        report = load_artifact("BENCH_inference_throughput.json")
        extractor = report["extractor"]
        assert extractor["logits_identical"] is True
        assert extractor["results_identical"] is True
        assert extractor["speedup"] >= 1.5
        assert extractor["bucketed"]["tokens_per_second"] > 0
        # The pre-cache baseline must really be pre-cache.
        assert extractor["bucketed"]["result_cache_hits"] == 0


@pytest.mark.serve
@pytest.mark.fleet
class TestFleetArtifact:
    def test_schema(self):
        report = load_artifact("BENCH_fleet.json")
        assert report["schema_version"] == 1
        assert set(report) >= {"schema_version", "config", "sweep", "scaling", "chaos"}
        config = report["config"]
        assert config["replica_sweep"] == [1, 2, 4]
        assert config["offered_rps"] > 0
        for cell in report["sweep"]:
            assert set(cell) >= {
                "replicas",
                "offered_rps",
                "completed",
                "rejected",
                "failed",
                "completed_rps",
                "client_p99_seconds",
            }
        scaling = report["scaling"]
        assert set(scaling) >= {
            "completed_rps_by_replicas",
            "monotonic",
            "p99_bound_seconds",
            "max_p99_seconds",
            "p99_within_bound",
        }
        assert set(scaling["completed_rps_by_replicas"]) == {"1", "2", "4"}

    def test_headline_claims_hold(self):
        """Completed-rps scales monotonically 1->2->4 replicas with p99
        bounded, and the in-bench chaos kill lost nothing — the
        committed evidence behind the README fleet section."""
        report = load_artifact("BENCH_fleet.json")
        scaling = report["scaling"]
        assert scaling["monotonic"] is True
        rates = scaling["completed_rps_by_replicas"]
        assert rates["1"] < rates["2"] < rates["4"]
        assert scaling["max_p99_seconds"] < scaling["p99_bound_seconds"]
        chaos = report["chaos"]
        assert chaos["replicas_killed"] == 1
        assert chaos["failed"] == 0
        assert chaos["zero_lost"] is True
        assert chaos["bitwise_identical"] is True
        assert chaos["completed"] == chaos["accepted"]
        # The health map records exactly one dead replica.
        states = sorted(chaos["health"].values())
        assert states.count("dead") == 1


@pytest.mark.kg
class TestKgArtifact:
    def test_schema(self):
        report = load_artifact("BENCH_kg.json")
        assert set(report) >= {
            "config",
            "objectives",
            "graph_nodes",
            "graph_edges",
            "serial_build_seconds",
            "serial_objectives_per_second",
            "runs",
            "all_fingerprints_identical",
            "drift_scan_seconds",
            "threads",
            "threads_per_second",
            "findings",
            "injected_events",
            "drift_precision",
            "drift_recall",
        }
        config = report["config"]
        assert config["num_companies"] > 0
        assert len(config["years"]) >= 2
        for run in report["runs"]:
            assert set(run) == {
                "workers",
                "seconds",
                "objectives_per_second",
                "fingerprint_identical",
            }

    def test_headline_claims_hold(self):
        """Parallel builds are bitwise-identical to serial, and the
        drift scan recovers every injected event with zero false
        positives — the committed evidence behind README §kg."""
        report = load_artifact("BENCH_kg.json")
        assert report["objectives"] > 0
        assert report["serial_objectives_per_second"] > 0
        assert report["all_fingerprints_identical"] is True
        assert all(
            run["fingerprint_identical"] for run in report["runs"]
        )
        # The ladder exercises the real pool path, not just workers=1.
        assert max(run["workers"] for run in report["runs"]) >= 2
        assert report["findings"] == report["injected_events"]
        assert report["drift_precision"] == 1.0
        assert report["drift_recall"] == 1.0


@pytest.mark.durable
class TestDurableRunsArtifact:
    REQUIRED_TASKS = {"goalspotter", "netzero-target"}

    def test_schema(self):
        report = load_artifact("BENCH_durable_runs.json")
        assert set(report) == {
            "config",
            "cpu_count",
            "tasks",
            "overhead_ok",
            "all_identical",
        }
        config = report["config"]
        assert set(config) == {
            "repeat",
            "rounds",
            "segment_items",
            "overhead_bound",
            "profile",
        }
        assert config["overhead_bound"] == 1.05
        assert self.REQUIRED_TASKS <= set(report["tasks"])
        for name, entry in report["tasks"].items():
            assert set(entry) == {
                "kind",
                "texts",
                "segments",
                "segment_items",
                "rounds",
                "plain_seconds",
                "journaled_seconds",
                "monolithic_seconds",
                "overhead_ratio",
                "overhead_ratio_median",
                "monolithic_ratio",
                "texts_per_second",
                "overhead_ok",
                "killed_mid_run",
                "kill_resume_identical",
                "workers2_identical",
            }, name
            assert entry["kind"] in ("extraction", "classification")
            assert entry["segments"] >= 2, name  # a mid-run kill needs two

    def test_headline_claims_hold(self):
        """The journal stays under the 5% clean-path bound and every
        kill+resume / workers=2 run came back bitwise-identical — the
        committed evidence behind README §durable-runs."""
        report = load_artifact("BENCH_durable_runs.json")
        assert report["overhead_ok"] is True
        assert report["all_identical"] is True
        bound = report["config"]["overhead_bound"]
        for name, entry in report["tasks"].items():
            assert entry["overhead_ratio"] < bound, name
            assert entry["overhead_ok"] is True, name
            assert entry["killed_mid_run"] is True, name
            assert entry["kill_resume_identical"] is True, name
            assert entry["workers2_identical"] is True, name
            assert entry["texts_per_second"] > 0, name


@pytest.mark.tasks
class TestTasksArtifact:
    REQUIRED_TASKS = {
        "goalspotter",
        "taxonomy-kpi",
        "netzero-target",
        "initiative-sentence",
    }

    def test_schema(self):
        report = load_artifact("BENCH_tasks.json")
        assert set(report) == {
            "config",
            "cpu_count",
            "tasks",
            "all_identical",
        }
        assert report["config"]["eval_repeat"] >= 1
        assert self.REQUIRED_TASKS <= set(report["tasks"])
        for name, entry in report["tasks"].items():
            assert set(entry) == {
                "kind",
                "train_examples",
                "train_seconds",
                "train_examples_per_second",
                "infer_texts",
                "infer_seconds",
                "infer_texts_per_second",
                "weak_coverage",
                "metrics",
                "conformance",
            }, name
            assert entry["kind"] in ("extraction", "classification")
            assert set(entry["conformance"]) == {
                "batched_equals_sequential",
                "parallel_equals_direct",
            }

    def test_headline_claims_hold(self):
        """Every registered task trains and serves through the shared
        substrate with bitwise-identical batched/sequential/parallel
        rows — the committed evidence behind README §task-registry."""
        report = load_artifact("BENCH_tasks.json")
        assert report["all_identical"] is True
        for name, entry in report["tasks"].items():
            assert entry["train_examples_per_second"] > 0, name
            assert entry["infer_texts_per_second"] > 0, name
            assert 0.0 < entry["weak_coverage"] <= 1.0, name
            assert all(entry["conformance"].values()), name
