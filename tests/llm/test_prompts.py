"""Tests for prompt construction."""

from repro.core.schema import AnnotatedObjective, SUSTAINABILITY_FIELDS
from repro.llm.prompts import (
    EXAMPLES_HEADER,
    OBJECTIVE_HEADER,
    build_prompt,
)


class TestBuildPrompt:
    def test_zero_shot_has_no_examples_section(self):
        prompt = build_prompt("Reduce waste.", SUSTAINABILITY_FIELDS)
        assert EXAMPLES_HEADER not in prompt

    def test_few_shot_contains_examples(self):
        example = AnnotatedObjective(
            "Cut waste by 10%.", {"Action": "Cut", "Amount": "10%"}
        )
        prompt = build_prompt("Reduce waste.", SUSTAINABILITY_FIELDS, [example])
        assert EXAMPLES_HEADER in prompt
        assert "Cut waste by 10%." in prompt
        assert '"Action": "Cut"' in prompt

    def test_query_is_last_objective(self):
        example = AnnotatedObjective("Example text.", {"Action": "do"})
        prompt = build_prompt("Query text.", ("Action",), [example])
        marker = f"{OBJECTIVE_HEADER}: Query text."
        assert prompt.rfind(marker) > prompt.find("Example text.")

    def test_all_fields_described(self):
        prompt = build_prompt("x.", SUSTAINABILITY_FIELDS)
        for field in SUSTAINABILITY_FIELDS:
            assert f"- {field}:" in prompt

    def test_example_outputs_cover_all_fields(self):
        example = AnnotatedObjective("Cut waste.", {"Action": "Cut"})
        prompt = build_prompt("q.", SUSTAINABILITY_FIELDS, [example])
        # Missing fields must be shown as empty strings in the example JSON.
        assert '"Deadline": ""' in prompt

    def test_netzerofacts_fields_supported(self):
        prompt = build_prompt("x.", ("TargetValue", "TargetYear"))
        assert "- TargetValue:" in prompt
