"""Unit tests for SimulatedLLM prompt parsing internals."""

from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.llm.engine import SimulatedLLM
from repro.llm.prompts import build_prompt


class TestParseFields:
    def test_reads_glossary(self):
        prompt = build_prompt("x.", ("Action", "Deadline"))
        assert SimulatedLLM._parse_fields(prompt) == ["Action", "Deadline"]

    def test_full_schema(self):
        prompt = build_prompt("x.", SUSTAINABILITY_FIELDS)
        assert SimulatedLLM._parse_fields(prompt) == list(
            SUSTAINABILITY_FIELDS
        )

    def test_no_fields(self):
        assert SimulatedLLM._parse_fields("hello") == []


class TestParseQuery:
    def test_finds_final_objective(self):
        prompt = build_prompt("Cut waste by 5%.", ("Action",))
        assert SimulatedLLM._parse_query(prompt) == "Cut waste by 5%."

    def test_ignores_example_objectives(self):
        from repro.core.schema import AnnotatedObjective

        prompt = build_prompt(
            "The real query.",
            ("Action",),
            [AnnotatedObjective("An example objective.", {"Action": "x"})],
        )
        assert SimulatedLLM._parse_query(prompt) == "The real query."

    def test_fallback_to_last_line(self):
        assert SimulatedLLM._parse_query("just text\nfinal line") == (
            "final line"
        )

    def test_empty_prompt(self):
        assert SimulatedLLM._parse_query("") == ""
