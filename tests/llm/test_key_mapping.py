"""Schema mapping of (possibly drifted) completion keys."""

from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.llm.engine import SimulatedLLM
from repro.llm.extractor import PromptingExtractor


class RecordingLLM(SimulatedLLM):
    """Returns a canned completion regardless of the prompt."""

    def __init__(self, completion: str) -> None:
        super().__init__(seed=0)
        self.completion = completion

    def complete(self, prompt: str) -> str:
        self.calls += 1
        return self.completion


def extractor_with(completion: str) -> PromptingExtractor:
    return PromptingExtractor(
        "zero", fields=SUSTAINABILITY_FIELDS, llm=RecordingLLM(completion)
    )


class TestKeyMapping:
    def test_exact_keys_mapped(self):
        extractor = extractor_with('{"Action": "Cut", "Amount": "5%"}')
        details = extractor.extract("whatever")
        assert details["Action"] == "Cut"
        assert details["Amount"] == "5%"

    def test_case_insensitive_keys(self):
        extractor = extractor_with('{"action": "Cut", "DEADLINE": "2030"}')
        details = extractor.extract("whatever")
        assert details["Action"] == "Cut"
        assert details["Deadline"] == "2030"

    def test_unmappable_drifted_keys_dropped(self):
        extractor = extractor_with('{"Time frame": "2030"}')
        details = extractor.extract("whatever")
        assert all(value == "" for value in details.values())

    def test_first_value_wins_on_duplicates(self):
        extractor = extractor_with('{"Action": "Cut", "action": "Raise"}')
        assert extractor.extract("x")["Action"] == "Cut"

    def test_unparseable_completion_gives_empty_schema(self):
        extractor = extractor_with("I have no idea.")
        details = extractor.extract("whatever")
        assert set(details) == set(SUSTAINABILITY_FIELDS)
        assert all(value == "" for value in details.values())
