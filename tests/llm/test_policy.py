"""Tests for the simulated LLM's reading-comprehension policy."""

from repro.llm.policy import read_objective


class TestReadObjective:
    def test_percent_amount(self):
        reading = read_objective("Reduce waste by 20% by 2030.")
        assert reading.amount == "20%"

    def test_percent_words(self):
        reading = read_objective("Cut emissions 25 percent by 2030.")
        assert reading.amount == "25 percent"

    def test_net_zero_hyphenated(self):
        reading = read_objective("Reach net-zero carbon by 2040.")
        assert reading.amount == "net-zero"

    def test_action_verb(self):
        reading = read_objective("Reduce waste by 20%.")
        assert reading.action == "Reduce"

    def test_will_modal_action(self):
        reading = read_objective("By 2023, we will install 1 million units.")
        assert reading.action.lower().startswith("will")

    def test_deadline_after_by(self):
        reading = read_objective("Achieve carbon neutrality by 2035.")
        assert reading.deadline == "2035"

    def test_baseline_parenthetical(self):
        reading = read_objective("Cut use by 10% by 2030 (baseline 2017).")
        assert reading.baseline == "2017"
        assert reading.deadline == "2030"

    def test_baseline_compared_to_levels(self):
        reading = read_objective("Cut use by 10% compared to 2015 levels.")
        assert reading.baseline == "2015"

    def test_statistic_year_not_deadline(self):
        reading = read_objective("Voluntary turnover rate in 2021: 8.1%")
        assert reading.deadline == ""
        assert reading.statistic_year == "2021"
        assert reading.amount == "8.1%"

    def test_qualifier_between_action_and_by(self):
        reading = read_objective("Reduce energy consumption by 20%.")
        assert reading.qualifier == "energy consumption"

    def test_qualifier_after_of(self):
        reading = read_objective("Restore 100% of our global water use by 2025.")
        assert reading.qualifier == "global water use"

    def test_empty_text(self):
        reading = read_objective("")
        assert reading.action == ""
        assert reading.amount == ""

    def test_currency_amount(self):
        reading = read_objective("Invest $50 million in community projects.")
        assert "50" in reading.amount
