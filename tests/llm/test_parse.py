"""Tests for robust completion parsing."""

from repro.llm.parse import parse_llm_json


class TestParseLlmJson:
    def test_bare_json(self):
        assert parse_llm_json('{"Action": "Reduce"}') == {"Action": "Reduce"}

    def test_json_in_markdown_fence(self):
        completion = '```json\n{"Action": "Cut"}\n```'
        assert parse_llm_json(completion) == {"Action": "Cut"}

    def test_json_in_prose(self):
        completion = 'Sure! The details are: {"Amount": "20%"} — anything else?'
        assert parse_llm_json(completion) == {"Amount": "20%"}

    def test_single_quotes_repaired(self):
        assert parse_llm_json("{'Action': 'Expand'}") == {"Action": "Expand"}

    def test_key_value_lines_fallback(self):
        completion = "Here is what I found.\nAction: Reduce\nAmount: 20%"
        parsed = parse_llm_json(completion)
        assert parsed["Action"] == "Reduce"
        assert parsed["Amount"] == "20%"

    def test_not_mentioned_normalized_to_empty(self):
        completion = "Action: Reduce\nDeadline: (not mentioned)"
        assert parse_llm_json(completion)["Deadline"] == ""

    def test_na_normalized(self):
        assert parse_llm_json("Baseline: N/A")["Baseline"] == ""

    def test_unparseable_gives_empty(self):
        assert parse_llm_json("I could not find anything useful") == {}

    def test_nested_values_skipped(self):
        completion = '{"Action": "x", "nested": {"a": 1}}'
        parsed = parse_llm_json(completion)
        assert "nested" not in parsed
        assert parsed["Action"] == "x"

    def test_empty_completion(self):
        assert parse_llm_json("") == {}

    def test_numeric_values_stringified(self):
        assert parse_llm_json('{"Deadline": 2040}') == {"Deadline": "2040"}
