"""Tests for the prompting extractors."""

import pytest

from repro.llm.extractor import PromptingExtractor


class TestPromptingExtractor:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PromptingExtractor("many")

    def test_zero_shot_fit_is_noop(self):
        extractor = PromptingExtractor("zero")
        extractor.fit([])
        assert extractor.examples == []

    def test_few_shot_requires_training_data(self):
        with pytest.raises(ValueError):
            PromptingExtractor("few").fit([])

    def test_few_shot_selects_three_examples(self, tiny_dataset):
        extractor = PromptingExtractor("few")
        extractor.fit(tiny_dataset.objectives)
        assert len(extractor.examples) == 3

    def test_example_selection_covers_fields(self, tiny_dataset):
        extractor = PromptingExtractor("few")
        extractor.fit(tiny_dataset.objectives)
        covered = set()
        for example in extractor.examples:
            covered |= set(example.present_details())
        # Action/Amount/Qualifier are common enough to always be covered.
        assert {"Action", "Qualifier"} <= covered

    def test_extract_returns_schema_fields(self, tiny_dataset):
        extractor = PromptingExtractor("few", seed=3)
        extractor.fit(tiny_dataset.objectives)
        details = extractor.extract("Reduce waste by 20% by 2030.")
        assert set(details) == set(extractor.fields)

    def test_extract_finds_obvious_amount(self, tiny_dataset):
        extractor = PromptingExtractor("few", seed=3)
        extractor.fit(tiny_dataset.objectives)
        results = extractor.extract_batch(
            [f"Reduce waste by {p}% by 2030." for p in (20, 30, 40)]
        )
        hits = sum(1 for r, p in zip(results, (20, 30, 40)) if f"{p}%" in r["Amount"])
        assert hits >= 2

    def test_simulated_seconds_grow(self, tiny_dataset):
        extractor = PromptingExtractor("zero")
        extractor.fit([])
        extractor.extract("Reduce waste by 10%.")
        assert extractor.simulated_seconds > 0

    def test_names(self):
        assert PromptingExtractor("zero").name == "Zero-Shot Prompting"
        assert PromptingExtractor("few").name == "Few-Shot Prompting"
