"""Tests for the SimulatedLLM completion engine."""

import numpy as np
import pytest

from repro.core.schema import AnnotatedObjective, SUSTAINABILITY_FIELDS
from repro.llm.engine import (
    FEW_SHOT_BEHAVIOR,
    LatencyModel,
    SimulatedLLM,
    ZERO_SHOT_BEHAVIOR,
)
from repro.llm.parse import parse_llm_json
from repro.llm.prompts import build_prompt


@pytest.fixture
def llm():
    return SimulatedLLM(seed=0)


def few_shot_prompt(text):
    examples = [
        AnnotatedObjective(
            "Cut waste by 10% by 2030.",
            {"Action": "Cut", "Amount": "10%", "Deadline": "2030"},
        )
    ]
    return build_prompt(text, SUSTAINABILITY_FIELDS, examples)


class TestSimulatedLLM:
    def test_returns_parseable_output_few_shot(self, llm):
        completion = llm.complete(
            few_shot_prompt("Reduce emissions by 30% by 2035.")
        )
        parsed = parse_llm_json(completion)
        assert parsed  # non-empty mapping

    def test_reads_the_query_not_the_examples(self, llm):
        completion = llm.complete(
            few_shot_prompt("Reduce emissions by 30% by 2035.")
        )
        parsed = parse_llm_json(completion)
        amounts = [v for v in parsed.values() if "30%" in v]
        assert amounts  # extracted from the query, not "10%"

    def test_latency_accumulates(self, llm):
        before = llm.simulated_seconds
        llm.complete(few_shot_prompt("Reduce waste by 5%."))
        assert llm.simulated_seconds > before
        assert llm.calls == 1

    def test_zero_shot_drifts_more_than_few_shot(self):
        """Over many calls, zero-shot produces more non-JSON formats."""
        texts = [
            f"Reduce waste by {p}% by {2025 + p % 10}." for p in range(5, 45)
        ]
        zero = SimulatedLLM(seed=1)
        few = SimulatedLLM(seed=1)
        zero_clean = few_clean = 0
        for text in texts:
            zero_completion = zero.complete(
                build_prompt(text, SUSTAINABILITY_FIELDS)
            )
            few_completion = few.complete(few_shot_prompt(text))
            zero_clean += zero_completion.lstrip().startswith("{")
            few_clean += few_completion.lstrip().startswith("{")
        assert few_clean > zero_clean

    def test_parses_fields_from_prompt(self, llm):
        prompt = build_prompt(
            "Cut emissions 40% by 2030 from a 2015 base year.",
            ("TargetValue", "ReferenceYear", "TargetYear"),
        )
        parsed = parse_llm_json(llm.complete(prompt))
        # Keys come from the requested schema (modulo drift).
        assert any(
            key in parsed for key in ("TargetValue", "value", "Reduction")
        )

    def test_deterministic_given_seed(self):
        prompt = few_shot_prompt("Reduce waste by 15% by 2031.")
        a = SimulatedLLM(seed=7).complete(prompt)
        b = SimulatedLLM(seed=7).complete(prompt)
        assert a == b

    def test_empty_prompt_does_not_crash(self, llm):
        completion = llm.complete("")
        assert isinstance(completion, str)


class TestLatencyModel:
    def test_seconds_positive(self):
        model = LatencyModel()
        assert model.seconds(100, 50) > 0

    def test_decode_dominates(self):
        model = LatencyModel()
        assert model.seconds(0, 100) > model.seconds(100, 0)


class TestBehaviorPresets:
    def test_zero_shot_noisier_on_every_knob(self):
        for knob in (
            "p_prose_wrapper",
            "p_field_name_drift",
            "p_value_verbosity",
            "p_statistic_year_as_deadline",
            "p_qualifier_overrun",
        ):
            assert getattr(ZERO_SHOT_BEHAVIOR, knob) >= getattr(
                FEW_SHOT_BEHAVIOR, knob
            )
