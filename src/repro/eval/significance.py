"""Paired bootstrap significance testing between two extractors.

The paper reports means of 5 independent runs and notes the standard
errors are "always small numbers close to zero". This module provides the
complementary per-objective analysis: a paired bootstrap over the test set
estimating how often approach A's F1 beats approach B's on resampled test
sets — the standard significance test for span-extraction comparisons.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.eval.metrics import evaluate_extractions


@dataclasses.dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison.

    Attributes:
        f1_a / f1_b: full-test-set F1 of each system.
        delta: ``f1_a - f1_b`` on the full test set.
        p_value: fraction of bootstrap resamples where B >= A (one-sided);
            small values mean A's advantage is stable under resampling.
        samples: number of bootstrap resamples.
    """

    f1_a: float
    f1_b: float
    delta: float
    p_value: float
    samples: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether A > B at the given significance level."""
        return self.delta > 0 and self.p_value < alpha


def paired_bootstrap(
    predictions_a: Sequence[Mapping[str, str]],
    predictions_b: Sequence[Mapping[str, str]],
    gold: Sequence[Mapping[str, str]],
    fields: Sequence[str],
    samples: int = 1000,
    seed: int = 0,
) -> BootstrapResult:
    """Paired bootstrap test that system A outperforms system B.

    Both systems' predictions must be over the same test objectives
    (paired). Resamples objectives with replacement and compares F1.
    """
    if not (len(predictions_a) == len(predictions_b) == len(gold)):
        raise ValueError("predictions and gold must be parallel")
    if not gold:
        raise ValueError("cannot bootstrap an empty test set")
    size = len(gold)
    rng = np.random.default_rng(seed)

    f1_a = evaluate_extractions(predictions_a, gold, fields).f1
    f1_b = evaluate_extractions(predictions_b, gold, fields).f1

    wins_b = 0
    for __ in range(samples):
        indices = rng.integers(0, size, size=size)
        sample_a = [predictions_a[i] for i in indices]
        sample_b = [predictions_b[i] for i in indices]
        sample_gold = [gold[i] for i in indices]
        sampled_f1_a = evaluate_extractions(sample_a, sample_gold, fields).f1
        sampled_f1_b = evaluate_extractions(sample_b, sample_gold, fields).f1
        if sampled_f1_b >= sampled_f1_a:
            wins_b += 1
    return BootstrapResult(
        f1_a=f1_a,
        f1_b=f1_b,
        delta=f1_a - f1_b,
        p_value=wins_b / samples,
        samples=samples,
    )
