"""Classification metrics for the registry's classification tasks.

The extraction tasks score with value-level precision/recall/F1
(:mod:`repro.eval.metrics`); classification tasks score with accuracy and
macro-F1 over named labels. Pure-python integer counting — the numbers
are exact ratios, deterministic across platforms, which is what the
golden fixtures pin.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence


@dataclasses.dataclass(frozen=True)
class LabelCounts:
    """Per-label confusion counts."""

    true_positive: int = 0
    false_positive: int = 0
    false_negative: int = 0

    @property
    def precision(self) -> float:
        denom = self.true_positive + self.false_positive
        return self.true_positive / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positive + self.false_negative
        return self.true_positive / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclasses.dataclass(frozen=True)
class ClassificationReport:
    """Accuracy + per-label P/R/F1 for an N-way classification run."""

    labels: tuple[str, ...]
    accuracy: float
    macro_f1: float
    per_label: dict[str, LabelCounts]
    total: int

    def as_dict(self) -> dict:
        return {
            "labels": list(self.labels),
            "accuracy": self.accuracy,
            "macro_f1": self.macro_f1,
            "total": self.total,
            "per_label": {
                label: {
                    "precision": counts.precision,
                    "recall": counts.recall,
                    "f1": counts.f1,
                }
                for label, counts in self.per_label.items()
            },
        }


def evaluate_classification(
    predicted: Sequence[str],
    gold: Sequence[str],
    labels: Sequence[str],
) -> ClassificationReport:
    """Score predicted label names against gold label names.

    ``labels`` fixes the macro average's class set; predictions or gold
    values outside it raise ``ValueError`` (they would silently distort
    the macro-F1 otherwise).
    """
    if len(predicted) != len(gold):
        raise ValueError("predicted and gold must be parallel")
    known = set(labels)
    counts = {
        label: {"tp": 0, "fp": 0, "fn": 0} for label in labels
    }
    correct = 0
    for prediction, truth in zip(predicted, gold):
        if prediction not in known:
            raise ValueError(f"unknown predicted label {prediction!r}")
        if truth not in known:
            raise ValueError(f"unknown gold label {truth!r}")
        if prediction == truth:
            correct += 1
            counts[truth]["tp"] += 1
        else:
            counts[prediction]["fp"] += 1
            counts[truth]["fn"] += 1
    per_label = {
        label: LabelCounts(
            true_positive=c["tp"],
            false_positive=c["fp"],
            false_negative=c["fn"],
        )
        for label, c in counts.items()
    }
    total = len(gold)
    macro_f1 = (
        sum(c.f1 for c in per_label.values()) / len(labels) if labels else 0.0
    )
    return ClassificationReport(
        labels=tuple(labels),
        accuracy=correct / total if total else 0.0,
        macro_f1=macro_f1,
        per_label=per_label,
        total=total,
    )
