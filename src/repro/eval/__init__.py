"""Evaluation: value-level precision/recall/F1, timing, run protocol."""

from repro.eval.classification import (
    ClassificationReport,
    LabelCounts,
    evaluate_classification,
)
from repro.eval.metrics import (
    FieldCounts,
    MetricReport,
    evaluate_extractions,
    precision_recall_f1,
    values_match,
)
from repro.eval.protocol import ApproachResult, run_comparison
from repro.eval.tables import render_table
from repro.eval.figures import render_bars
from repro.eval.significance import BootstrapResult, paired_bootstrap

__all__ = [
    "ApproachResult",
    "BootstrapResult",
    "ClassificationReport",
    "FieldCounts",
    "LabelCounts",
    "MetricReport",
    "evaluate_classification",
    "evaluate_extractions",
    "paired_bootstrap",
    "precision_recall_f1",
    "render_bars",
    "render_table",
    "run_comparison",
    "values_match",
]
