"""Evaluation: value-level precision/recall/F1, timing, run protocol."""

from repro.eval.metrics import (
    FieldCounts,
    MetricReport,
    evaluate_extractions,
    precision_recall_f1,
    values_match,
)
from repro.eval.protocol import ApproachResult, run_comparison
from repro.eval.tables import render_table
from repro.eval.figures import render_bars
from repro.eval.significance import BootstrapResult, paired_bootstrap

__all__ = [
    "FieldCounts",
    "MetricReport",
    "evaluate_extractions",
    "precision_recall_f1",
    "values_match",
    "ApproachResult",
    "run_comparison",
    "render_table",
    "render_bars",
    "BootstrapResult",
    "paired_bootstrap",
]
