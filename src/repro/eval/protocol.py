"""The paper's run protocol: 80/20 split, mean of 5 independent runs.

``run_comparison`` trains a fresh extractor per run on the training split,
extracts on the unseen 20% test split, and reports the mean of Precision,
Recall, F1, and train/inference wall-clock across runs — exactly the
protocol behind Table 4.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.base import DetailExtractor
from repro.datasets.base import Dataset, train_test_split
from repro.eval.metrics import MetricReport, evaluate_extractions

ExtractorFactory = Callable[[int], DetailExtractor]


@dataclasses.dataclass
class ApproachResult:
    """Aggregated result of one approach on one dataset."""

    approach: str
    dataset: str
    precision: float
    recall: float
    f1: float
    train_seconds: float
    inference_seconds: float
    runs: int
    per_run_f1: list[float] = dataclasses.field(default_factory=list)
    reports: list[MetricReport] = dataclasses.field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.train_seconds + self.inference_seconds

    def row(self) -> list[str]:
        """A Table 4 style row: P, R, F, T(minutes)."""
        minutes = self.total_seconds / 60.0
        time_text = "< 1" if minutes < 1.0 else f"{minutes:.0f}"
        return [
            self.approach,
            f"{self.precision:.2f}",
            f"{self.recall:.2f}",
            f"{self.f1:.2f}",
            time_text,
        ]


def evaluate_extractor(
    extractor: DetailExtractor,
    train: Dataset,
    test: Dataset,
) -> tuple[MetricReport, float, float]:
    """Fit on ``train``, extract on ``test``; returns (report, t_fit, t_inf)."""
    start = time.perf_counter()
    extractor.fit(train.objectives)
    train_seconds = time.perf_counter() - start

    simulated_before = float(getattr(extractor, "simulated_seconds", 0.0))
    start = time.perf_counter()
    predictions = extractor.extract_batch(
        [objective.text for objective in test.objectives]
    )
    inference_seconds = time.perf_counter() - start
    # Prompting baselines run on a simulated LLM whose latency is virtual
    # (see repro.llm.engine.LatencyModel); include it, as the paper's time
    # column is dominated by exactly this cost.
    inference_seconds += (
        float(getattr(extractor, "simulated_seconds", 0.0)) - simulated_before
    )

    report = evaluate_extractions(
        predictions,
        [objective.details for objective in test.objectives],
        test.fields,
    )
    return report, train_seconds, inference_seconds


def run_comparison(
    factory: ExtractorFactory,
    dataset: Dataset,
    approach_name: str,
    runs: int = 5,
    test_fraction: float = 0.2,
    base_seed: int = 0,
) -> ApproachResult:
    """Run the full protocol for one approach on one dataset.

    Args:
        factory: builds a fresh extractor given the run seed.
        dataset: full dataset; re-split per run.
        approach_name: label for the result table.
        runs: independent runs to average (paper: 5).
    """
    reports: list[MetricReport] = []
    fit_times: list[float] = []
    inference_times: list[float] = []
    for run in range(runs):
        seed = base_seed + run
        train, test = train_test_split(dataset, test_fraction, seed=seed)
        extractor = factory(seed)
        report, fit_seconds, inference_seconds = evaluate_extractor(
            extractor, train, test
        )
        reports.append(report)
        fit_times.append(fit_seconds)
        inference_times.append(inference_seconds)
    return ApproachResult(
        approach=approach_name,
        dataset=dataset.name,
        precision=float(np.mean([r.precision for r in reports])),
        recall=float(np.mean([r.recall for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        train_seconds=float(np.mean(fit_times)),
        inference_seconds=float(np.mean(inference_times)),
        runs=runs,
        per_run_f1=[r.f1 for r in reports],
        reports=reports,
    )
