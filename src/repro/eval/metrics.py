"""Value-level precision / recall / F1 (paper Section 4.1).

Following the paper's definitions: a true positive is a correctly extracted
detail that was actually present; a false positive is an incorrectly
extracted detail (wrong value, or a value where none was annotated); a false
negative is a failure to extract a detail that was present. Counts are
accumulated per field over the test set and micro-averaged.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Mapping, Sequence

_WHITESPACE_RE = re.compile(r"\s+")
_EDGE_PUNCT_RE = re.compile(r"^[\W_]+|[\W_]+$")


def _canon(value: str) -> str:
    """Canonical form for value comparison: casefold, trim punctuation."""
    value = _WHITESPACE_RE.sub(" ", value.strip()).casefold()
    return _EDGE_PUNCT_RE.sub("", value)


def values_match(predicted: str, gold: str) -> bool:
    """Whether an extracted value counts as correct for a gold value."""
    return bool(gold.strip()) and _canon(predicted) == _canon(gold)


@dataclasses.dataclass
class FieldCounts:
    """TP/FP/FN accumulator for one field."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    def update(self, predicted: str, gold: str) -> None:
        has_prediction = bool(predicted and predicted.strip())
        has_gold = bool(gold and gold.strip())
        if has_prediction and has_gold:
            if values_match(predicted, gold):
                self.tp += 1
            else:
                self.fp += 1
                self.fn += 1
        elif has_prediction:
            self.fp += 1
        elif has_gold:
            self.fn += 1

    def merge(self, other: "FieldCounts") -> None:
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn


def precision_recall_f1(tp: int, fp: int, fn: int) -> tuple[float, float, float]:
    """The paper's three effectiveness measures from raw counts."""
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


@dataclasses.dataclass
class MetricReport:
    """Micro-averaged metrics plus a per-field breakdown."""

    per_field: dict[str, FieldCounts]

    @property
    def micro_counts(self) -> FieldCounts:
        total = FieldCounts()
        for counts in self.per_field.values():
            total.merge(counts)
        return total

    @property
    def precision(self) -> float:
        counts = self.micro_counts
        return precision_recall_f1(counts.tp, counts.fp, counts.fn)[0]

    @property
    def recall(self) -> float:
        counts = self.micro_counts
        return precision_recall_f1(counts.tp, counts.fp, counts.fn)[1]

    @property
    def f1(self) -> float:
        counts = self.micro_counts
        return precision_recall_f1(counts.tp, counts.fp, counts.fn)[2]

    def field_f1(self, field: str) -> float:
        counts = self.per_field[field]
        return precision_recall_f1(counts.tp, counts.fp, counts.fn)[2]

    def field_metrics(self, field: str) -> tuple[float, float, float]:
        counts = self.per_field[field]
        return precision_recall_f1(counts.tp, counts.fp, counts.fn)

    def summary(self) -> dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def evaluate_extractions(
    predictions: Sequence[Mapping[str, str]],
    gold: Sequence[Mapping[str, str]],
    fields: Sequence[str],
) -> MetricReport:
    """Score predicted detail dicts against gold annotations.

    Args:
        predictions: one dict per objective (missing fields == ``""``).
        gold: the annotated details per objective.
        fields: the schema; only these fields are scored.
    """
    if len(predictions) != len(gold):
        raise ValueError(
            f"{len(predictions)} predictions vs {len(gold)} gold records"
        )
    per_field = {field: FieldCounts() for field in fields}
    for predicted, annotated in zip(predictions, gold):
        for field in fields:
            per_field[field].update(
                predicted.get(field, ""), annotated.get(field, "")
            )
    return MetricReport(per_field=per_field)
