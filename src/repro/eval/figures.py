"""ASCII bar charts for regenerating the paper's figures in a terminal."""

from __future__ import annotations

from collections.abc import Mapping


def render_bars(
    values: Mapping[str, float],
    title: str | None = None,
    width: int = 40,
    maximum: float | None = None,
    fmt: str = "{:.2f}",
) -> str:
    """Render a labeled horizontal bar chart.

    Args:
        values: label -> value (non-negative).
        title: optional chart title.
        width: bar width in characters for the maximum value.
        maximum: scale maximum (defaults to the largest value; use 1.0 for
            F1 scores so charts are comparable across panels).
        fmt: value format string.
    """
    if not values:
        return title or ""
    scale_max = maximum if maximum is not None else max(values.values())
    scale_max = max(scale_max, 1e-12)
    label_width = max(len(str(label)) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        if value < 0:
            raise ValueError(f"negative bar value for {label!r}: {value}")
        bar = "#" * int(round(width * min(value, scale_max) / scale_max))
        lines.append(
            f"{str(label).ljust(label_width)} | "
            f"{bar.ljust(width)} {fmt.format(value)}"
        )
    return "\n".join(lines)
