"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table (paper-style result tables)."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(headers[i]))
        for i in range(columns)
    ]

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(
            str(cell).ljust(widths[i]) for i, cell in enumerate(cells)
        )

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(separator))
    lines.append(format_row(headers))
    lines.append(separator)
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)
