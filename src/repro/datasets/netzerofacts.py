"""NetZeroFacts reconstruction: emission-goal sentences.

The paper uses 599 sentences extracted from the NetZeroFacts benchmark
(Wrzalik et al., 2024), each annotated with at least one of *target value*,
*reference year*, and *target year*. This generator produces emission-goal
sentences in the styles found in climate-related business reports, with
exactly that schema and size.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import NETZEROFACTS_FIELDS, AnnotatedObjective
from repro.datasets.base import Dataset

#: Paper Section 4.1: 599 annotated sentences.
NUM_SENTENCES = 599

_SCOPES = (
    "Scope 1 and 2 GHG emissions",
    "Scope 1, 2 and 3 emissions",
    "absolute greenhouse gas emissions",
    "CO2e emissions from our operations",
    "carbon emissions per tonne of product",
    "emission intensity of purchased electricity",
    "our total carbon footprint",
    "value chain emissions",
)

_COMPANY_REFERENCES = (
    "We", "The Group", "Our company", "The Company", "We at headquarters",
)

_NET_TARGETS = (
    "net-zero emissions",
    "net zero across our value chain",
    "carbon neutrality",
    "climate neutrality in our own operations",
)

_FILLERS = (
    "This target has been validated by the Science Based Targets initiative.",
    "Progress is reported annually in our climate disclosures.",
    "The target covers all consolidated subsidiaries.",
    "Interim milestones will be reviewed by the board.",
    "Our decarbonization roadmap prioritizes energy efficiency.",
)


def build_netzerofacts(seed: int = 0, size: int = NUM_SENTENCES) -> Dataset:
    """Build the NetZeroFacts reconstruction (599 emission-goal sentences)."""
    rng = np.random.default_rng(seed)

    def choice(pool):
        return pool[int(rng.integers(len(pool)))]

    sentences: list[AnnotatedObjective] = []
    for __ in range(size):
        target_year = str(int(rng.integers(2025, 2051)))
        reference_year = str(int(rng.integers(2010, 2023)))
        percent = int(rng.integers(20, 96))
        details: dict[str, str] = {}
        shape = int(rng.integers(6))

        if shape == 0:
            target_value = f"{percent}%"
            text = (
                f"{choice(_COMPANY_REFERENCES)} aim to reduce "
                f"{choice(_SCOPES)} by {target_value} by {target_year} "
                f"from a {reference_year} base year."
            )
            details = {
                "TargetValue": target_value,
                "ReferenceYear": reference_year,
                "TargetYear": target_year,
            }
        elif shape == 1:
            target_value = f"{percent} percent"
            text = (
                f"{choice(_COMPANY_REFERENCES)} commit to cutting "
                f"{choice(_SCOPES)} {target_value} by {target_year}, "
                f"compared with {reference_year} levels."
            )
            details = {
                "TargetValue": target_value,
                "ReferenceYear": reference_year,
                "TargetYear": target_year,
            }
        elif shape == 2:
            target_value = choice(_NET_TARGETS)
            text = (
                f"{choice(_COMPANY_REFERENCES)} have pledged to achieve "
                f"{target_value} by {target_year}."
            )
            details = {
                "TargetValue": target_value,
                "TargetYear": target_year,
            }
        elif shape == 3:
            target_value = f"{percent}%"
            text = (
                f"By {target_year}, {choice(_SCOPES)} will be reduced by "
                f"{target_value} relative to {reference_year}."
            )
            details = {
                "TargetValue": target_value,
                "ReferenceYear": reference_year,
                "TargetYear": target_year,
            }
        elif shape == 4:
            target_value = f"{percent}%"
            text = (
                f"Our near-term target is a {target_value} reduction in "
                f"{choice(_SCOPES)} by {target_year}."
            )
            details = {
                "TargetValue": target_value,
                "TargetYear": target_year,
            }
        else:
            target_value = choice(_NET_TARGETS)
            text = (
                f"The long-term ambition of reaching {target_value} by "
                f"{target_year} builds on a {reference_year} baseline "
                f"inventory."
            )
            details = {
                "TargetValue": target_value,
                "ReferenceYear": reference_year,
                "TargetYear": target_year,
            }

        if rng.random() < 0.25:
            text += f" {choice(_FILLERS)}"

        # NetZeroFacts annotations are near-complete; apply a light dropout
        # so "each ... annotated with AT LEAST one label" holds non-trivially.
        if len(details) > 1 and rng.random() < 0.08:
            drop = choice(sorted(details))
            details = {k: v for k, v in details.items() if k != drop}

        sentences.append(AnnotatedObjective(text=text, details=details))
    return Dataset("netzerofacts", NETZEROFACTS_FIELDS, sentences)
