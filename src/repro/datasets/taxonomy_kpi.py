"""EU-Taxonomy KPI disclosure sentences (Schmoll & Jatowt style).

Article 8 of the EU Taxonomy Regulation obliges companies to disclose the
Taxonomy-aligned share of three KPIs — turnover, capital expenditure, and
operating expenditure. Schmoll & Jatowt (PAPERS.md) extract these
disclosures from sustainability reports; this generator produces seeded
sentences with that schema. All annotated values are verbatim substrings
of the text, so Algorithm 1 weak labeling applies unchanged and the
sentences flow through :class:`repro.core.WeakSupervisionExtractor` as a
registered extraction task.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import TAXONOMY_KPI_FIELDS, AnnotatedObjective
from repro.datasets.base import Dataset

#: Default corpus size (three KPIs x ~160 disclosure sentences).
NUM_SENTENCES = 480

_KPIS = (
    "turnover",
    "revenue",
    "capital expenditure",
    "CapEx",
    "operating expenditure",
    "OpEx",
)

_QUALIFIERS = (
    "Taxonomy-aligned",
    "Taxonomy-eligible",
    "aligned with the EU Taxonomy",
)

_FILLERS = (
    "The assessment follows the technical screening criteria of the Climate Delegated Act.",
    "Figures were reviewed by our external auditor.",
    "The do-no-significant-harm analysis covers all activities.",
    "Minimum safeguards were assessed at group level.",
)


def build_taxonomy_kpi(seed: int = 0, size: int = NUM_SENTENCES) -> Dataset:
    """Build the EU-Taxonomy KPI extraction dataset (seeded, sized)."""
    rng = np.random.default_rng(seed)

    def choice(pool):
        return pool[int(rng.integers(len(pool)))]

    sentences: list[AnnotatedObjective] = []
    for __ in range(size):
        kpi = choice(_KPIS)
        fiscal_year = str(int(rng.integers(2020, 2027)))
        percent = int(rng.integers(1, 81))
        share = (
            f"{percent}%" if rng.random() < 0.7 else f"{percent} percent"
        )
        shape = int(rng.integers(5))

        if shape == 0:
            text = (
                f"In fiscal year {fiscal_year}, {share} of our {kpi} "
                f"was {choice(_QUALIFIERS)}."
            )
            details = {
                "Kpi": kpi,
                "AlignedShare": share,
                "FiscalYear": fiscal_year,
            }
        elif shape == 1:
            text = (
                f"{share} of total {kpi} qualified as Taxonomy-aligned "
                f"in {fiscal_year}."
            )
            details = {
                "Kpi": kpi,
                "AlignedShare": share,
                "FiscalYear": fiscal_year,
            }
        elif shape == 2:
            text = (
                f"Taxonomy-eligible {kpi} reached {share} of the group "
                f"total in {fiscal_year}."
            )
            details = {
                "Kpi": kpi,
                "AlignedShare": share,
                "FiscalYear": fiscal_year,
            }
        elif shape == 3:
            text = (
                f"Our {kpi} alignment under the EU Taxonomy stood at "
                f"{share} for the reporting year {fiscal_year}."
            )
            details = {
                "Kpi": kpi,
                "AlignedShare": share,
                "FiscalYear": fiscal_year,
            }
        else:
            # Disclosure without a named year (alignment share only).
            text = (
                f"The {choice(_QUALIFIERS)} share of {kpi} amounted "
                f"to {share}."
            )
            details = {"Kpi": kpi, "AlignedShare": share}

        if rng.random() < 0.2:
            text += f" {choice(_FILLERS)}"
        sentences.append(AnnotatedObjective(text=text, details=details))
    return Dataset("taxonomy-kpi", TAXONOMY_KPI_FIELDS, sentences)
