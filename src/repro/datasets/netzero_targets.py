"""ClimateBERT-NetZero-style target classification sentences.

Schimanski et al. (PAPERS.md) classify climate-target sentences into
*net-zero* targets, *reduction* targets, and non-target text. This
generator produces a seeded three-way classification corpus in the same
surface styles as the NetZeroFacts reconstruction: net-zero pledges,
percent-reduction commitments, and narrative report sentences that
mention climate without stating a target. The gold class is stored as
the single ``Label`` detail, so the corpus round-trips through the
standard :class:`~repro.datasets.base.Dataset` JSONL format.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import AnnotatedObjective
from repro.datasets.base import Dataset

#: Class names in label-id order.
NETZERO_TARGET_LABELS: tuple[str, ...] = ("net-zero", "reduction", "other")

#: The gold-class field of classification datasets.
LABEL_FIELD = "Label"

#: Default corpus size (~200 sentences per class).
NUM_SENTENCES = 600

_SUBJECTS = (
    "We", "The Group", "Our company", "The Company", "The board",
)

_NET_PLEDGES = (
    "net-zero emissions",
    "net zero across the value chain",
    "carbon neutrality",
    "climate neutrality in our own operations",
    "a net-zero carbon footprint",
)

_SCOPES = (
    "Scope 1 and 2 emissions",
    "Scope 3 emissions",
    "absolute greenhouse gas emissions",
    "our total carbon footprint",
    "emission intensity per unit of production",
)

_OTHER_SENTENCES = (
    "Climate-related risks are discussed in the governance section of this report.",
    "The sustainability committee met four times during the year.",
    "Energy prices affected operating costs across all segments.",
    "Our climate disclosures follow the TCFD recommendations.",
    "Stakeholder dialogues on environmental topics continued throughout the year.",
    "The materiality assessment was refreshed with external experts.",
    "Weather conditions impacted logistics in the first quarter.",
    "Employees received training on the updated travel policy.",
)


def build_netzero_targets(seed: int = 0, size: int = NUM_SENTENCES) -> Dataset:
    """Build the net-zero target classification dataset (seeded, sized)."""
    rng = np.random.default_rng(seed)

    def choice(pool):
        return pool[int(rng.integers(len(pool)))]

    sentences: list[AnnotatedObjective] = []
    for __ in range(size):
        target_year = str(int(rng.integers(2025, 2051)))
        base_year = str(int(rng.integers(2010, 2023)))
        percent = int(rng.integers(20, 96))
        cls = int(rng.integers(3))

        if cls == 0:
            shape = int(rng.integers(3))
            if shape == 0:
                text = (
                    f"{choice(_SUBJECTS)} have pledged to achieve "
                    f"{choice(_NET_PLEDGES)} by {target_year}."
                )
            elif shape == 1:
                text = (
                    f"{choice(_SUBJECTS)} commit to reaching "
                    f"{choice(_NET_PLEDGES)} no later than {target_year}."
                )
            else:
                text = (
                    f"The long-term ambition is {choice(_NET_PLEDGES)} "
                    f"by {target_year}, starting from a {base_year} "
                    f"baseline."
                )
            label = "net-zero"
        elif cls == 1:
            shape = int(rng.integers(3))
            if shape == 0:
                text = (
                    f"{choice(_SUBJECTS)} aim to reduce {choice(_SCOPES)} "
                    f"by {percent}% by {target_year} from a {base_year} "
                    f"base year."
                )
            elif shape == 1:
                text = (
                    f"{choice(_SUBJECTS)} will cut {choice(_SCOPES)} "
                    f"{percent} percent by {target_year} compared with "
                    f"{base_year} levels."
                )
            else:
                text = (
                    f"A {percent}% reduction in {choice(_SCOPES)} is "
                    f"targeted by {target_year}."
                )
            label = "reduction"
        else:
            text = choice(_OTHER_SENTENCES)
            label = "other"

        sentences.append(
            AnnotatedObjective(text=text, details={LABEL_FIELD: label})
        )
    return Dataset("netzero-target", (LABEL_FIELD,), sentences)
