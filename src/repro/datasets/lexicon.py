"""Surface-form pools for the sustainability-objective grammar.

The paper stresses that real objectives are "noisy, incomplete, and
heterogeneous, reflecting differences in reporting styles, terminology, and
levels of detail across organizations" (Section 3.2). These pools encode
that heterogeneity: ESG topics with their own qualifier phrases and verbs,
many amount/deadline/baseline surface forms, and distractor material
(statistic years, stray numbers, boilerplate clauses) that makes extraction
genuinely ambiguous.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Topic:
    """An ESG topic: compatible action verbs and qualifier phrases."""

    name: str
    verbs: tuple[str, ...]
    qualifiers: tuple[str, ...]
    amount_styles: tuple[str, ...]  # subset of AMOUNT_STYLES keys


#: Verbs shared across many topics (paper Table 6 shows this variety).
GENERIC_VERBS = (
    "Reduce",
    "Achieve",
    "Increase",
    "Improve",
    "Expand",
    "Implement",
    "Promote",
    "Develop",
    "Establish",
    "Strengthen",
    "Maintain",
    "Deliver",
    "Launch",
    "Support",
    "Integrate",
    "Accelerate",
    "Advance",
)

TOPICS: tuple[Topic, ...] = (
    Topic(
        name="emissions",
        verbs=(
            "Reduce", "Cut", "Lower", "Decrease", "Reach", "Achieve",
            "Eliminate", "Offset", "Halve",
        ),
        qualifiers=(
            "carbon emissions",
            "greenhouse gas emissions",
            "Scope 1 and 2 emissions",
            "Scope 3 emissions",
            "CO2 emissions across our operations",
            "absolute carbon emissions",
            "emission intensity of our products",
            "our carbon footprint",
            "fleet emissions",
            "net carbon emissions",
        ),
        amount_styles=("percent", "netzero", "absolute_tonnes"),
    ),
    Topic(
        name="energy",
        verbs=("Reduce", "Cut", "Source", "Procure", "Increase", "Switch to"),
        qualifiers=(
            "energy consumption",
            "electricity use at our facilities",
            "energy intensity per unit of production",
            "renewable electricity",
            "purchased electricity from renewable sources",
            "energy use in our data centers",
            "fossil fuel consumption",
        ),
        amount_styles=("percent", "percent_words"),
    ),
    Topic(
        name="water",
        verbs=("Reduce", "Restore", "Replenish", "Conserve", "Recycle"),
        qualifiers=(
            "global water use",
            "potable water intensity",
            "freshwater withdrawal",
            "water consumption at high-stress sites",
            "process water in manufacturing",
            "water used in our supply chain",
        ),
        amount_styles=("percent", "percent_words"),
    ),
    Topic(
        name="waste",
        verbs=(
            "Reduce", "Divert", "Eliminate", "Achieve", "Recycle", "Compost",
        ),
        qualifiers=(
            "landfill waste",
            "single-use plastics",
            "hazardous waste generation",
            "food waste across our restaurants",
            "Waste to Landfill",
            "packaging waste",
            "operational waste per site",
        ),
        amount_styles=("percent", "zero", "absolute_tonnes"),
    ),
    Topic(
        name="packaging",
        verbs=("Transition", "Convert", "Make", "Redesign", "Shift"),
        qualifiers=(
            "recyclable or reusable packaging",
            "PCR content in bottles",
            "plastic packaging",
            "consumer packaging to recycled materials",
            "virgin plastic in our packaging",
        ),
        amount_styles=("percent", "percent_words"),
    ),
    Topic(
        name="diversity",
        verbs=("Increase", "Promote", "Reach", "Improve", "Double"),
        qualifiers=(
            "representation of women in key leadership roles",
            "women in leadership positions",
            "proportion of women in management",
            "ethnic diversity in senior roles",
            "gender pay equity",
            "female representation on our board",
        ),
        amount_styles=("percent", "percent_words"),
    ),
    Topic(
        name="safety",
        verbs=("Reduce", "Achieve", "Lower", "Prevent", "Maintain"),
        qualifiers=(
            "lost-time injury rate",
            "risk of a serious incident or fatality",
            "recordable incident rate",
            "workplace accidents across all sites",
            "total recordable injuries",
        ),
        amount_styles=("percent", "zero"),
    ),
    Topic(
        name="supply_chain",
        verbs=("Audit", "Engage", "Assess", "Certify", "Expand", "Require"),
        qualifiers=(
            "key suppliers against our sustainability standards",
            "principles of sustainability and performance indicators",
            "supplier sustainability assessments",
            "responsibly sourced raw materials",
            "conflict-free sourcing of minerals",
            "traceability of our cocoa supply chain",
        ),
        amount_styles=("percent", "count_large"),
    ),
    Topic(
        name="community",
        verbs=("Empower", "Train", "Support", "Reach", "Invest in", "Donate"),
        qualifiers=(
            "smallholder farmers in low to middle income countries",
            "students in STEM awareness activities",
            "people through our digital skills programs",
            "local community projects",
            "volunteers engaged in community service",
            "beneficiaries of our health initiatives",
        ),
        amount_styles=("count_large", "currency"),
    ),
    Topic(
        name="biodiversity",
        verbs=("Protect", "Restore", "Plant", "Implement", "Preserve"),
        qualifiers=(
            "biodiversity protection plans at priority sites",
            "hectares of natural habitat",
            "trees across our operating regions",
            "deforestation-free supply chains",
            "sensitive natural areas near our sites",
        ),
        amount_styles=("count_large", "percent"),
    ),
    Topic(
        name="circularity",
        verbs=("Keep", "Reuse", "Refurbish", "Extend", "Recover"),
        qualifiers=(
            "products and materials in use",
            "refurbished devices returned to the market",
            "materials recovered through take-back programs",
            "product lifetime through repair services",
        ),
        amount_styles=("percent", "count_large"),
    ),
    Topic(
        name="governance",
        verbs=(
            "Integrate", "Align", "Define", "Publish", "Link", "Embed",
        ),
        qualifiers=(
            "sustainability information into our reporting cycle",
            "sustainability strategies, goals and policies",
            "executive remuneration with ESG performance",
            "climate risk into enterprise risk management",
            "sustainability criteria in investment decisions",
        ),
        amount_styles=(),  # governance objectives are typically unquantified
    ),
)

#: Compositional qualifier grammar: qualifier = [modifier] head [tail].
#: The cross product yields >100k distinct phrases, so most test-time
#: qualifiers are unseen *as sequences* even when every word was seen in
#: training — the lexical heterogeneity the paper emphasizes.
QUALIFIER_MODIFIERS = (
    "absolute", "total", "annual", "global", "operational", "direct",
    "indirect", "upstream", "downstream", "specific", "overall", "net",
    "relative", "average", "per-unit", "company-wide", "regional",
    "scope-related", "combined", "aggregate", "normalized", "baseline",
    "measured", "reported", "verified", "voluntary", "mandatory",
)

QUALIFIER_HEADS_BY_TOPIC: dict[str, tuple[str, ...]] = {
    "emissions": (
        "carbon emissions", "greenhouse gas emissions", "CO2 emissions",
        "methane emissions", "emission intensity", "carbon footprint",
        "fleet emissions", "process emissions", "fugitive emissions",
        "combustion emissions",
    ),
    "energy": (
        "energy consumption", "electricity use", "energy intensity",
        "renewable electricity", "fuel consumption", "power demand",
        "heating energy", "energy use", "grid electricity",
    ),
    "water": (
        "water use", "water consumption", "water intensity",
        "freshwater withdrawal", "water discharge", "process water",
        "potable water intensity", "wastewater volume",
    ),
    "waste": (
        "landfill waste", "hazardous waste", "food waste",
        "packaging waste", "operational waste", "plastic waste",
        "waste generation", "residual waste", "single-use plastics",
    ),
    "packaging": (
        "recyclable packaging", "plastic packaging", "PCR content",
        "virgin plastic", "packaging materials", "reusable packaging",
        "recycled content",
    ),
    "diversity": (
        "representation of women", "gender diversity", "pay equity",
        "female representation", "ethnic diversity",
        "women in leadership positions", "diversity of our workforce",
    ),
    "safety": (
        "injury rate", "incident rate", "workplace accidents",
        "lost-time injuries", "safety incidents", "recordable injuries",
        "occupational illnesses",
    ),
    "supply_chain": (
        "supplier assessments", "supplier audits", "sourcing standards",
        "responsibly sourced materials", "supplier certifications",
        "traceability coverage", "procurement practices",
    ),
    "community": (
        "community investment", "volunteer hours", "training programs",
        "digital skills programs", "health initiatives",
        "education partnerships", "local employment",
    ),
    "biodiversity": (
        "habitat restoration", "tree planting", "protected areas",
        "biodiversity protection plans", "natural habitat",
        "reforestation projects",
    ),
    "circularity": (
        "material recovery", "product take-back", "refurbished devices",
        "repair services", "recycled materials", "product lifetime",
    ),
    "governance": (
        "sustainability reporting", "ESG disclosures", "climate governance",
        "board oversight", "sustainability criteria", "risk integration",
    ),
}

#: Morphological long-tail vocabulary: compounds assembled from shared
#: sub-units. Each assembled compound is rare (often a hapax in a 1k-
#: objective corpus), but its *pieces* are shared — exactly the regime
#: where subword tokenization (Sennrich et al.) beats word-identity
#: features, which is the paper's stated reason for using BPE (§3.2).
COMPOUND_PREFIXES = (
    "re", "bio", "eco", "agro", "hydro", "photo", "thermo", "electro",
    "geo", "micro", "macro", "multi", "inter", "intra", "co", "de",
)

COMPOUND_STEMS = (
    "forestation", "mediation", "generation", "circulation", "filtration",
    "carbonization", "electrification", "mineralization", "gasification",
    "densification", "valorization", "granulation", "digestion",
    "fermentation", "distillation", "polymerization", "composting",
    "desalination", "sequestration", "remanufacturing",
)

COMPOUND_SUFFIX_UNITS = (
    "capacity", "throughput", "efficiency", "intensity", "coverage",
    "volumes", "output", "rates", "yield", "potential",
)

QUALIFIER_TAILS = (
    "across our operations",
    "in our supply chain",
    "at priority sites",
    "per unit of production",
    "at our facilities",
    "in manufacturing",
    "from purchased electricity",
    "across all business units",
    "in our own operations",
    "at high-risk locations",
    "per employee",
    "across key markets",
    "in our distribution network",
    "at company-owned sites",
    "throughout the value chain",
    "in water-stressed regions",
    "at our headquarters",
    "across our product portfolio",
)

#: Initiative names for "We co-founded {initiative}" style objectives.
INITIATIVES = (
    "The Climate Pledge",
    "the Science Based Targets initiative",
    "the UN Global Compact",
    "RE100",
    "the Ellen MacArthur Foundation's New Plastics Economy",
    "the Business Ambition for 1.5°C campaign",
    "the Responsible Business Alliance",
)

#: Sentence openers that precede the core objective (distractor prefixes).
PREFIXES = (
    "As part of our sustainability strategy, we will",
    "We are committed to",
    "Our ambition is to",
    "We aim to",
    "We pledge to",
    "Going forward, we intend to",
    "In line with the Paris Agreement, we will",
    "Together with our partners, we plan to",
    "We have set a target to",
)

#: Trailing clauses appended after the core objective (distractor suffixes).
SUFFIXES = (
    "as verified by an independent third party",
    "in collaboration with our suppliers",
    "across all business units",
    "supported by our science-based roadmap",
    "in every market where we operate",
    "while continuing to grow our business",
    "as disclosed in our annual ESG report",
)

#: Narrative sentences that contain NO objective (noise blocks and
#: multi-sentence padding). Some deliberately contain years and numbers.
NARRATIVE_SENTENCES = (
    "Climate change is one of the world's greatest crises, and addressing it requires joint action.",
    "Our stakeholders increasingly expect transparent disclosure of environmental data.",
    "Sustainability is embedded in our corporate values and daily decision making.",
    "The board reviews environmental performance on a quarterly basis.",
    "Last year we published our first integrated annual report.",
    "Our company was founded in 1987 and today operates in 43 countries.",
    "The materiality assessment identified twelve priority topics.",
    "We engage regularly with investors, regulators, and community representatives.",
    "In 2021, extreme weather events affected several of our production sites.",
    "Employees completed more than 120,000 hours of training during the year.",
    "The sustainability committee met 6 times over the reporting period.",
    "Reducing environmental impact while growing the business remains a complex challenge.",
    "Our products are sold in over 150 markets worldwide.",
    "The report has been prepared in accordance with the GRI Standards.",
    "Voluntary turnover decreased compared to the previous reporting period.",
    "We operate 27 manufacturing facilities across three continents.",
    "Customer satisfaction scores improved for the third consecutive year.",
    "External assurance was provided for selected indicators.",
    "Our supply chain spans more than 5,000 direct suppliers.",
    "Digital transformation continued to reshape how we serve customers.",
)

#: Statistic sentences: contain numbers/years but are NOT objectives — the
#: hard negatives that confuse naive extractors.
STATISTIC_SENTENCES = (
    "Voluntary turnover rate in {stat_year}: {small_percent}%",
    "In {stat_year}, women represented {small_percent}% of our total workforce.",
    "Our renewable share stood at {small_percent}% at the end of {stat_year}.",
    "Total energy consumption was {big_number} MWh in {stat_year}.",
    "We recycled {small_percent}% of operational waste in {stat_year}.",
    "Charitable donations totalled {big_number} dollars during {stat_year}.",
)

#: Surnames/adjectives for synthetic company names.
COMPANY_ADJECTIVES = (
    "Global", "United", "Northern", "Pacific", "Apex", "Summit", "Vertex",
    "Blue", "Green", "Silver", "First", "Prime", "Atlas", "Nova", "Delta",
    "Crown", "Pioneer", "Heritage", "Horizon", "Solar", "Allied", "Central",
    "Royal", "Eastern", "Western", "Quantum", "Sterling", "Cobalt",
)

COMPANY_NOUNS = (
    "Industries", "Energy", "Foods", "Logistics", "Materials", "Pharma",
    "Retail", "Chemicals", "Textiles", "Motors", "Electronics", "Packaging",
    "Beverages", "Mining", "Utilities", "Airlines", "Telecom", "Holdings",
    "Cement", "Paper", "Apparel", "Semiconductors", "Shipping", "Banking",
)

COMPANY_SUFFIXES = ("AG", "Inc.", "Group", "plc", "Ltd.", "Corp.", "SA")
