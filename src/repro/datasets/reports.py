"""Multi-page sustainability report generator and the deployment corpus.

The deployment experiments (paper Section 5) run GoalSpotter over 380
sustainability reports from 14 companies — 37,871 pages yielding 3,580
objectives (Table 5). Reports are sequences of pages; pages are sequences of
text blocks; a block either contains a sustainability objective or
narrative noise. :func:`build_deployment_corpus` reproduces Table 5's
per-company document/page/objective counts exactly (scaled by ``scale`` for
fast tests).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.schema import AnnotatedObjective
from repro.datasets import lexicon
from repro.datasets.generator import GeneratorConfig, ObjectiveGenerator


@dataclasses.dataclass(frozen=True)
class TextBlock:
    """One block of report text, optionally carrying an objective."""

    text: str
    is_objective: bool
    details: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class Page:
    """A report page: an ordered list of text blocks."""

    blocks: list[TextBlock]


@dataclasses.dataclass
class SustainabilityReport:
    """A multi-page sustainability report of one company.

    ``reporting_year`` is the fiscal/reporting year the report covers
    (``None`` for the single-snapshot corpora); multi-year panels set it
    so downstream records carry year provenance into the objective store
    and knowledge graph.
    """

    company: str
    report_id: str
    pages: list[Page]
    reporting_year: int | None = None

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    def blocks(self) -> list[TextBlock]:
        return [block for page in self.pages for block in page.blocks]

    def objectives(self) -> list[AnnotatedObjective]:
        """Ground-truth objectives contained in this report."""
        return [
            AnnotatedObjective(
                text=block.text,
                details=block.details,
                company=self.company,
                report_id=self.report_id,
            )
            for block in self.blocks()
            if block.is_objective
        ]


#: Paper Table 5: (company, #documents, #pages, #objectives).
DEPLOYMENT_COMPANIES: tuple[tuple[str, int, int, int], ...] = (
    ("C1", 20, 2131, 150),
    ("C2", 18, 3172, 642),
    ("C3", 41, 3560, 447),
    ("C4", 19, 2488, 102),
    ("C5", 17, 1298, 113),
    ("C6", 29, 3278, 343),
    ("C7", 23, 2208, 247),
    ("C8", 22, 5012, 764),
    ("C9", 64, 4791, 379),
    ("C10", 16, 1202, 79),
    ("C11", 17, 1229, 95),
    ("C12", 64, 1721, 71),
    ("C13", 18, 3250, 105),
    ("C14", 12, 2531, 43),
)


class ReportGenerator:
    """Generates reports with a target number of pages and objectives."""

    def __init__(
        self,
        seed: int | np.random.Generator = 0,
        objective_config: GeneratorConfig | None = None,
        noise_blocks_per_page: float = 1.2,
    ) -> None:
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.objective_generator = ObjectiveGenerator(
            objective_config, self.rng
        )
        self.noise_blocks_per_page = noise_blocks_per_page

    def _noise_block(self) -> TextBlock:
        """A narrative or statistic block that is not an objective."""
        if self.rng.random() < 0.22:
            template = lexicon.STATISTIC_SENTENCES[
                int(self.rng.integers(len(lexicon.STATISTIC_SENTENCES)))
            ]
            text = template.format(
                stat_year=int(self.rng.integers(2017, 2024)),
                small_percent=round(float(self.rng.uniform(1.5, 48.0)), 1),
                big_number=f"{int(self.rng.integers(10, 900)) * 1000:,}",
            )
        else:
            count = 1 + int(self.rng.random() < 0.35)
            picks = self.rng.choice(
                len(lexicon.NARRATIVE_SENTENCES), size=count, replace=False
            )
            text = " ".join(
                lexicon.NARRATIVE_SENTENCES[int(i)] for i in picks
            )
        return TextBlock(text=text, is_objective=False)

    def _objective_block(self) -> TextBlock:
        objective = self.objective_generator.generate()
        return TextBlock(
            text=objective.text,
            is_objective=True,
            details=dict(objective.details),
        )

    def generate_report(
        self,
        company: str,
        report_id: str,
        num_pages: int,
        num_objectives: int,
    ) -> SustainabilityReport:
        """Generate one report with exact page and objective counts."""
        if num_pages <= 0:
            raise ValueError("a report needs at least one page")
        # Spread objectives over pages uniformly at random.
        page_of_objective = self.rng.integers(num_pages, size=num_objectives)
        objectives_per_page = np.bincount(
            page_of_objective, minlength=num_pages
        )
        pages: list[Page] = []
        for page_index in range(num_pages):
            blocks: list[TextBlock] = []
            num_noise = 1 + int(
                self.rng.poisson(max(self.noise_blocks_per_page - 1, 0.1))
            )
            for __ in range(num_noise):
                blocks.append(self._noise_block())
            for __ in range(int(objectives_per_page[page_index])):
                position = int(self.rng.integers(len(blocks) + 1))
                blocks.insert(position, self._objective_block())
            pages.append(Page(blocks=blocks))
        return SustainabilityReport(
            company=company, report_id=report_id, pages=pages
        )


def build_deployment_corpus(
    seed: int = 0,
    scale: float = 1.0,
    objective_config: GeneratorConfig | None = None,
) -> list[SustainabilityReport]:
    """Build the Table 5 deployment corpus.

    Args:
        seed: RNG seed.
        scale: multiplier on documents/pages/objectives — use < 1 for fast
            tests; 1.0 reproduces Table 5 exactly (380 docs, 37,871 pages,
            3,580 objectives).
        objective_config: optional grammar override for objective blocks.

    Returns:
        All reports across the 14 companies.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    generator = ReportGenerator(rng, objective_config)
    reports: list[SustainabilityReport] = []
    for company, num_docs, num_pages, num_objectives in DEPLOYMENT_COMPANIES:
        docs = max(1, int(round(num_docs * scale)))
        pages_total = max(docs, int(round(num_pages * scale)))
        objectives_total = max(1, int(round(num_objectives * scale)))
        # Distribute pages and objectives across the company's documents.
        page_split = _split_total(pages_total, docs, rng, minimum=1)
        objective_split = _split_total(objectives_total, docs, rng, minimum=0)
        for doc_index in range(docs):
            reports.append(
                generator.generate_report(
                    company=company,
                    report_id=f"{company}-doc-{doc_index:03d}",
                    num_pages=int(page_split[doc_index]),
                    num_objectives=int(objective_split[doc_index]),
                )
            )
    return reports


def _split_total(
    total: int, parts: int, rng: np.random.Generator, minimum: int
) -> np.ndarray:
    """Randomly split ``total`` into ``parts`` non-negative integers that
    sum exactly to ``total`` with each part >= ``minimum``."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < minimum * parts:
        raise ValueError("total too small for the per-part minimum")
    remaining = total - minimum * parts
    if remaining == 0:
        return np.full(parts, minimum)
    weights = rng.dirichlet(np.ones(parts))
    allocation = np.floor(weights * remaining).astype(int)
    shortfall = remaining - int(allocation.sum())
    for __ in range(shortfall):
        allocation[int(rng.integers(parts))] += 1
    return allocation + minimum


def corpus_summary(
    reports: list[SustainabilityReport],
) -> list[tuple[str, int, int, int]]:
    """Per-company (documents, pages, true objectives) — Table 5's shape."""
    stats: dict[str, list[int]] = {}
    for report in reports:
        row = stats.setdefault(report.company, [0, 0, 0])
        row[0] += 1
        row[1] += report.num_pages
        row[2] += sum(1 for block in report.blocks() if block.is_objective)
    return [
        (company, docs, pages, objectives)
        for company, (docs, pages, objectives) in stats.items()
    ]
