"""Sustainability-initiative sentence classification corpus.

Hirlea et al. (PAPERS.md) classify report sentences by the kind of
sustainability initiative they describe. This generator produces a seeded
four-way corpus — *environmental*, *social*, and *governance* initiative
sentences plus *none* for ordinary business text — with the gold class in
the ``Label`` detail, the same classification-dataset convention as
:mod:`repro.datasets.netzero_targets`.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import AnnotatedObjective
from repro.datasets.base import Dataset
from repro.datasets.netzero_targets import LABEL_FIELD

#: Class names in label-id order.
INITIATIVE_LABELS: tuple[str, ...] = (
    "environmental",
    "social",
    "governance",
    "none",
)

#: Default corpus size (~160 sentences per class).
NUM_SENTENCES = 640

_ENVIRONMENTAL = (
    "We installed solar panels on {n} distribution centers this year.",
    "A new recycling program diverted {n} tonnes of waste from landfill.",
    "The company planted {n} hectares of native forest near its plants.",
    "Water consumption was lowered through closed-loop cooling at {n} sites.",
    "We switched {n} delivery routes to electric vehicles.",
    "Biodiversity surveys were completed at {n} production locations.",
)

_SOCIAL = (
    "We funded scholarships for {n} students from local communities.",
    "Employees completed {n} hours of health and safety training.",
    "A mentoring program paired {n} apprentices with senior staff.",
    "The diversity network grew to {n} active members across regions.",
    "We donated {n} meals through the community food bank partnership.",
    "Parental leave was extended for all {n} eligible employees.",
)

_GOVERNANCE = (
    "The board adopted a revised anti-corruption policy covering {n} markets.",
    "An independent ethics hotline handled {n} reports this year.",
    "Supplier audits against the code of conduct covered {n} vendors.",
    "The audit committee reviewed {n} internal control findings.",
    "We published our {n}th annual tax transparency statement.",
    "Whistleblower protections were strengthened across {n} subsidiaries.",
)

_NONE = (
    "Quarterly revenue grew across most product categories.",
    "The annual general meeting took place in May.",
    "Currency effects reduced reported operating profit.",
    "A new warehouse opened near the regional airport.",
    "The product roadmap was presented to institutional investors.",
    "Seasonal demand patterns matched prior-year expectations.",
)

_POOLS = {
    "environmental": _ENVIRONMENTAL,
    "social": _SOCIAL,
    "governance": _GOVERNANCE,
    "none": _NONE,
}


def build_initiative_sentences(
    seed: int = 0, size: int = NUM_SENTENCES
) -> Dataset:
    """Build the initiative sentence classification dataset."""
    rng = np.random.default_rng(seed)

    sentences: list[AnnotatedObjective] = []
    for __ in range(size):
        label = INITIATIVE_LABELS[int(rng.integers(len(INITIATIVE_LABELS)))]
        pool = _POOLS[label]
        template = pool[int(rng.integers(len(pool)))]
        text = template.format(n=int(rng.integers(5, 500)))
        sentences.append(
            AnnotatedObjective(text=text, details={LABEL_FIELD: label})
        )
    return Dataset("initiative-sentence", (LABEL_FIELD,), sentences)
