"""Grammar-based generator of annotated sustainability objectives.

Each generated objective is an :class:`~repro.core.schema.AnnotatedObjective`
whose annotation values are *exact substrings* of the text (modulo the
controlled annotation-noise knobs below), matching how the paper's domain
experts annotate: they copy the detail out of the objective.

Realism knobs reproducing the paper's observations:

* **field availability** — independent per-field presence probabilities;
  the Sustainability Goals builder sets these to the paper's marginals
  (Action 85%, Baseline 14%, Deadline 34%).
* **annotation dropout** — a detail present in the text may be left
  unannotated ("the annotations might not contain all key details",
  Example 6).
* **qualifier truncation** — experts sometimes annotate a clipped
  qualifier (visible in the paper's own Table 6: "...in leadership
  positions at").
* **statistic years** — sentences like "Voluntary turnover rate in 2021:
  8.1%" contain a year that is *neither* baseline nor deadline.
* **multi-target sentences** — two objectives in one sentence with only
  the first annotated, which the paper reports as a failure mode.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.schema import SUSTAINABILITY_FIELDS, AnnotatedObjective
from repro.datasets import lexicon


@dataclasses.dataclass(frozen=True)
class GeneratorConfig:
    """Probabilities steering the objective grammar."""

    p_action: float = 0.88
    p_amount: float = 0.72
    p_qualifier: float = 0.82
    p_baseline: float = 0.17
    p_deadline: float = 0.42
    p_prefix: float = 0.30
    p_suffix: float = 0.18
    p_context_sentence: float = 0.35
    p_multi_target: float = 0.26
    annotation_dropout: float = 0.06
    qualifier_truncation: float = 0.05
    typo_rate: float = 0.04
    annotation_divergence: float = 0.02
    deadline_years: tuple[int, int] = (2024, 2046)
    baseline_years: tuple[int, int] = (2010, 2023)
    statistic_years: tuple[int, int] = (2018, 2024)


def _gerund(verb: str) -> str:
    """Approximate English gerund: Reduce -> reducing, Cut -> cutting."""
    word = verb.split()[0]
    rest = verb[len(word):]
    lower = word.lower()
    if lower.endswith("e") and not lower.endswith(("ee", "ye")):
        stem = lower[:-1] + "ing"
    elif (
        3 <= len(lower) <= 4  # short CVC verbs: cut, plan (not empower)
        and lower[-1] not in "aeiouwxy"
        and lower[-2] in "aeiou"
        and lower[-3] not in "aeiou"
    ):
        stem = lower + lower[-1] + "ing"
    else:
        stem = lower + "ing"
    return stem + rest


class ObjectiveGenerator:
    """Seeded generator of heterogeneous annotated objectives."""

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    # -- random helpers ------------------------------------------------------

    def _choice(self, pool):
        return pool[int(self.rng.integers(len(pool)))]

    def _flip(self, probability: float) -> bool:
        return bool(self.rng.random() < probability)

    def _year(self, bounds: tuple[int, int]) -> str:
        return str(int(self.rng.integers(bounds[0], bounds[1])))

    # -- value realization ------------------------------------------------------

    def _make_amount(self, styles: tuple[str, ...]) -> str:
        style = self._choice(styles) if styles else "percent"
        if style == "percent":
            return f"{int(self.rng.integers(5, 96))}%"
        if style == "percent_words":
            return f"{int(self.rng.integers(5, 96))} percent"
        if style == "netzero":
            return self._choice(("net-zero", "net zero", "carbon neutral"))
        if style == "zero":
            return self._choice(("Zero", "zero"))
        if style == "absolute_tonnes":
            quantity = self._choice(("1.5 million", "500,000", "2 million"))
            return f"{quantity} tonnes"
        if style == "count_large":
            return self._choice(
                ("100 million", "1 million", "10,000", "250", "500", "25,000")
            )
        if style == "currency":
            return self._choice(
                ("$50 million", "$10 million", "$250 million", "$1 billion")
            )
        raise ValueError(f"unknown amount style {style!r}")

    def _make_qualifier(self, topic: lexicon.Topic) -> str:
        """Compose a qualifier phrase: [modifier] head [tail].

        70% of qualifiers are compositional (the cross product is large, so
        test-time phrases are mostly unseen sequences); 30% come from the
        topic's fixed idiomatic pool.
        """
        if self._flip(0.3):
            return self._choice(topic.qualifiers)
        heads = lexicon.QUALIFIER_HEADS_BY_TOPIC.get(
            topic.name, topic.qualifiers
        )
        parts: list[str] = []
        if self._flip(0.55):
            parts.append(self._choice(lexicon.QUALIFIER_MODIFIERS))
        if self._flip(0.3):
            # Long-tail morphological compound head ("biofiltration
            # capacity"): the compound itself is rare, its subword pieces
            # are shared — the regime where BPE models stay robust while
            # word-identity features see an unknown token.
            compound = self._choice(
                lexicon.COMPOUND_PREFIXES
            ) + self._choice(lexicon.COMPOUND_STEMS)
            parts.append(compound)
            parts.append(self._choice(lexicon.COMPOUND_SUFFIX_UNITS))
        else:
            parts.append(self._choice(heads))
        if self._flip(0.5):
            parts.append(self._choice(lexicon.QUALIFIER_TAILS))
        return self._maybe_typo(" ".join(parts))

    def _make_verb(self, topic: lexicon.Topic) -> str:
        """Pick an action verb with a Zipf-skewed distribution.

        The skew makes some verbs rare, so test splits contain verbs seen
        only a handful of times in training — lexical long-tail realism.
        """
        verbs = topic.verbs + lexicon.GENERIC_VERBS
        rank = int(self.rng.zipf(1.6)) - 1
        return verbs[min(rank, len(verbs) - 1)]

    def _maybe_typo(self, phrase: str) -> str:
        """PDF-extraction artifacts: drop or double a letter in one long
        word of the phrase. Applied to *values before assembly*, so the
        annotation copies the corrupted surface form (the expert copies
        what the report says) and exact matching is unaffected — the typo
        only adds out-of-vocabulary surface forms."""
        if not self._flip(self.config.typo_rate):
            return phrase
        words = phrase.split()
        candidates = [i for i, w in enumerate(words) if len(w) >= 8]
        if not candidates:
            return phrase
        index = candidates[int(self.rng.integers(len(candidates)))]
        word = words[index]
        position = int(self.rng.integers(1, len(word) - 1))
        if self._flip(0.5):
            word = word[:position] + word[position + 1:]  # dropped letter
        else:
            word = word[:position] + word[position] + word[position:]
        words[index] = word
        return " ".join(words)

    def _truncate_qualifier(self, qualifier: str) -> str:
        words = qualifier.split()
        if len(words) <= 3:
            return qualifier
        keep = int(self.rng.integers(2, len(words)))
        return " ".join(words[:keep])

    # -- clause builders ------------------------------------------------------

    def _deadline_clause(self, year: str) -> str:
        pattern = self._choice(
            (
                "by {year}",
                "by the end of {year}",
                "before {year}",
                "no later than {year}",
                "until {year}",
            )
        )
        return pattern.format(year=year)

    def _baseline_clause(self, year: str) -> str:
        pattern = self._choice(
            (
                "(baseline {year})",
                "against a {year} baseline",
                "compared to {year} levels",
                "from a {year} base year",
                "relative to {year}",
            )
        )
        return pattern.format(year=year)

    # -- core assembly ------------------------------------------------------

    def _assemble_core(
        self,
        topic: lexicon.Topic,
        fields: set[str],
        values: dict[str, str],
        allow_prefix: bool,
    ) -> tuple[str, dict[str, str]]:
        """Build the core objective clause and its annotations."""
        annotations: dict[str, str] = {}
        action = values.get("Action", "")
        amount = values.get("Amount", "")
        qualifier = values.get("Qualifier", "")

        if "Action" not in fields:
            # Statistic-style objective without a verb.
            if self._flip(0.5) and qualifier:
                stat_year = self._year(self.config.statistic_years)
                shown = qualifier.capitalize()
                core = f"{shown} in {stat_year}: {amount}"
                annotations["Qualifier"] = shown
            elif qualifier:
                core = f"{amount} {qualifier}"
                annotations["Qualifier"] = qualifier
            else:
                core = f"{amount} achieved across our operations"
            annotations["Amount"] = amount
            return core, annotations

        use_prefix = allow_prefix and self._flip(self.config.p_prefix)
        if use_prefix:
            prefix = self._choice(lexicon.PREFIXES)
            if prefix.endswith(" to"):
                verb_form = (
                    _gerund(action) if self._flip(0.4) else action.lower()
                )
            else:
                verb_form = action.lower()
            lead = f"{prefix} {verb_form}"
        else:
            verb_form = action
            lead = verb_form

        annotations["Action"] = verb_form

        shape = int(self.rng.integers(4))
        if "Amount" in fields and "Qualifier" in fields:
            if shape == 0:
                core = f"{lead} {qualifier} by {amount}"
            elif shape == 1:
                core = f"{lead} {amount} of {qualifier}"
            elif shape == 2:
                core = f"{lead} {amount} {qualifier}"
            else:
                core = f"{lead} our {qualifier} by {amount}"
            annotations["Amount"] = amount
            annotations["Qualifier"] = qualifier
        elif "Amount" in fields:
            core = f"{lead} {amount} across the company"
            annotations["Amount"] = amount
        elif "Qualifier" in fields:
            core = f"{lead} {qualifier}"
            annotations["Qualifier"] = qualifier
        else:
            core = f"{lead} our sustainability performance"
        return core, annotations

    # -- public API ------------------------------------------------------

    def _sample_fields(self, topic: lexicon.Topic) -> set[str]:
        """Sample which key details this clause contains."""
        config = self.config
        fields: set[str] = set()
        if self._flip(config.p_action):
            fields.add("Action")
        if topic.amount_styles and self._flip(config.p_amount):
            fields.add("Amount")
        if self._flip(config.p_qualifier):
            fields.add("Qualifier")
        if self._flip(config.p_deadline):
            fields.add("Deadline")
        if self._flip(config.p_baseline):
            fields.add("Baseline")
        # An objective with no action needs something quantified to exist.
        if "Action" not in fields:
            if not topic.amount_styles:
                fields.add("Action")  # governance topics always have a verb
            else:
                fields.add("Amount")
                fields.discard("Baseline")
                fields.discard("Deadline")
        return fields

    def _make_clause(
        self,
        topic: lexicon.Topic,
        force_amount: bool | None = None,
        allow_prefix: bool = True,
    ) -> tuple[str, dict[str, str]]:
        """One full objective clause: core + optional timeline clauses.

        Args:
            force_amount: force the Amount field present (True) or absent
                (False); None samples it from the config.
        """
        config = self.config
        fields = self._sample_fields(topic)
        if force_amount is True and topic.amount_styles:
            fields.add("Amount")
            fields.discard("Action") if False else None
        elif force_amount is False:
            fields.discard("Amount")
            fields.add("Action")  # a clause needs an anchor

        values: dict[str, str] = {}
        values["Action"] = self._make_verb(topic)
        if topic.amount_styles:
            values["Amount"] = self._make_amount(topic.amount_styles)
        values["Qualifier"] = self._make_qualifier(topic)

        deadline_year = self._year(config.deadline_years)
        baseline_year = self._year(config.baseline_years)
        annotations: dict[str, str] = {}

        # Deadline-first construction ("By 2023, we will install ...").
        deadline_first = (
            "Deadline" in fields and "Action" in fields and self._flip(0.25)
        )
        if deadline_first:
            action = values["Action"]
            verb_form = f"will {action.lower()}"
            parts = [verb_form]
            if "Amount" in fields:
                parts.append(values["Amount"])
                annotations["Amount"] = values["Amount"]
            if "Qualifier" in fields:
                parts.append(values["Qualifier"])
                annotations["Qualifier"] = values["Qualifier"]
            core = f"By {deadline_year}, we " + " ".join(parts)
            # Annotation style varies between experts: sometimes the modal
            # is included in the Action value (paper Table 7, C13).
            annotations["Action"] = (
                verb_form if self._flip(0.5) else action.lower()
            )
            annotations["Deadline"] = deadline_year
            if "Baseline" in fields:
                core += f", {self._baseline_clause(baseline_year)}"
                annotations["Baseline"] = baseline_year
        else:
            core, annotations = self._assemble_core(
                topic, fields, values, allow_prefix=allow_prefix
            )
            if "Deadline" in fields:
                core += f" {self._deadline_clause(deadline_year)}"
                annotations["Deadline"] = deadline_year
            if "Baseline" in fields:
                core += f" {self._baseline_clause(baseline_year)}"
                annotations["Baseline"] = baseline_year
        return core, annotations

    def generate(self) -> AnnotatedObjective:
        """Generate one annotated objective (possibly multi-target)."""
        config = self.config
        topic = self._choice(lexicon.TOPICS)
        primary_core, primary_annotations = self._make_clause(topic)
        clauses = [(primary_core, primary_annotations)]

        # Multi-target sentences: a second objective clause in the same
        # sentence. The expert annotates the *quantified* clause (the one
        # with an Amount) regardless of its position — a global decision
        # that local token features cannot reproduce, matching the paper's
        # observation that multi-target objectives confuse extractors.
        if self._flip(config.p_multi_target):
            other_topic = self._choice(lexicon.TOPICS)
            primary_has_amount = "Amount" in primary_annotations
            force = (not primary_has_amount) if self._flip(0.75) else None
            secondary = self._make_clause(
                other_topic, force_amount=force, allow_prefix=False
            )
            clauses.append(secondary)
            if self._flip(0.5):
                clauses.reverse()

        if len(clauses) == 1:
            sentence = clauses[0][0]
        else:
            first, second = clauses[0][0], clauses[1][0]
            lowered_second = second[0].lower() + second[1:]
            # Keep the second clause's annotations consistent with its
            # lowercased surface form (its Action often leads the clause).
            second_annotations = {
                field: (value[0].lower() + value[1:])
                if value and second.startswith(value)
                else value
                for field, value in clauses[1][1].items()
            }
            clauses[1] = (lowered_second, second_annotations)
            sentence = f"{first}, and {lowered_second}"

        # Expert rule: annotate the clause with an Amount; ties and
        # amount-less sentences fall back to the first clause.
        quantified = [i for i, (__, ann) in enumerate(clauses) if ann.get("Amount")]
        annotated_index = quantified[0] if len(quantified) == 1 else 0
        annotations = dict(clauses[annotated_index][1])
        if self._flip(config.p_suffix):
            sentence += f" {self._choice(lexicon.SUFFIXES)}"
        sentence += "."

        # Context sentence before the objective (block-level noise).
        if self._flip(config.p_context_sentence):
            sentence = f"{self._choice(lexicon.NARRATIVE_SENTENCES)} {sentence}"

        # Annotation noise: dropout, qualifier truncation, and divergence
        # (the expert normalizes while the text keeps its surface form —
        # the lexically-different annotations the paper's exact matcher
        # misses and its proposed fuzzy matching would recover, §5.3).
        final_annotations: dict[str, str] = {}
        for field, value in annotations.items():
            if self._flip(config.annotation_dropout):
                continue
            if field == "Qualifier" and self._flip(
                config.qualifier_truncation
            ):
                value = self._truncate_qualifier(value)
            if field in ("Action", "Qualifier") and self._flip(
                config.annotation_divergence
            ):
                value = value.lower() if value != value.lower() else (
                    value.capitalize()
                )
            final_annotations[field] = value

        return AnnotatedObjective(text=sentence, details=final_annotations)

    def generate_many(self, count: int) -> list[AnnotatedObjective]:
        """Generate ``count`` objectives."""
        return [self.generate() for __ in range(count)]


def make_company_name(rng: np.random.Generator) -> str:
    """A plausible synthetic company name."""
    adjective = lexicon.COMPANY_ADJECTIVES[
        int(rng.integers(len(lexicon.COMPANY_ADJECTIVES)))
    ]
    noun = lexicon.COMPANY_NOUNS[int(rng.integers(len(lexicon.COMPANY_NOUNS)))]
    suffix = lexicon.COMPANY_SUFFIXES[
        int(rng.integers(len(lexicon.COMPANY_SUFFIXES)))
    ]
    return f"{adjective} {noun} {suffix}"


__all__ = [
    "GeneratorConfig",
    "ObjectiveGenerator",
    "SUSTAINABILITY_FIELDS",
    "make_company_name",
]
