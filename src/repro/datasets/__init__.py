"""Synthetic corpora reproducing the paper's datasets.

The paper evaluates on a proprietary *Sustainability Goals* dataset (1106
objectives from 718 reports of 422 companies, with field availability
Action 85%, Baseline 14%, Deadline 34%) and on a 599-sentence slice of the
public *NetZeroFacts* benchmark. Neither is shippable/available offline, so
this package provides seeded generators that reproduce their published
statistics — sizes, field-availability marginals, heterogeneity — on top of
a grammar of realistic sustainability-objective surface forms.

Deployment experiments (paper Tables 5–7) additionally need multi-page
reports; :mod:`repro.datasets.reports` generates those with exactly the
per-company document/page counts of Table 5.
"""

from repro.datasets.base import Dataset, train_test_split
from repro.datasets.generator import GeneratorConfig, ObjectiveGenerator
from repro.datasets.sustainability import (
    CompanyPanel,
    InjectedDrift,
    PANEL_DRIFT_KINDS,
    PanelGoal,
    build_company_panel,
    build_sustainability_goals,
    panel_records,
)
from repro.datasets.netzerofacts import build_netzerofacts
from repro.datasets.taxonomy_kpi import build_taxonomy_kpi
from repro.datasets.netzero_targets import (
    LABEL_FIELD,
    NETZERO_TARGET_LABELS,
    build_netzero_targets,
)
from repro.datasets.initiatives import (
    INITIATIVE_LABELS,
    build_initiative_sentences,
)
from repro.datasets.reports import (
    DEPLOYMENT_COMPANIES,
    ReportGenerator,
    SustainabilityReport,
    TextBlock,
    build_deployment_corpus,
)

__all__ = [
    "CompanyPanel",
    "DEPLOYMENT_COMPANIES",
    "Dataset",
    "GeneratorConfig",
    "INITIATIVE_LABELS",
    "InjectedDrift",
    "LABEL_FIELD",
    "NETZERO_TARGET_LABELS",
    "ObjectiveGenerator",
    "PANEL_DRIFT_KINDS",
    "PanelGoal",
    "ReportGenerator",
    "SustainabilityReport",
    "TextBlock",
    "build_company_panel",
    "build_deployment_corpus",
    "build_initiative_sentences",
    "build_netzero_targets",
    "build_netzerofacts",
    "build_sustainability_goals",
    "build_taxonomy_kpi",
    "panel_records",
    "train_test_split",
]
