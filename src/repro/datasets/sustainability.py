"""The *Sustainability Goals* dataset reconstruction.

The paper's proprietary dataset: 1106 sustainability objectives collected
from 718 reports of 422 companies, annotated with Action / Amount /
Qualifier / Baseline / Deadline. Published marginals: Action is annotated
for 85% of data points, Baseline for 14%, Deadline for 34% (Section 4.3).
This builder reproduces those statistics with the grammar generator and
attaches company/report provenance with the paper's fan-out.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.datasets.base import Dataset
from repro.datasets.generator import (
    GeneratorConfig,
    ObjectiveGenerator,
    make_company_name,
)
from repro.core.schema import AnnotatedObjective

#: Published dataset statistics (paper Sections 4.1 and 4.3).
NUM_OBJECTIVES = 1106
NUM_REPORTS = 718
NUM_COMPANIES = 422


def build_sustainability_goals(
    seed: int = 0,
    size: int = NUM_OBJECTIVES,
    config: GeneratorConfig | None = None,
) -> Dataset:
    """Build the Sustainability Goals reconstruction.

    Args:
        seed: RNG seed; the same seed always yields the same corpus.
        size: number of objectives (default: the paper's 1106).
        config: optional grammar override (defaults reproduce the paper's
            field-availability marginals).

    Returns:
        A :class:`~repro.datasets.base.Dataset` with the five-field schema.
    """
    rng = np.random.default_rng(seed)
    generator = ObjectiveGenerator(config or GeneratorConfig(), rng)

    # Company / report fan-out: 422 companies publish 718 reports that
    # contribute 1106 annotated objectives. Reports per company and
    # objectives per report follow a skewed (paper: "imbalanced")
    # distribution.
    companies = [make_company_name(rng) for __ in range(NUM_COMPANIES)]
    report_owner: list[int] = []
    for report_index in range(NUM_REPORTS):
        if report_index < NUM_COMPANIES:
            report_owner.append(report_index)  # every company has a report
        else:
            report_owner.append(int(rng.integers(NUM_COMPANIES)))

    objectives: list[AnnotatedObjective] = []
    for index in range(size):
        if index < NUM_REPORTS:
            report_index = index  # every report contributes an objective
        else:
            report_index = int(rng.integers(NUM_REPORTS))
        base = generator.generate()
        objectives.append(
            AnnotatedObjective(
                text=base.text,
                details=base.details,
                company=companies[report_owner[report_index]],
                report_id=f"report-{report_index:04d}",
            )
        )
    return Dataset("sustainability-goals", SUSTAINABILITY_FIELDS, objectives)
