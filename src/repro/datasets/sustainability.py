"""The *Sustainability Goals* dataset reconstruction.

The paper's proprietary dataset: 1106 sustainability objectives collected
from 718 reports of 422 companies, annotated with Action / Amount /
Qualifier / Baseline / Deadline. Published marginals: Action is annotated
for 85% of data points, Baseline for 14%, Deadline for 34% (Section 4.3).
This builder reproduces those statistics with the grammar generator and
attaches company/report provenance with the paper's fan-out.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.datasets.base import Dataset
from repro.datasets.generator import (
    GeneratorConfig,
    ObjectiveGenerator,
    make_company_name,
)
from repro.core.schema import AnnotatedObjective
from repro.datasets import lexicon
from repro.datasets.reports import Page, SustainabilityReport, TextBlock

#: Published dataset statistics (paper Sections 4.1 and 4.3).
NUM_OBJECTIVES = 1106
NUM_REPORTS = 718
NUM_COMPANIES = 422


def build_sustainability_goals(
    seed: int = 0,
    size: int = NUM_OBJECTIVES,
    config: GeneratorConfig | None = None,
) -> Dataset:
    """Build the Sustainability Goals reconstruction.

    Args:
        seed: RNG seed; the same seed always yields the same corpus.
        size: number of objectives (default: the paper's 1106).
        config: optional grammar override (defaults reproduce the paper's
            field-availability marginals).

    Returns:
        A :class:`~repro.datasets.base.Dataset` with the five-field schema.
    """
    rng = np.random.default_rng(seed)
    generator = ObjectiveGenerator(config or GeneratorConfig(), rng)

    # Company / report fan-out: 422 companies publish 718 reports that
    # contribute 1106 annotated objectives. Reports per company and
    # objectives per report follow a skewed (paper: "imbalanced")
    # distribution.
    companies = [make_company_name(rng) for __ in range(NUM_COMPANIES)]
    report_owner: list[int] = []
    for report_index in range(NUM_REPORTS):
        if report_index < NUM_COMPANIES:
            report_owner.append(report_index)  # every company has a report
        else:
            report_owner.append(int(rng.integers(NUM_COMPANIES)))

    objectives: list[AnnotatedObjective] = []
    for index in range(size):
        if index < NUM_REPORTS:
            report_index = index  # every report contributes an objective
        else:
            report_index = int(rng.integers(NUM_REPORTS))
        base = generator.generate()
        objectives.append(
            AnnotatedObjective(
                text=base.text,
                details=base.details,
                company=companies[report_owner[report_index]],
                report_id=f"report-{report_index:04d}",
            )
        )
    return Dataset("sustainability-goals", SUSTAINABILITY_FIELDS, objectives)


# -- multi-year company panel (drift ground truth) ---------------------------

#: The drift kinds the panel can inject (must match
#: ``repro.kg.track.DRIFT_KINDS`` minus nothing — the detector is scored
#: against exactly these).
PANEL_DRIFT_KINDS = (
    "deadline_push",
    "weakened_amount",
    "dropped_target",
    "baseline_rewrite",
)

#: (topic, qualifier) slots for panel goals. Qualifiers are chosen so
#: the kg topic classifier (``repro.kg.build.infer_topic``) puts every
#: goal of one company in a *distinct* bucket — goal threads then cannot
#: cross, which is what makes the injected drift the only drift.
_PANEL_GOAL_SLOTS = (
    ("emissions", "carbon emissions"),
    ("energy", "energy consumption"),
    ("waste", "landfill waste"),
    ("water", "water consumption"),
    ("diversity", "women in leadership positions"),
    ("safety", "workplace injury rate"),
)

#: Alias spellings of the legal suffixes (index-aligned variants).
_SUFFIX_VARIANTS = {
    "AG": ("AG",),
    "Inc.": ("Inc.", "Incorporated", "Inc"),
    "Group": ("Group",),
    "plc": ("plc", "PLC"),
    "Ltd.": ("Ltd.", "Limited", "Ltd"),
    "Corp.": ("Corp.", "Corporation", "Corp"),
    "SA": ("SA", "S.A."),
}


@dataclasses.dataclass(frozen=True)
class InjectedDrift:
    """Ground truth for one injected drift event.

    ``year_from``/``year_to`` are the reporting years on either side of
    the transition where the drift manifests; ``company`` is the
    *canonical* name (aliases in the reports resolve back to it).
    """

    kind: str  # one of PANEL_DRIFT_KINDS
    company: str
    topic: str
    year_from: int
    year_to: int
    before: str
    after: str

    def key(self) -> tuple[str, str, str, int, int]:
        """The identity tuple drift findings are scored against."""
        return (
            self.kind, self.company, self.topic,
            self.year_from, self.year_to,
        )


@dataclasses.dataclass(frozen=True)
class PanelGoal:
    """One company goal tracked across the panel years."""

    company: str
    topic: str
    qualifier: str
    amount_percent: int
    baseline_year: int
    deadline_year: int


@dataclasses.dataclass
class CompanyPanel:
    """A seeded multi-year company panel with injected-drift ground truth."""

    reports: list[SustainabilityReport]
    drift_events: list[InjectedDrift]
    companies: list[str]  # canonical names
    aliases: dict[str, list[str]]  # canonical -> per-year surface forms
    years: tuple[int, ...]
    goals: list[PanelGoal]

    @property
    def num_objectives(self) -> int:
        return sum(
            1
            for report in self.reports
            for block in report.blocks()
            if block.is_objective
        )


def _goal_block(
    goal: PanelGoal,
    *,
    amount_percent: int,
    baseline_year: int,
    deadline_year: int,
) -> TextBlock:
    """Render a goal as an annotated objective block (fixed template, so
    the same goal re-rendered in a later year differs only in the
    injected fields — the controlled setting drift scoring needs)."""
    amount = f"{amount_percent}%"
    text = (
        f"Reduce {goal.qualifier} by {amount} by {deadline_year} "
        f"(baseline {baseline_year})."
    )
    return TextBlock(
        text=text,
        is_objective=True,
        details={
            "Action": "Reduce",
            "Amount": amount,
            "Qualifier": goal.qualifier,
            "Baseline": str(baseline_year),
            "Deadline": str(deadline_year),
        },
    )


def _unique_company_names(
    rng: np.random.Generator, count: int
) -> list[str]:
    """Canonical company names with pairwise-distinct (adjective, noun)
    cores, so entity resolution can never merge two panel companies."""
    names: list[str] = []
    seen_cores: set[tuple[str, str]] = set()
    while len(names) < count:
        name = make_company_name(rng)
        parts = name.split()
        core = (parts[0], parts[1])
        if core in seen_cores:
            continue
        seen_cores.add(core)
        names.append(name)
    return names


def _alias_for_year(
    canonical: str, year_index: int, rng: np.random.Generator,
    alias_noise: bool,
) -> str:
    """The surface form a company files under in one year.

    Year 0 always uses the canonical spelling; later years rotate
    through suffix-variant and casing aliases ("Acme Corp." ->
    "ACME CORPORATION") when ``alias_noise`` is on, exercising entity
    resolution on every panel build.
    """
    if not alias_noise or year_index == 0:
        return canonical
    head, suffix = canonical.rsplit(" ", 1)
    variants = _SUFFIX_VARIANTS.get(suffix, (suffix,))
    choice = int(rng.integers(len(variants) + 1))
    if choice == len(variants):
        return canonical.upper()
    return f"{head} {variants[choice]}"


def build_company_panel(
    seed: int = 0,
    num_companies: int = 6,
    years: tuple[int, ...] = (2020, 2021, 2022, 2023),
    goals_per_company: int = 3,
    drift_per_kind: int = 1,
    alias_noise: bool = True,
    noise_blocks_per_page: int = 2,
) -> CompanyPanel:
    """Build a seeded multi-year company panel with controlled drift.

    The same companies re-report across ``years``; each company carries
    ``goals_per_company`` stable goals (distinct topics). Exactly
    ``drift_per_kind`` events of every kind in :data:`PANEL_DRIFT_KINDS`
    are injected on distinct (company, goal) slots at seeded transition
    years — deadlines silently pushed out, percent ambitions shrunk,
    targets dropped, baselines rewritten — and returned as ground truth
    (:class:`InjectedDrift`), so drift detection has exact
    precision/recall labels. All randomness flows from ``seed``.

    Args:
        seed: RNG seed; same seed, same panel, bit for bit.
        num_companies: panel width.
        years: consecutive reporting years (ascending, >= 2).
        goals_per_company: goals per company (<= 6 topic slots).
        drift_per_kind: injected events per drift kind.
        alias_noise: vary company surface forms across years.
        noise_blocks_per_page: narrative (non-objective) blocks per page.
    """
    if len(years) < 2:
        raise ValueError("a panel needs at least two reporting years")
    if not 1 <= goals_per_company <= len(_PANEL_GOAL_SLOTS):
        raise ValueError(
            f"goals_per_company must be in [1, {len(_PANEL_GOAL_SLOTS)}]"
        )
    total_slots = num_companies * goals_per_company
    needed = drift_per_kind * len(PANEL_DRIFT_KINDS)
    if needed > total_slots:
        raise ValueError(
            f"{needed} drift events need {needed} distinct goal slots, "
            f"panel has {total_slots}"
        )
    rng = np.random.default_rng(seed)
    companies = _unique_company_names(rng, num_companies)

    goals: list[PanelGoal] = []
    for company in companies:
        slot_indices = rng.choice(
            len(_PANEL_GOAL_SLOTS), size=goals_per_company, replace=False
        )
        for slot in sorted(int(i) for i in slot_indices):
            topic, qualifier = _PANEL_GOAL_SLOTS[slot]
            goals.append(
                PanelGoal(
                    company=company,
                    topic=topic,
                    qualifier=qualifier,
                    amount_percent=int(rng.integers(20, 81)),
                    baseline_year=int(rng.integers(2012, 2019)),
                    deadline_year=int(rng.integers(years[-1] + 2, 2041)),
                )
            )

    # Assign drift events to distinct goal slots at seeded transitions.
    slot_order = rng.permutation(len(goals))
    drift_events: list[InjectedDrift] = []
    drift_of_goal: dict[int, InjectedDrift] = {}
    cursor = 0
    for kind in PANEL_DRIFT_KINDS:
        for __ in range(drift_per_kind):
            goal_index = int(slot_order[cursor])
            cursor += 1
            goal = goals[goal_index]
            transition = int(rng.integers(len(years) - 1))
            year_from, year_to = years[transition], years[transition + 1]
            if kind == "deadline_push":
                pushed = goal.deadline_year + int(rng.integers(3, 9))
                before, after = str(goal.deadline_year), str(pushed)
            elif kind == "weakened_amount":
                weakened = max(
                    1, goal.amount_percent - int(rng.integers(10, 31))
                )
                before = f"{goal.amount_percent} (percent)"
                after = f"{weakened} (percent)"
            elif kind == "dropped_target":
                before, after = "(present)", "(absent)"
            else:  # baseline_rewrite
                rewritten = goal.baseline_year + int(rng.integers(1, 5))
                before, after = str(goal.baseline_year), str(rewritten)
            event = InjectedDrift(
                kind=kind,
                company=goal.company,
                topic=goal.topic,
                year_from=year_from,
                year_to=year_to,
                before=before,
                after=after,
            )
            drift_events.append(event)
            drift_of_goal[goal_index] = event

    def narrative_block() -> TextBlock:
        picks = rng.choice(
            len(lexicon.NARRATIVE_SENTENCES), size=1, replace=False
        )
        return TextBlock(
            text=lexicon.NARRATIVE_SENTENCES[int(picks[0])],
            is_objective=False,
        )

    reports: list[SustainabilityReport] = []
    aliases: dict[str, list[str]] = {c: [] for c in companies}
    for year_index, year in enumerate(years):
        for company in companies:
            alias = _alias_for_year(company, year_index, rng, alias_noise)
            aliases[company].append(alias)
            blocks: list[TextBlock] = [narrative_block()]
            for goal_index, goal in enumerate(goals):
                if goal.company != company:
                    continue
                amount = goal.amount_percent
                baseline = goal.baseline_year
                deadline = goal.deadline_year
                event = drift_of_goal.get(goal_index)
                if event is not None and year >= event.year_to:
                    if event.kind == "dropped_target":
                        continue
                    if event.kind == "deadline_push":
                        deadline = int(event.after)
                    elif event.kind == "weakened_amount":
                        amount = int(event.after.split()[0])
                    elif event.kind == "baseline_rewrite":
                        baseline = int(event.after)
                blocks.append(
                    _goal_block(
                        goal,
                        amount_percent=amount,
                        baseline_year=baseline,
                        deadline_year=deadline,
                    )
                )
                for __ in range(max(0, noise_blocks_per_page - 1)):
                    blocks.append(narrative_block())
            # Two pages: deterministic split keeps page provenance varied.
            half = (len(blocks) + 1) // 2
            reports.append(
                SustainabilityReport(
                    company=alias,
                    report_id=f"{company}-{year}",
                    pages=[
                        Page(blocks=blocks[:half]),
                        Page(blocks=blocks[half:]),
                    ],
                    reporting_year=year,
                )
            )
    return CompanyPanel(
        reports=reports,
        drift_events=sorted(drift_events, key=InjectedDrift.key),
        companies=companies,
        aliases=aliases,
        years=tuple(years),
        goals=goals,
    )


def panel_records(panel: CompanyPanel):
    """Ground-truth :class:`~repro.goalspotter.pipeline.ExtractedRecord`
    rows for a panel — the annotated objective blocks as if a perfect
    extractor had processed every report (score 1.0). Lets the knowledge
    graph and drift detector be scored against the injected ground truth
    without model noise; running the real pipeline over
    ``panel.reports`` exercises the same path with extraction noise.
    """
    from repro.goalspotter.pipeline import ExtractedRecord

    records = []
    for report in panel.reports:
        for page_index, page in enumerate(report.pages):
            for block in page.blocks:
                if not block.is_objective:
                    continue
                records.append(
                    ExtractedRecord(
                        company=report.company,
                        report_id=report.report_id,
                        page=page_index,
                        objective=block.text,
                        details=dict(block.details),
                        score=1.0,
                        reporting_year=report.reporting_year,
                    )
                )
    return records
