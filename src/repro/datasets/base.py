"""Dataset container, JSONL persistence, and split protocol."""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Iterator, Sequence
from pathlib import Path

import numpy as np

from repro.core.schema import AnnotatedObjective


@dataclasses.dataclass
class Dataset:
    """A named collection of annotated objectives with a field schema."""

    name: str
    fields: tuple[str, ...]
    objectives: list[AnnotatedObjective]

    def __len__(self) -> int:
        return len(self.objectives)

    def __iter__(self) -> Iterator[AnnotatedObjective]:
        return iter(self.objectives)

    def __getitem__(self, index: int) -> AnnotatedObjective:
        return self.objectives[index]

    def field_availability(self) -> dict[str, float]:
        """Fraction of objectives annotated with each field."""
        if not self.objectives:
            return {field: 0.0 for field in self.fields}
        return {
            field: sum(
                1 for obj in self.objectives if obj.has_detail(field)
            )
            / len(self.objectives)
            for field in self.fields
        }

    def subset(self, indices: Sequence[int], name: str | None = None) -> "Dataset":
        return Dataset(
            name or self.name,
            self.fields,
            [self.objectives[i] for i in indices],
        )

    # -- persistence ---------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """One JSON object per line: text, details, provenance."""
        with open(path, "w", encoding="utf-8") as handle:
            header = {"name": self.name, "fields": list(self.fields)}
            handle.write(json.dumps({"__header__": header}) + "\n")
            for obj in self.objectives:
                handle.write(
                    json.dumps(
                        {
                            "text": obj.text,
                            "details": dict(obj.details),
                            "company": obj.company,
                            "report_id": obj.report_id,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "Dataset":
        objectives: list[AnnotatedObjective] = []
        name = Path(path).stem
        fields: tuple[str, ...] = ()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                if "__header__" in record:
                    name = record["__header__"]["name"]
                    fields = tuple(record["__header__"]["fields"])
                    continue
                objectives.append(
                    AnnotatedObjective(
                        text=record["text"],
                        details=record.get("details", {}),
                        company=record.get("company", ""),
                        report_id=record.get("report_id", ""),
                    )
                )
        return cls(name, fields, objectives)


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Shuffled split; the paper holds out 20% as the unseen test set."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    num_test = max(1, int(round(len(dataset) * test_fraction)))
    test_idx = order[:num_test]
    train_idx = order[num_test:]
    return (
        dataset.subset(train_idx, f"{dataset.name}-train"),
        dataset.subset(test_idx, f"{dataset.name}-test"),
    )
