"""Global compute precision for the numpy DL substrate.

Training runs in float32 by default (about 2x faster on this substrate's
matmul-bound workloads). Gradient-checking tests switch to float64, where
central differences are meaningful.
"""

from __future__ import annotations

import numpy as np

_DTYPE = np.float32


def dtype() -> type:
    """The current compute dtype for parameters and activations."""
    return _DTYPE


def set_dtype(new_dtype) -> None:
    """Set the global compute dtype (float32 or float64)."""
    global _DTYPE
    if new_dtype not in (np.float32, np.float64):
        raise ValueError("dtype must be numpy float32 or float64")
    _DTYPE = new_dtype
