"""State-dict persistence via ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str | Path) -> None:
    """Save a module's parameters to an ``.npz`` archive."""
    state = module.state_dict()
    np.savez(Path(path), **state)


def load_state(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state` into ``module``."""
    with np.load(Path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
