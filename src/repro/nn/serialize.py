"""State-dict persistence via ``.npz`` archives.

Besides file-backed :func:`save_state`/:func:`load_state`, this module
provides in-memory ``bytes`` variants (:func:`state_to_bytes` /
:func:`state_from_bytes`) used by the parallel corpus runtime
(:mod:`repro.runtime.parallel`) to broadcast model weights to worker
processes exactly once at spawn — one compact npz payload per model
instead of re-pickling parameter arrays with every task — plus
:func:`state_digest` so a receiver can verify the broadcast landed intact.
"""

from __future__ import annotations

import hashlib
import io
from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = [
    "load_state",
    "save_state",
    "state_digest",
    "state_from_bytes",
    "state_to_bytes",
]


def save_state(module: Module, path: str | Path) -> None:
    """Save a module's parameters to an ``.npz`` archive."""
    state = module.state_dict()
    np.savez(Path(path), **state)


def load_state(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state` into ``module``."""
    with np.load(Path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)


def state_to_bytes(module: Module) -> bytes:
    """Serialize a module's parameters to an in-memory ``.npz`` payload."""
    buffer = io.BytesIO()
    np.savez(buffer, **module.state_dict())
    return buffer.getvalue()


def state_from_bytes(module: Module, payload: bytes) -> None:
    """Load parameters produced by :func:`state_to_bytes` into ``module``."""
    with np.load(io.BytesIO(payload)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)


def state_digest(module: Module) -> str:
    """A stable content hash of a module's parameters.

    Hashes parameter names and raw float bytes in sorted-name order, so
    two modules with bitwise-identical state produce the same digest —
    which is how the parallel runtime's tests prove a broadcast round-trip
    changed nothing.
    """
    digest = hashlib.sha256()
    state = module.state_dict()
    for name in sorted(state):
        digest.update(name.encode("utf-8"))
        array = np.ascontiguousarray(state[name])
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()
