"""State-dict persistence via ``.npz`` archives, plus training-state capture.

Besides file-backed :func:`save_state`/:func:`load_state`, this module
provides in-memory ``bytes`` variants (:func:`state_to_bytes` /
:func:`state_from_bytes`) used by the parallel corpus runtime
(:mod:`repro.runtime.parallel`) to broadcast model weights to worker
processes exactly once at spawn — one compact npz payload per model
instead of re-pickling parameter arrays with every task — plus
:func:`state_digest` so a receiver can verify the broadcast landed intact.

The durable-training runtime (:mod:`repro.runtime.checkpoint`) builds on
the capture helpers here:

* :func:`optimizer_state` / :func:`load_optimizer_state` — Adam/AdamW
  moments and step counter as an npz-ready mapping;
* :func:`rng_state` / :func:`set_rng_state` — a JSON-able snapshot of a
  ``numpy.random.Generator``'s bit-generator state;
* :func:`module_rngs` — the distinct ``Generator`` objects a module tree
  holds (dropout layers keep drawing from their construction-time RNG
  during training forwards, so bitwise resume must restore them too).

``load_state`` verifies before it trusts: unreadable/truncated archives
and key or shape mismatches raise a typed
:class:`~repro.runtime.errors.ArtifactError` carrying the offending path
(and, when ``expected_sha256`` is given, the expected/actual digests)
instead of a bare ``zipfile``/``KeyError`` from deep inside numpy.
"""

from __future__ import annotations

import copy
import hashlib
import io
from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = [
    "file_sha256",
    "load_optimizer_state",
    "load_state",
    "module_rngs",
    "optimizer_state",
    "rng_state",
    "save_state",
    "set_rng_state",
    "state_digest",
    "state_from_bytes",
    "state_to_bytes",
]


def _artifact_error(
    message: str,
    path: str | Path | None = None,
    expected: str | None = None,
    actual: str | None = None,
):
    # Imported lazily: repro.runtime imports this module at package init,
    # so a top-level import here would be circular.
    from repro.runtime.errors import ArtifactError

    return ArtifactError(
        message,
        path=str(path) if path is not None else None,
        expected=expected,
        actual=actual,
    )


def file_sha256(path: str | Path) -> str:
    """SHA-256 hex digest of a file's bytes.

    Raises :class:`~repro.runtime.errors.ArtifactError` when the file is
    missing or unreadable.
    """
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    except OSError as error:
        raise _artifact_error(
            f"cannot read artifact: {error}", path
        ) from error
    return digest.hexdigest()


def save_state(module: Module, path: str | Path) -> None:
    """Save a module's parameters to an ``.npz`` archive."""
    state = module.state_dict()
    np.savez(Path(path), **state)


def load_state(
    module: Module, path: str | Path, *, expected_sha256: str | None = None
) -> None:
    """Load parameters saved by :func:`save_state` into ``module``.

    Verifies integrity before mutating the module: an unreadable or
    truncated archive, a digest mismatch against ``expected_sha256``, and
    missing/unexpected/mis-shaped keys all raise
    :class:`~repro.runtime.errors.ArtifactError` with the offending path —
    the module is left untouched on failure.
    """
    path = Path(path)
    if expected_sha256 is not None:
        actual = file_sha256(path)
        if actual != expected_sha256:
            raise _artifact_error(
                f"artifact digest mismatch for {path.name}",
                path,
                expected=expected_sha256,
                actual=actual,
            )
    try:
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
    except Exception as error:
        raise _artifact_error(
            f"unreadable state archive ({type(error).__name__}: {error})",
            path,
        ) from error
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise _artifact_error(
            f"state archive does not match the module: {error}", path
        ) from error


def state_to_bytes(module: Module) -> bytes:
    """Serialize a module's parameters to an in-memory ``.npz`` payload."""
    buffer = io.BytesIO()
    np.savez(buffer, **module.state_dict())
    return buffer.getvalue()


def state_from_bytes(module: Module, payload: bytes) -> None:
    """Load parameters produced by :func:`state_to_bytes` into ``module``."""
    with np.load(io.BytesIO(payload)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)


def state_digest(module: Module) -> str:
    """A stable content hash of a module's parameters.

    Hashes parameter names and raw float bytes in sorted-name order, so
    two modules with bitwise-identical state produce the same digest —
    which is how the parallel runtime's tests prove a broadcast round-trip
    changed nothing.
    """
    digest = hashlib.sha256()
    state = module.state_dict()
    for name in sorted(state):
        digest.update(name.encode("utf-8"))
        array = np.ascontiguousarray(state[name])
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


# -- optimizer state ---------------------------------------------------------


def optimizer_state(optimizer) -> dict[str, np.ndarray]:
    """Adam/AdamW moments and step counter as an npz-ready mapping.

    Keys: ``step_count`` plus ``m_NNNN``/``v_NNNN`` per parameter, in the
    optimizer's (deterministic) parameter order.
    """
    state: dict[str, np.ndarray] = {
        "step_count": np.asarray(optimizer.step_count, dtype=np.int64)
    }
    for index, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
        state[f"m_{index:04d}"] = m
        state[f"v_{index:04d}"] = v
    return state


def load_optimizer_state(optimizer, state: dict[str, np.ndarray]) -> None:
    """Restore moments/step saved by :func:`optimizer_state` (strict).

    Raises ``ValueError`` on key or shape mismatches (the checkpoint
    manager wraps this into an ``ArtifactError`` with the artifact path).
    """
    count = len(optimizer.params)
    expected = {"step_count"}
    expected.update(f"m_{i:04d}" for i in range(count))
    expected.update(f"v_{i:04d}" for i in range(count))
    if set(state) != expected:
        missing = sorted(expected - set(state))
        unexpected = sorted(set(state) - expected)
        raise ValueError(
            f"optimizer state mismatch: missing={missing}, "
            f"unexpected={unexpected}"
        )
    moments_m: list[np.ndarray] = []
    moments_v: list[np.ndarray] = []
    for index, param in enumerate(optimizer.params):
        for prefix, out in (("m", moments_m), ("v", moments_v)):
            value = np.asarray(state[f"{prefix}_{index:04d}"])
            if value.shape != param.value.shape:
                raise ValueError(
                    f"optimizer moment {prefix}_{index:04d} has shape "
                    f"{value.shape}, parameter has {param.value.shape}"
                )
            out.append(value.astype(param.value.dtype, copy=True))
    optimizer._m = moments_m
    optimizer._v = moments_v
    optimizer.step_count = int(np.asarray(state["step_count"]))


# -- RNG state ---------------------------------------------------------------


def rng_state(rng: np.random.Generator) -> dict:
    """A JSON-able deep copy of a generator's bit-generator state."""
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a state captured by :func:`rng_state` into ``rng``."""
    rng.bit_generator.state = copy.deepcopy(state)


def module_rngs(module: Module) -> list[np.random.Generator]:
    """The distinct ``Generator`` objects held anywhere in a module tree.

    Dropout layers keep their construction-time RNG and draw from it on
    every training forward, so a bitwise-resumable checkpoint must capture
    these alongside the training loop's own generator. Deduplicated by
    object identity in deterministic traversal order (multiple layers
    usually share one generator).
    """
    rngs: list[np.random.Generator] = []
    seen: set[int] = set()
    for child in module.modules():
        rng = getattr(child, "rng", None)
        if isinstance(rng, np.random.Generator) and id(rng) not in seen:
            seen.add(id(rng))
            rngs.append(rng)
    return rngs
