"""Opt-in int8 weight quantization for the inference path.

Corpus-scale monitoring wants a cheaper numeric path; this module provides
one without touching training or checkpoints: weights are quantized **once
at attach time** to residual-coded int8 with per-output-channel symmetric
scales (``scale[j] = max_i |W[i, j]| / 127``; a second int8 plane codes
the rounding residual the same way), and the inference forward computes
``(x @ Q1) * scale1 + (x @ Q2) * scale2`` — integer-valued operands are
exact in float32, so the matmuls accumulate in fp32 over int8-coded
weights ("int8-weight / fp32-accumulate"). The fp32 master weights stay
in place untouched:
``state_dict``/checkpointing/backward are unaffected, and detaching the
quantized tensors restores bitwise-original behaviour.

Two attachment points cover the encoder's GEMM time: every ``Linear``
(feed-forward, attention output projection, classifier heads) and the
fused QKV projection inside ``MultiHeadSelfAttention`` (quantized as one
``(dim, 3*dim)`` matrix so its scales match the fused GEMM it replaces).

Quantization changes numerics, so enabling it is **gated**: the
equivalence report compares a quantized run against the fp32 baseline and
passes only when every prediction keeps its top label and the largest
score delta stays under a bound. Integration layers
(``WeakSupervisionExtractor.enable_quantization``, the CLI ``--quantize``
flag) refuse to enable the path — raising
:class:`~repro.runtime.errors.QuantizationError` and restoring fp32 —
when the gate fails. The result cache keys quantized results under a
separate variant (:func:`quantization_state`), so fp32 and int8 entries
can never collide.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.nn import precision
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Linear
from repro.nn.module import Module

__all__ = [
    "EquivalenceReport",
    "INT8",
    "QMAX",
    "QuantizedTensor",
    "dequantize_module",
    "dequantize_weight",
    "equivalence_report",
    "quantization_state",
    "quantize_module",
    "quantize_weight",
]

#: The only supported quantization mode (the public opt-in token).
INT8 = "int8"

#: Symmetric int8 range: codes live in ``[-127, 127]`` (no -128, so the
#: code space is symmetric and ``scale * code`` round-trips sign-exactly).
QMAX = 127


@dataclasses.dataclass(frozen=True)
class QuantizedTensor:
    """Residual-coded int8 weights with per-output-channel scales.

    ``q`` holds the primary codes (``int8``, same shape as the source
    weight, ``(in, out)``); ``scale`` is one fp32 factor per output
    channel (column). ``q2``/``scale2`` code the *rounding residual*
    ``W - q * scale`` the same way — a second int8 pass whose scale is
    ~1/254 of the primary's, shrinking the worst-case weight error from
    ``scale/2`` to ``scale/516``. Two code planes cost 2 bytes/weight
    (still half of fp32) and keep every stored operand an int8 tensor;
    the fidelity is what lets the strict top-label equivalence gate pass
    on near-tied logits, where single-plane int8 rounding (~1e-2 logit
    delta on this substrate) demonstrably flips labels.

    ``operand``/``operand2`` are float32 casts of the codes prepared
    once at quantization time — integer codes in ``[-127, 127]`` are
    exact in fp32 — so the inference GEMMs never re-cast.
    """

    q: np.ndarray
    scale: np.ndarray
    operand: np.ndarray
    q2: np.ndarray
    scale2: np.ndarray
    operand2: np.ndarray

    @property
    def num_bytes(self) -> int:
        """Storage footprint of both int8 code planes plus scales."""
        return (
            self.q.nbytes
            + self.scale.nbytes
            + self.q2.nbytes
            + self.scale2.nbytes
        )

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``x @ W_quantized``: two int8-coded fp32-accumulate GEMMs."""
        return (x @ self.operand) * self.scale + (
            x @ self.operand2
        ) * self.scale2


def _code_plane(
    w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One symmetric per-output-channel int8 coding pass over ``w``.

    All-zero columns get scale 1.0 (their codes are all zero anyway), so
    dequantization never divides by zero.
    """
    absmax = np.abs(w).max(axis=0)
    scale = np.where(absmax > 0.0, absmax / QMAX, 1.0).astype(w.dtype)
    q = np.clip(np.rint(w / scale), -QMAX, QMAX).astype(np.int8)
    return q, scale, q.astype(w.dtype)


def quantize_weight(weight: np.ndarray) -> QuantizedTensor:
    """Residual two-plane int8 quantization of an ``(in, out)`` weight."""
    w = np.asarray(weight, dtype=precision.dtype())
    if w.ndim != 2:
        raise ValueError(f"expected a 2-D weight, got shape {w.shape}")
    q, scale, operand = _code_plane(w)
    residual = w - operand * scale
    q2, scale2, operand2 = _code_plane(residual)
    arrays = (q, scale, operand, q2, scale2, operand2)
    for array in arrays:
        array.setflags(write=False)
    return QuantizedTensor(*arrays)


def dequantize_weight(tensor: QuantizedTensor) -> np.ndarray:
    """The fp32 weight the quantized path effectively multiplies by."""
    return tensor.operand * tensor.scale + tensor.operand2 * tensor.scale2


def quantize_module(module: Module, mode: str = INT8) -> int:
    """Attach int8 tensors to every eligible layer; returns the count.

    Eligible layers are ``MultiHeadSelfAttention`` (one fused QKV tensor
    each) and every ``Linear`` that is not one of an attention's
    query/key/value projections (those never run their own forward — the
    fused GEMM replaces them, so quantizing them would be dead weight).
    Idempotent: re-attaching replaces the previous tensors.
    """
    if mode != INT8:
        raise ValueError(f"unknown quantization mode {mode!r}; use {INT8!r}")
    fused_children: set[int] = set()
    for child in module.modules():
        if isinstance(child, MultiHeadSelfAttention):
            fused_children.update(
                id(proj)
                for proj in (
                    child.query_proj,
                    child.key_proj,
                    child.value_proj,
                )
            )
    count = 0
    for child in module.modules():
        if isinstance(child, MultiHeadSelfAttention):
            fused_weight, __ = child._fused_qkv_weights()
            child.attach_quantized_fused(quantize_weight(fused_weight))
            count += 1
        elif isinstance(child, Linear) and id(child) not in fused_children:
            child.attach_quantized(quantize_weight(child.weight.value))
            count += 1
    return count


def dequantize_module(module: Module) -> int:
    """Detach every quantized tensor; returns how many were removed."""
    count = 0
    for child in module.modules():
        if isinstance(child, MultiHeadSelfAttention):
            if child.detach_quantized_fused():
                count += 1
        elif isinstance(child, Linear):
            if child.detach_quantized():
                count += 1
    return count


def quantization_state(module: Module) -> str | None:
    """``"int8"`` when any layer carries a quantized tensor, else None.

    This is the *variant* component of the result-cache key: the same
    weights produce different (bounded-delta) outputs under the int8
    path, so cached fp32 and int8 results must never share entries.
    """
    for child in module.modules():
        if isinstance(child, MultiHeadSelfAttention):
            if child._quant_fused is not None:
                return INT8
        elif isinstance(child, Linear):
            if child._quant is not None:
                return INT8
    return None


# -- the equivalence gate ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of comparing a quantized run against its fp32 baseline."""

    total: int
    top_label_matches: int
    max_abs_delta: float
    bound: float

    @property
    def passed(self) -> bool:
        """Gate verdict: every top label identical, every delta bounded."""
        return (
            self.top_label_matches == self.total
            and self.max_abs_delta <= self.bound
        )

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "top_label_matches": self.top_label_matches,
            "max_abs_delta": self.max_abs_delta,
            "bound": self.bound,
            "passed": self.passed,
        }


def equivalence_report(
    baseline: Sequence[np.ndarray],
    candidate: Sequence[np.ndarray],
    bound: float,
) -> EquivalenceReport:
    """Compare per-item score arrays (logits or probabilities).

    An item matches when the argmax over the last axis — the predicted
    label at every position — is identical; ``max_abs_delta`` is the
    largest elementwise score difference across all items.
    """
    if len(baseline) != len(candidate):
        raise ValueError(
            f"baseline and candidate are not parallel: "
            f"{len(baseline)} vs {len(candidate)} items"
        )
    matches = 0
    max_delta = 0.0
    for expected, actual in zip(baseline, candidate):
        expected = np.asarray(expected)
        actual = np.asarray(actual)
        if expected.shape != actual.shape:
            raise ValueError(
                f"score shape changed under quantization: "
                f"{expected.shape} vs {actual.shape}"
            )
        if expected.size == 0:
            matches += 1
            continue
        if np.array_equal(
            expected.argmax(axis=-1), actual.argmax(axis=-1)
        ):
            matches += 1
        delta = float(np.max(np.abs(expected - actual)))
        if delta > max_delta:
            max_delta = delta
    return EquivalenceReport(
        total=len(baseline),
        top_label_matches=matches,
        max_abs_delta=max_delta,
        bound=bound,
    )
