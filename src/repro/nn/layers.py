"""Core layers: Linear, Embedding, LayerNorm, Dropout.

Each layer caches what its backward pass needs during ``forward`` and
accumulates parameter gradients during ``backward``. All backward passes are
verified against numerical gradients in ``tests/nn/test_layers.py``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter, is_inference


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis.

    With ``row_invariant=True`` a 2-D input is multiplied row by row
    (vector-matrix products) instead of as one matrix product. BLAS picks
    different kernels — and hence different floating-point reduction
    orders — for different row counts, so a plain ``x @ W`` gives a row
    results that depend on its batch-mates at the ulp level. Row products
    make each output a function of that row alone, whatever the batch
    size. Only worth it for small heads on pooled states (it trades the
    single GEMM for ``rows`` GEMVs); bulk token-level layers should keep
    the default.

    An int8 tensor attached via :meth:`attach_quantized` (see
    :mod:`repro.nn.quant`) replaces the inference-mode forward with
    ``(x @ Q) * scale``; training forwards and ``backward`` always use
    the fp32 master weight, so quantization never leaks into gradients
    or checkpoints.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        row_invariant: bool = False,
    ) -> None:
        super().__init__()
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(in_features, out_features))
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.row_invariant = row_invariant
        self._x: np.ndarray | None = None
        self._quant = None  # repro.nn.quant.QuantizedTensor | None

    def attach_quantized(self, tensor) -> None:
        """Install an int8 tensor for inference-mode forwards."""
        if tensor.q.shape != self.weight.value.shape:
            raise ValueError(
                f"quantized shape {tensor.q.shape} does not match "
                f"weight {self.weight.value.shape}"
            )
        self._quant = tensor

    def detach_quantized(self) -> bool:
        """Remove the int8 tensor; True when one was attached."""
        had = self._quant is not None
        self._quant = None
        return had

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = None if is_inference() else x
        if self._quant is not None and is_inference():
            # int8-weight / fp32-accumulate: the operands are the exact
            # fp32 images of both int8 code planes (primary + residual),
            # scales applied per column.
            if self.row_invariant and x.ndim == 2:
                out = np.stack([self._quant.matmul(row) for row in x])
            else:
                out = self._quant.matmul(x)
        elif self.row_invariant and x.ndim == 2:
            out = np.stack([row @ self.weight.value for row in x])
        else:
            out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        flat_x = x.reshape(-1, x.shape[-1])
        flat_dout = dout.reshape(-1, dout.shape[-1])
        self.weight.grad += flat_x.T @ flat_dout
        if self.bias is not None:
            self.bias.grad += flat_dout.sum(axis=0)
        return dout @ self.weight.value.T


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self, num_embeddings: int, dim: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.weight = Parameter(
            rng.normal(0.0, 0.02, size=(num_embeddings, dim))
        )
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        self._ids = None if is_inference() else ids
        return self.weight.value[ids]

    def backward(self, dout: np.ndarray) -> None:
        """Accumulate gradients; embeddings have no upstream input."""
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.weight.grad, self._ids, dout)
        return None


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = None if is_inference() else (x_hat, inv_std, x)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, x = self._cache
        dim = x.shape[-1]
        reduce_axes = tuple(range(x.ndim - 1))
        self.gamma.grad += (dout * x_hat).sum(axis=reduce_axes)
        self.beta.grad += dout.sum(axis=reduce_axes)
        dx_hat = dout * self.gamma.value
        # Standard layernorm backward over the last axis.
        dx = (
            dx_hat
            - dx_hat.mean(axis=-1, keepdims=True)
            - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std
        # Keep dim referenced for clarity of the formula above.
        del dim
        return dx


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability {p} outside [0, 1)")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0 or is_inference():
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / np.asarray(keep, dtype=x.dtype)
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask
