"""Transformer encoder: embeddings + stacked pre-LN encoder layers.

The paper fine-tunes post-LN BERT/RoBERTa encoders. For small from-scratch
models trained without large-scale pre-training, the pre-LN arrangement is
substantially more stable (no learning-rate warmup cliff), so the encoder
layers here normalize before each sub-block and a final LayerNorm closes the
stack. This changes none of the interfaces the rest of the system relies on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.nn.functional import gelu, gelu_grad
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module, guard_finite, is_inference


@dataclasses.dataclass(frozen=True)
class EncoderConfig:
    """Hyperparameters of a transformer encoder."""

    vocab_size: int
    dim: int = 96
    num_layers: int = 2
    num_heads: int = 4
    ffn_dim: int = 192
    max_len: int = 96
    dropout: float = 0.1
    pad_id: int = 0

    def __post_init__(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        if self.vocab_size <= 0 or self.max_len <= 0:
            raise ValueError("vocab_size and max_len must be positive")


class FeedForward(Module):
    """Position-wise feed-forward block: Linear -> GELU -> Linear."""

    def __init__(
        self, dim: int, ffn_dim: int, rng: np.random.Generator, dropout: float
    ) -> None:
        super().__init__()
        self.expand = Linear(dim, ffn_dim, rng)
        self.contract = Linear(ffn_dim, dim, rng)
        self.dropout = Dropout(dropout, rng)
        self._pre_activation: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        hidden = self.expand(x)
        self._pre_activation = None if is_inference() else hidden
        activated = gelu(hidden)
        return self.dropout(self.contract(activated))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._pre_activation is None:
            raise RuntimeError("backward called before forward")
        dout = self.dropout.backward(dout)
        dactivated = self.contract.backward(dout)
        dhidden = dactivated * gelu_grad(self._pre_activation)
        return self.expand.backward(dhidden)


class TransformerEncoderLayer(Module):
    """Pre-LN encoder layer: x + Attn(LN(x)); then h + FFN(LN(h))."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_dim: int,
        rng: np.random.Generator,
        dropout: float,
        ctx_pad_to: int | None = None,
    ) -> None:
        super().__init__()
        self.attn_norm = LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(
            dim, num_heads, rng, dropout, ctx_pad_to=ctx_pad_to
        )
        self.attn_dropout = Dropout(dropout, rng)
        self.ffn_norm = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_dim, rng, dropout)

    def forward(self, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        attended = self.attn_dropout(
            self.attention(self.attn_norm(x), mask)
        )
        hidden = x + attended
        return hidden + self.ffn(self.ffn_norm(hidden))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dhidden = dout + self.ffn_norm.backward(self.ffn.backward(dout))
        dattended = self.attn_dropout.backward(dhidden)
        dx = dhidden + self.attn_norm.backward(
            self.attention.backward(dattended)
        )
        return dx


class TransformerEncoder(Module):
    """Token + position embeddings followed by stacked encoder layers.

    ``forward(ids, mask)`` returns contextual states ``(B, T, D)``. Padded
    positions still produce states; downstream losses must mask them.
    """

    def __init__(self, config: EncoderConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim, rng)
        self.position_embedding = Embedding(config.max_len, config.dim, rng)
        self.embedding_dropout = Dropout(config.dropout, rng)
        self.layers = [
            TransformerEncoderLayer(
                config.dim,
                config.num_heads,
                config.ffn_dim,
                rng,
                config.dropout,
                ctx_pad_to=config.max_len,
            )
            for __ in range(config.num_layers)
        ]
        self.final_norm = LayerNorm(config.dim)
        self._positions: np.ndarray | None = None

    def forward(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.ndim != 2:
            raise ValueError(f"ids must be (batch, time), got {ids.shape}")
        if ids.shape[1] > self.config.max_len:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds "
                f"max_len {self.config.max_len}"
            )
        positions = np.broadcast_to(
            np.arange(ids.shape[1]), ids.shape
        )
        self._positions = None if is_inference() else positions
        states = self.token_embedding(ids) + self.position_embedding(positions)
        states = self.embedding_dropout(states)
        for layer in self.layers:
            states = layer(states, mask)
        return guard_finite(self.final_norm(states), "encoder states")

    def backward(self, dout: np.ndarray) -> None:
        """Backpropagate into all parameters (inputs are ids, no dinput)."""
        dstates = self.final_norm.backward(dout)
        for layer in reversed(self.layers):
            dstates = layer.backward(dstates)
        dstates = self.embedding_dropout.backward(dstates)
        self.token_embedding.backward(dstates)
        self.position_embedding.backward(dstates)
        return None
