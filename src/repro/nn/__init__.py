"""Pure-numpy deep learning substrate.

The paper fine-tunes HuggingFace transformer encoders on a GPU. Neither is
available offline, so this package implements the required stack from
scratch: a module system with explicit forward/backward passes, the standard
transformer encoder layers (embeddings, multi-head self-attention, layer
normalization, GELU feed-forward, dropout), softmax cross-entropy with an
ignore index, Adam/AdamW with gradient clipping, and learning-rate schedules.

Every layer's backward pass is verified against numerical gradients in the
test suite (``tests/nn``).
"""

from repro.nn.module import Module, Parameter, inference_mode, is_inference
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.encoder import (
    EncoderConfig,
    FeedForward,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from repro.nn.loss import cross_entropy
from repro.nn.optim import (
    Adam,
    AdamW,
    LinearWarmupDecay,
    clip_grad_norm,
)
from repro.nn.batching import iterate_minibatches, pad_sequences
from repro.nn.quant import (
    EquivalenceReport,
    QuantizedTensor,
    dequantize_module,
    dequantize_weight,
    equivalence_report,
    quantization_state,
    quantize_module,
    quantize_weight,
)

__all__ = [
    "Adam",
    "AdamW",
    "Dropout",
    "Embedding",
    "EncoderConfig",
    "EquivalenceReport",
    "FeedForward",
    "LayerNorm",
    "Linear",
    "LinearWarmupDecay",
    "Module",
    "MultiHeadSelfAttention",
    "Parameter",
    "QuantizedTensor",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "clip_grad_norm",
    "cross_entropy",
    "dequantize_module",
    "dequantize_weight",
    "equivalence_report",
    "inference_mode",
    "is_inference",
    "iterate_minibatches",
    "pad_sequences",
    "quantization_state",
    "quantize_module",
    "quantize_weight",
]
