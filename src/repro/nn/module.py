"""Parameter and Module base classes for the numpy DL substrate.

A :class:`Parameter` couples a value array with its gradient accumulator.
A :class:`Module` discovers parameters and sub-modules through its instance
attributes (the same convention as torch.nn.Module) and provides traversal,
train/eval mode switching, and state-dict (de)serialization.

Modules implement ``forward`` (caching whatever the backward pass needs on
``self``) and ``backward`` (consuming the upstream gradient, accumulating
parameter gradients, and returning the gradient w.r.t. the input).
"""

from __future__ import annotations

import contextlib
import hashlib
from collections.abc import Iterator

import numpy as np

from repro.nn import precision

_inference_depth = 0


def is_inference() -> bool:
    """True inside an :func:`inference_mode` block."""
    return _inference_depth > 0


@contextlib.contextmanager
def inference_mode() -> Iterator[None]:
    """Forward-only mode: layers skip backward-cache construction.

    Unlike ``Module.eval()`` (which only changes layer *behaviour*, e.g.
    turning dropout into the identity), inference mode promises that no
    ``backward`` will follow, so ``forward`` skips storing activations and
    masks entirely. Re-entrant; calling ``backward`` after a forward run
    under inference mode raises "backward called before forward".
    """
    global _inference_depth
    _inference_depth += 1
    try:
        yield
    finally:
        _inference_depth -= 1


_numeric_guard_depth = 0


def numeric_guard_active() -> bool:
    """True inside a :func:`numeric_guard` block."""
    return _numeric_guard_depth > 0


@contextlib.contextmanager
def numeric_guard() -> Iterator[None]:
    """Opt-in NaN/inf detection on forward passes.

    Inside this block, model forwards (encoder states, classifier logits)
    verify their outputs are finite and raise
    :class:`repro.runtime.errors.NumericalError` otherwise, so a poisoned
    activation surfaces as a classified, retryable stage failure instead
    of silently corrupting every downstream record. Off by default: the
    clean path pays nothing. Re-entrant.
    """
    global _numeric_guard_depth
    _numeric_guard_depth += 1
    try:
        yield
    finally:
        _numeric_guard_depth -= 1


def guard_finite(array: np.ndarray, context: str) -> np.ndarray:
    """Raise ``NumericalError`` if ``array`` is non-finite under the guard.

    A no-op (and free) outside :func:`numeric_guard` blocks. Returns the
    array so call sites can wrap their return expression.
    """
    if _numeric_guard_depth > 0 and not np.all(np.isfinite(array)):
        # Imported lazily: repro.runtime imports this module at package
        # init, so a top-level import here would be circular.
        from repro.runtime.errors import NumericalError

        bad = int(np.size(array) - np.sum(np.isfinite(array)))
        raise NumericalError(
            f"non-finite values ({bad} element(s)) in {context}"
        )
    return array


class Parameter:
    """A trainable array with a gradient accumulator of the same shape."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=precision.dtype())
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class with parameter traversal and train/eval mode."""

    def __init__(self) -> None:
        self.training = True
        self._state_version = 0
        self._fingerprint_cache: tuple[int, str] | None = None

    # -- traversal ----------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for this module and children."""
        for name, attr in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(attr, Parameter):
                yield full_name, attr
            elif isinstance(attr, Module):
                yield from attr.named_parameters(f"{full_name}.")
            elif isinstance(attr, (list, tuple)):
                for index, item in enumerate(attr):
                    if isinstance(item, Module):
                        yield from item.named_parameters(
                            f"{full_name}.{index}."
                        )

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its descendants."""
        return [param for __, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendant modules."""
        yield self
        for attr in vars(self).values():
            if isinstance(attr, Module):
                yield from attr.modules()
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- mode / grads --------------------------------------------------------

    def train(self) -> "Module":
        """Switch this module and all descendants to training mode."""
        for module in self.modules():
            module.training = True
        self.bump_state_version()
        return self

    def eval(self) -> "Module":
        """Switch this module and all descendants to inference mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Reset the gradient accumulators of every parameter."""
        for param in self.parameters():
            param.zero_grad()
        # Training loops call zero_grad() once per optimizer step, i.e.
        # right around every in-place weight mutation — bumping here keeps
        # the memoized fingerprint honest without hashing on the hot path.
        self.bump_state_version()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.value.size for param in self.parameters())

    # -- state dict ------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter value, keyed by dotted name."""
        return {
            name: param.value.copy()
            for name, param in self.named_parameters()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict` (strict)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=precision.dtype())
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.value.shape}"
                )
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)
        self.bump_state_version()

    # -- content fingerprint -------------------------------------------------

    def bump_state_version(self) -> None:
        """Invalidate the memoized :meth:`fingerprint`.

        Called automatically on every path that mutates parameter values
        (``load_state_dict``, ``zero_grad`` — which training loops invoke
        once per optimizer step — and ``train``). Call it manually after
        any out-of-band in-place weight edit.
        """
        self._state_version = getattr(self, "_state_version", 0) + 1

    def fingerprint(self) -> str:
        """SHA-256 content digest of every parameter (memoized).

        The digest covers sorted dotted parameter names, dtypes, shapes,
        and raw value bytes — the same content hash convention as
        :func:`repro.nn.serialize.state_digest` — so two modules with
        bitwise-equal weights share a fingerprint and a single flipped
        byte changes it. Memoized against ``_state_version``: repeated
        inference-path lookups (the result cache keys every request by
        this) cost a tuple compare, not a re-hash.
        """
        version = getattr(self, "_state_version", 0)
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None and cached[0] == version:
            return cached[1]
        digest = hashlib.sha256()
        for name, param in sorted(self.named_parameters()):
            digest.update(name.encode("utf-8"))
            digest.update(str(param.value.dtype).encode("ascii"))
            digest.update(repr(param.value.shape).encode("ascii"))
            digest.update(np.ascontiguousarray(param.value).tobytes())
        result = digest.hexdigest()
        self._fingerprint_cache = (version, result)
        return result

    # -- call sugar ---------------------------------------------------------------

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError
