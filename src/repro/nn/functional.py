"""Numerically stable activation and normalization functions."""

from __future__ import annotations

import math

import numpy as np

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as used by BERT/RoBERTa)."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`gelu` with respect to its input."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner**2
    d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x**2)
    return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def masked_softmax(scores: np.ndarray, key_mask: np.ndarray) -> np.ndarray:
    """Softmax over the last axis with exact zeros at masked positions.

    ``key_mask`` broadcasts against ``scores`` and is nonzero on real
    positions. Two properties matter for batched inference:

    * masked positions get weight exactly ``0.0`` (not merely tiny), and
    * the normalizer is a *sequential* cumulative sum, so a row's result is
      independent of how much trailing padding follows it. ``np.sum`` uses
      pairwise summation, which regroups the real terms when the axis
      grows; trailing ``+0.0`` terms leave a running sum bitwise unchanged.

    The second property is what lets the length-bucketed scheduler
    (:mod:`repro.runtime.scheduler`) guarantee bitwise-identical logits for
    any batch packing. Rows with no real positions get all-zero weights.
    """
    shifted = scores - np.max(scores, axis=-1, keepdims=True)
    exp = np.exp(shifted) * (key_mask > 0)
    denom = np.cumsum(exp, axis=-1)[..., -1:]
    return exp / np.maximum(denom, np.finfo(exp.dtype).tiny)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def logsumexp(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-sum-exp along ``axis``."""
    maximum = np.max(x, axis=axis, keepdims=True)
    summed = np.log(np.sum(np.exp(x - maximum), axis=axis, keepdims=True))
    return np.squeeze(maximum + summed, axis=axis)
