"""Optimizers (Adam, AdamW), gradient clipping, and LR schedules.

The paper's default fine-tuning setup (Section 3.3) is Adam with a learning
rate of 5e-5, batch size 16, for up to 10 epochs; those defaults live in
``repro.core.extractor`` — this module only supplies the machinery.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm.
    """
    total = math.sqrt(
        sum(float(np.sum(param.grad**2)) for param in params)
    )
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for param in params:
            param.grad *= scale
    return total


class Adam:
    """Adam optimizer (Kingma & Ba, 2015) with optional coupled L2."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]

    def _effective_grad(self, param: Parameter) -> np.ndarray:
        if self.weight_decay:
            return param.grad + self.weight_decay * param.value
        return param.grad

    def step(self, lr_scale: float = 1.0) -> None:
        """Apply one update; ``lr_scale`` multiplies the base LR (schedules)."""
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        lr = self.lr * lr_scale
        for index, param in enumerate(self.params):
            grad = self._effective_grad(param)
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.value -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
            self._decoupled_decay(param, lr)

    def _decoupled_decay(self, param: Parameter, lr: float) -> None:
        """Hook for AdamW; plain Adam does nothing extra."""

    def zero_grad(self) -> None:
        """Reset gradients of all managed parameters."""
        for param in self.params:
            param.zero_grad()


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _effective_grad(self, param: Parameter) -> np.ndarray:
        return param.grad  # decay applied directly to weights instead

    def _decoupled_decay(self, param: Parameter, lr: float) -> None:
        if self.weight_decay:
            param.value -= lr * self.weight_decay * param.value


class LinearWarmupDecay:
    """LR factor: linear warmup to 1.0, then linear decay to ``floor``."""

    def __init__(
        self, warmup_steps: int, total_steps: int, floor: float = 0.0
    ) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.warmup_steps = max(0, warmup_steps)
        self.total_steps = total_steps
        self.floor = floor

    def __call__(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return (step + 1) / self.warmup_steps
        remaining = max(0, self.total_steps - step)
        decay_span = max(1, self.total_steps - self.warmup_steps)
        return max(self.floor, remaining / decay_span)
