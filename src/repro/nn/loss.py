"""Softmax cross-entropy with ignore-index, returning loss and gradient."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, softmax

#: Target value excluded from the loss (padding / special positions).
IGNORE_INDEX = -100


def cross_entropy(
    logits: np.ndarray,
    targets: np.ndarray,
    ignore_index: int = IGNORE_INDEX,
    class_weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Weighted mean softmax cross-entropy over non-ignored targets.

    Args:
        logits: ``(N, C)`` unnormalized scores.
        targets: ``(N,)`` integer class ids; entries equal to
            ``ignore_index`` contribute neither loss nor gradient.
        class_weights: optional ``(C,)`` per-class loss weights. The usual
            imbalanced-sequence-labeling remedy: most tokens are ``O``, so
            down-weighting it keeps entity spans from collapsing.

    Returns:
        ``(loss, dlogits)`` where ``dlogits`` has shape ``(N, C)`` and is
        already normalized (by the summed weights of valid targets) so it
        can be fed straight into the model's backward pass.
    """
    logits = np.asarray(logits)
    if not np.issubdtype(logits.dtype, np.floating):
        logits = logits.astype(np.float64)
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.ndim != 1:
        raise ValueError(
            f"expected (N, C) logits and (N,) targets, got "
            f"{logits.shape} and {targets.shape}"
        )
    valid = targets != ignore_index
    if not valid.any():
        return 0.0, np.zeros_like(logits)

    safe_targets = np.where(valid, targets, 0)
    if class_weights is None:
        weights = valid.astype(logits.dtype)
    else:
        class_weights = np.asarray(class_weights, dtype=logits.dtype)
        if class_weights.shape != (logits.shape[1],):
            raise ValueError(
                f"class_weights must have shape ({logits.shape[1]},), "
                f"got {class_weights.shape}"
            )
        weights = np.where(valid, class_weights[safe_targets], 0.0)
    total_weight = float(weights.sum())
    if total_weight <= 0.0:
        return 0.0, np.zeros_like(logits)

    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(targets)), safe_targets]
    loss = float(-(picked * weights).sum() / total_weight)

    probs = softmax(logits, axis=-1)
    dlogits = probs
    dlogits[np.arange(len(targets)), safe_targets] -= 1.0
    dlogits *= weights[:, None] / total_weight
    return loss, dlogits
