"""Multi-head scaled dot-product self-attention with padding masks."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.functional import masked_softmax
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, is_inference

_MASK_FILL = -1e9


class MultiHeadSelfAttention(Module):
    """Standard transformer self-attention.

    Input is ``(batch, time, dim)``; ``mask`` is ``(batch, time)`` with 1 for
    real tokens and 0 for padding. Padded key positions receive a large
    negative score before the softmax so they get exactly zero weight.

    The query/key/value projections keep their own ``Linear`` modules (so
    parameter names, initialization, and checkpoints are unchanged) but are
    applied as one fused ``(dim, 3*dim)`` GEMM in both forward and backward:
    concatenating the weights once per call is O(dim^2) against the
    O(batch*time*dim^2) projection itself, and one large GEMM beats three
    small ones. Under :func:`repro.nn.module.inference_mode` the backward
    cache is not built at all.

    ``ctx_pad_to`` pins the contraction length of the attention-weighted
    value sum (``weights @ values``) to a fixed width (typically the
    encoder's ``max_len``). NumPy's stacked matmul regroups its inner
    accumulation depending on the contraction length, so the same sequence
    padded to different bucket widths would otherwise produce logits that
    differ in the last ulp. Padding that one contraction to a constant K
    with exact-zero weights makes the summation order identical for every
    packing, which is what lets the bucketed scheduler promise
    bitwise-identical outputs to the naive arrival-order path. All other
    matmuls contract over fixed model dimensions and need no pinning.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        ctx_pad_to: int | None = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query_proj = Linear(dim, dim, rng)
        self.key_proj = Linear(dim, dim, rng)
        self.value_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.attn_dropout = Dropout(dropout, rng)
        self.ctx_pad_to = ctx_pad_to
        self._cache: dict[str, np.ndarray] | None = None
        self._quant_fused = None  # repro.nn.quant.QuantizedTensor | None

    def attach_quantized_fused(self, tensor) -> None:
        """Install an int8 tensor for the fused QKV inference GEMM."""
        expected = (self.dim, 3 * self.dim)
        if tensor.q.shape != expected:
            raise ValueError(
                f"fused QKV quantized shape {tensor.q.shape} does not "
                f"match {expected}"
            )
        self._quant_fused = tensor

    def detach_quantized_fused(self) -> bool:
        """Remove the fused int8 tensor; True when one was attached."""
        had = self._quant_fused is not None
        self._quant_fused = None
        return had

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, time, __ = x.shape
        x = x.reshape(batch, time, self.num_heads, self.head_dim)
        return x.transpose(0, 2, 1, 3)  # (B, H, T, Dh)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, __, time, __ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, time, self.dim)

    def _fused_qkv_weights(self) -> tuple[np.ndarray, np.ndarray]:
        weight = np.concatenate(
            [
                self.query_proj.weight.value,
                self.key_proj.weight.value,
                self.value_proj.weight.value,
            ],
            axis=1,
        )  # (D, 3D)
        bias = np.concatenate(
            [
                self.query_proj.bias.value,
                self.key_proj.bias.value,
                self.value_proj.bias.value,
            ]
        )
        return weight, bias

    def _context(
        self, weights: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """``weights @ values`` with the contraction length pinned.

        Embedding both operands in zero blocks of width ``ctx_pad_to``
        keeps the inner summation order — and therefore the rounding — of
        every real term independent of the bucket width this batch was
        padded to. The padded tail contributes exact zeros (weights there
        are exactly 0.0), so real rows are unchanged mathematically and
        reproducible bitwise. Both operands are materialized contiguously
        so every packing hits the same matmul kernel.
        """
        batch, heads, time, __ = weights.shape
        target = self.ctx_pad_to
        if target is None or time > target:
            return weights @ np.ascontiguousarray(values)
        padded_weights = np.zeros(
            (batch, heads, time, target), dtype=weights.dtype
        )
        padded_weights[..., :time] = weights
        padded_values = np.zeros(
            (batch, heads, target, self.head_dim), dtype=values.dtype
        )
        padded_values[..., :time, :] = values
        return padded_weights @ padded_values

    def forward(self, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if self._quant_fused is not None and is_inference():
            # int8-weight / fp32-accumulate fused QKV (repro.nn.quant):
            # scales are per fused output channel, so Q/K/V columns each
            # keep their own resolution. Inference-only — no backward
            # cache exists on this path by construction.
            fused_weight, fused_bias = None, None
            qkv = self._quant_fused.matmul(x) + np.concatenate(
                [
                    self.query_proj.bias.value,
                    self.key_proj.bias.value,
                    self.value_proj.bias.value,
                ]
            )
        else:
            fused_weight, fused_bias = self._fused_qkv_weights()
            qkv = x @ fused_weight + fused_bias  # single GEMM for Q, K, V
        raw_q, raw_k, raw_v = np.split(qkv, 3, axis=-1)
        queries = self._split_heads(raw_q)
        keys = self._split_heads(raw_k)
        values = self._split_heads(raw_v)

        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (queries @ keys.transpose(0, 1, 3, 2)) * scale
        key_mask = np.asarray(mask)[:, None, None, :]  # (B, 1, 1, T)
        scores = np.where(key_mask > 0, scores, _MASK_FILL)
        weights = masked_softmax(scores, key_mask)
        weights = self.attn_dropout(weights)
        context = self._context(weights, values)
        out = self.out_proj(self._merge_heads(context))

        if is_inference():
            self._cache = None
        else:
            self._cache = {
                "x": x,
                "fused_weight": fused_weight,
                "queries": queries,
                "keys": keys,
                "values": values,
                "weights": weights,
                "key_mask": key_mask,
                "scale": np.asarray(scale),
            }
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        queries, keys, values = (
            cache["queries"],
            cache["keys"],
            cache["values"],
        )
        weights = cache["weights"]
        scale = float(cache["scale"])

        dcontext_merged = self.out_proj.backward(dout)
        dcontext = self._split_heads(dcontext_merged)

        dweights = dcontext @ values.transpose(0, 1, 3, 2)
        dvalues = weights.transpose(0, 1, 3, 2) @ dcontext
        dweights = self.attn_dropout.backward(dweights)

        # Softmax backward: dS = W * (dW - sum_k dW*W).
        dscores = weights * (
            dweights - np.sum(dweights * weights, axis=-1, keepdims=True)
        )
        # Masked positions had constant scores; their gradient is zero.
        dscores = np.where(cache["key_mask"] > 0, dscores, 0.0)
        dscores = dscores * scale

        dqueries = dscores @ keys
        dkeys = dscores.transpose(0, 1, 3, 2) @ queries

        # Fused projection backward: one GEMM each for the weight gradient
        # and the input gradient, then split back per projection.
        dfused = np.concatenate(
            [
                self._merge_heads(dqueries),
                self._merge_heads(dkeys),
                self._merge_heads(dvalues),
            ],
            axis=-1,
        )  # (B, T, 3D)
        x = cache["x"]
        flat_x = x.reshape(-1, self.dim)
        flat_dfused = dfused.reshape(-1, 3 * self.dim)
        dweight = flat_x.T @ flat_dfused  # (D, 3D)
        dbias = flat_dfused.sum(axis=0)
        dq_w, dk_w, dv_w = np.split(dweight, 3, axis=1)
        dq_b, dk_b, dv_b = np.split(dbias, 3)
        self.query_proj.weight.grad += dq_w
        self.key_proj.weight.grad += dk_w
        self.value_proj.weight.grad += dv_w
        self.query_proj.bias.grad += dq_b
        self.key_proj.bias.grad += dk_b
        self.value_proj.bias.grad += dv_b
        return dfused @ cache["fused_weight"].T
