"""Multi-head scaled dot-product self-attention with padding masks."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module

_MASK_FILL = -1e9


class MultiHeadSelfAttention(Module):
    """Standard transformer self-attention.

    Input is ``(batch, time, dim)``; ``mask`` is ``(batch, time)`` with 1 for
    real tokens and 0 for padding. Padded key positions receive a large
    negative score before the softmax so they get (numerically) zero weight.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query_proj = Linear(dim, dim, rng)
        self.key_proj = Linear(dim, dim, rng)
        self.value_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.attn_dropout = Dropout(dropout, rng)
        self._cache: dict[str, np.ndarray] | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, time, __ = x.shape
        x = x.reshape(batch, time, self.num_heads, self.head_dim)
        return x.transpose(0, 2, 1, 3)  # (B, H, T, Dh)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, __, time, __ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, time, self.dim)

    def forward(self, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        queries = self._split_heads(self.query_proj(x))
        keys = self._split_heads(self.key_proj(x))
        values = self._split_heads(self.value_proj(x))

        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (queries @ keys.transpose(0, 1, 3, 2)) * scale
        key_mask = np.asarray(mask)[:, None, None, :]  # (B, 1, 1, T)
        scores = np.where(key_mask > 0, scores, _MASK_FILL)
        weights = softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)
        context = weights @ values
        out = self.out_proj(self._merge_heads(context))

        self._cache = {
            "queries": queries,
            "keys": keys,
            "values": values,
            "weights": weights,
            "key_mask": key_mask,
            "scale": np.asarray(scale),
        }
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        queries, keys, values = (
            cache["queries"],
            cache["keys"],
            cache["values"],
        )
        weights = cache["weights"]
        scale = float(cache["scale"])

        dcontext_merged = self.out_proj.backward(dout)
        dcontext = self._split_heads(dcontext_merged)

        dweights = dcontext @ values.transpose(0, 1, 3, 2)
        dvalues = weights.transpose(0, 1, 3, 2) @ dcontext
        dweights = self.attn_dropout.backward(dweights)

        # Softmax backward: dS = W * (dW - sum_k dW*W).
        dscores = weights * (
            dweights - np.sum(dweights * weights, axis=-1, keepdims=True)
        )
        # Masked positions had constant scores; their gradient is zero.
        dscores = np.where(cache["key_mask"] > 0, dscores, 0.0)
        dscores = dscores * scale

        dqueries = dscores @ keys
        dkeys = dscores.transpose(0, 1, 3, 2) @ queries

        dx = self.query_proj.backward(self._merge_heads(dqueries))
        dx = dx + self.key_proj.backward(self._merge_heads(dkeys))
        dx = dx + self.value_proj.backward(self._merge_heads(dvalues))
        return dx
