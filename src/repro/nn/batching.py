"""Batching helpers: padding, masks, and minibatch iteration."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.nn import precision


def pad_sequences(
    sequences: Sequence[Sequence[int]],
    pad_value: int = 0,
    max_len: int | None = None,
    width: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pad variable-length id sequences into a dense batch.

    Args:
        sequences: list of integer sequences.
        pad_value: fill value for padding positions.
        max_len: optional hard cap; longer sequences are truncated.
        width: exact padded width to use, overriding the longest-member
            computation (and ``max_len``). This is how the batch scheduler
            (:mod:`repro.runtime.scheduler`) hands its width decisions to
            padding, so planning and padding cannot disagree.

    Returns:
        ``(ids, mask)`` — both ``(batch, time)``; ``mask`` is 1.0 on real
        tokens and 0.0 on padding.
    """
    if not sequences:
        raise ValueError("cannot pad an empty batch")
    lengths = np.array([len(seq) for seq in sequences], dtype=np.int64)
    if width is None:
        longest = int(lengths.max())
        width = min(longest, max_len) if max_len else longest
        width = max(width, 1)
    elif width < 1:
        raise ValueError("width must be positive")
    clipped = np.minimum(lengths, width)
    keep = np.arange(width)[None, :] < clipped[:, None]
    ids = np.full((len(sequences), width), pad_value, dtype=np.int64)
    if bool((lengths > width).any()):
        flat = [
            token
            for seq in sequences
            for token in (seq if len(seq) <= width else list(seq)[:width])
        ]
    else:
        flat = [token for seq in sequences for token in seq]
    ids[keep] = np.asarray(flat, dtype=np.int64)
    return ids, keep.astype(precision.dtype())


def iterate_minibatches(
    num_items: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(num_items)`` in batches.

    Shuffles when ``rng`` is given (training); sequential otherwise (eval).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(num_items)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, num_items, batch_size):
        yield order[start : start + batch_size]
