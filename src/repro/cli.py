"""Command-line interface for the reproduction.

Subcommands cover the full lifecycle::

    repro tasks list
    repro build-dataset --name sustainability-goals --out goals.jsonl
    repro train --data goals.jsonl --out model/
    repro train --task netzero-target --out clf/ --epochs 4
    repro extract --model model/ --text "Reduce waste by 20% by 2030."
    repro extract --task netzero-target --model clf/ --text "Net zero by 2040."
    repro evaluate --data goals.jsonl --model model/
    repro deploy --data goals.jsonl --db objectives.db --scale 0.05
    repro serve-bench --requests 64 --out BENCH_serving.json
    repro serve-fleet --replicas 3 --policy least-loaded --requests 48
    repro serve-fleet --replicas 2 --swap model/ --requests 48
    repro kg build --db objectives.db --out graph.json --workers auto
    repro kg drift --db objectives.db --json
    repro kg company --db objectives.db --rank
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from collections.abc import Sequence

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.core.schema import (
    NETZEROFACTS_FIELDS,
    SUSTAINABILITY_FIELDS,
    TAXONOMY_KPI_FIELDS,
)
from repro.datasets.base import Dataset, train_test_split
from repro.datasets.initiatives import build_initiative_sentences
from repro.datasets.netzero_targets import LABEL_FIELD, build_netzero_targets
from repro.datasets.netzerofacts import build_netzerofacts
from repro.datasets.sustainability import build_sustainability_goals
from repro.datasets.taxonomy_kpi import build_taxonomy_kpi
from repro.eval import evaluate_extractions, render_table
from repro.models.training import FineTuneConfig
from repro.runtime.errors import InputError, ReproError, RunInterrupted
from repro.runtime.resilience import MAX_BLOCK_CHARS, RetryPolicy, run_stage

#: Exit codes of ``repro extract`` / ``repro train`` (see DESIGN.md
#: "Failure model"): 0 = success (possibly partial, with a warning on
#: stderr), 2 = input error, 3 = model/numerical error, 4 = interrupted
#: by SIGINT/SIGTERM after a graceful drain — all in-flight work was
#: committed (journal segment or training checkpoint) and re-running
#: the same command with ``--resume`` continues where it left off.
EXIT_INPUT_ERROR = 2
EXIT_MODEL_ERROR = 3
EXIT_INTERRUPTED = 4


def _exit_code_for(error: ReproError) -> int:
    if isinstance(error, RunInterrupted):
        return EXIT_INTERRUPTED
    return EXIT_INPUT_ERROR if isinstance(error, InputError) else EXIT_MODEL_ERROR

def _workers_arg(value: str) -> int | str:
    """``--workers`` values: ``auto`` (one per CPU core) or a positive int."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1")
    return count


_DATASET_BUILDERS = {
    "sustainability-goals": (build_sustainability_goals, SUSTAINABILITY_FIELDS),
    "netzerofacts": (build_netzerofacts, NETZEROFACTS_FIELDS),
    "taxonomy-kpi": (build_taxonomy_kpi, TAXONOMY_KPI_FIELDS),
    "netzero-target": (build_netzero_targets, (LABEL_FIELD,)),
    "initiative-sentence": (build_initiative_sentences, (LABEL_FIELD,)),
}


def _cmd_build_dataset(args: argparse.Namespace) -> int:
    builder, __ = _DATASET_BUILDERS[args.name]
    if args.size is None:
        dataset = builder(seed=args.seed)
    else:
        dataset = builder(seed=args.seed, size=args.size)
    dataset.save_jsonl(args.out)
    print(f"wrote {len(dataset)} objectives to {args.out}")
    return 0


def _cmd_tasks_list(args: argparse.Namespace) -> int:
    from repro.eval.tables import render_table as _render
    from repro.tasks import load_all_tasks

    rows = [
        [task.name, task.kind, ", ".join(task.fields), task.description]
        for task in load_all_tasks().values()
    ]
    print(_render(["Task", "Kind", "Fields", "Description"], rows))
    return 0


def _get_task_or_exit(name: str):
    """Registry lookup; unknown names print the taxonomy error (exit 2)."""
    from repro.tasks import get_task

    try:
        return get_task(name)
    except ReproError as error:
        print(f"error [{type(error).__name__}]: {error}", file=sys.stderr)
        return None


def _cmd_train(args: argparse.Namespace) -> int:
    task = _get_task_or_exit(args.task)
    if task is None:
        return EXIT_INPUT_ERROR
    if args.data:
        dataset = Dataset.load_jsonl(args.data)
    else:
        dataset = task.build_dataset(seed=args.seed, size=args.dataset_size)
        print(
            f"generated {len(dataset)} examples for task "
            f"{task.name!r} (seed {args.seed})"
        )
    finetune = FineTuneConfig(
        epochs=args.epochs, learning_rate=args.learning_rate
    )
    if task.kind == "extraction":
        fields = dataset.fields or task.fields
        model = task.build_model(
            fields=tuple(fields), model=args.model, finetune=finetune
        )
    else:
        model = task.build_model(finetune=finetune)
    train, __ = train_test_split(dataset, args.test_fraction, seed=args.seed)
    checkpoint = None
    if args.checkpoint_dir:
        from repro.runtime.checkpoint import CheckpointManager

        checkpoint = CheckpointManager(
            args.checkpoint_dir,
            every=args.checkpoint_every,
            resume=args.resume,
        )
    print(f"training on {len(train)} objectives ...")
    from repro.runtime.supervisor import GracefulShutdown

    try:
        if checkpoint is not None:
            # First SIGINT/SIGTERM drains: the next cadence poll commits
            # a checkpoint, then fit raises RunInterrupted (exit 4).
            with GracefulShutdown(
                on_signal=checkpoint.request_drain
            ) as shutdown:
                model.fit(train, checkpoint=checkpoint)
        else:
            model.fit(train)
    except RunInterrupted as error:
        print(
            f"interrupted ({shutdown.signal_name}): {error}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except ReproError as error:
        print(
            f"error [{type(error).__name__}]: {error}", file=sys.stderr
        )
        return _exit_code_for(error)
    if checkpoint is not None and checkpoint.resumed_from is not None:
        marker = " (rolled back past a corrupt checkpoint)" if (
            checkpoint.rolled_back
        ) else ""
        print(f"resumed_from_step={checkpoint.resumed_from}{marker}")
    model.save(args.out)
    print(
        f"saved model to {args.out} "
        f"(weak-label coverage {model.weak_summary()['coverage']:.1%})"
    )
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    task = _get_task_or_exit(args.task)
    if task is None:
        return EXIT_INPUT_ERROR
    try:
        model = task.load_model(args.model)
    except (OSError, KeyError, ValueError, ReproError) as error:
        print(f"error: cannot load model: {error}", file=sys.stderr)
        return EXIT_INPUT_ERROR
    extractor = model.backend
    overrides = {}
    if args.batching:
        overrides["batching"] = args.batching
    if args.token_budget is not None:
        overrides["token_budget"] = args.token_budget
    if args.cache_capacity is not None:
        overrides["result_cache_capacity"] = args.cache_capacity
    if overrides:
        try:
            extractor.config = dataclasses.replace(
                extractor.config, **overrides
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_INPUT_ERROR
    if args.text:
        texts = [args.text]
    elif args.input:
        with open(args.input, encoding="utf-8") as handle:
            texts = [line.strip() for line in handle if line.strip()]
    else:
        print("either --text or --input is required", file=sys.stderr)
        return EXIT_INPUT_ERROR

    if args.quantize:
        if task.kind != "extraction":
            print(
                "error: --quantize applies to extraction tasks only",
                file=sys.stderr,
            )
            return EXIT_INPUT_ERROR
        try:
            report = extractor.enable_quantization(
                mode=args.quantize, calibration_texts=texts[:32]
            )
        except ReproError as error:
            print(
                f"error [{type(error).__name__}]: {error}", file=sys.stderr
            )
            return _exit_code_for(error)
        print(
            json.dumps({"quantization_gate": report.as_dict()}),
            file=sys.stderr,
        )

    policy = RetryPolicy(max_retries=args.max_retries)
    skipped = 0
    degraded = 0
    try:
        if not texts:
            raise InputError("no input texts", stage="validate")
        for index, text in enumerate(texts):
            if len(text) > MAX_BLOCK_CHARS:
                raise InputError(
                    f"input line {index + 1} is {len(text)} chars "
                    f"(limit {MAX_BLOCK_CHARS})",
                    stage="validate",
                )
        if args.run_dir:
            from repro.runtime.supervisor import GracefulShutdown

            # Durable journaled run: each committed segment survives a
            # crash; SIGINT/SIGTERM drains in-flight segments first.
            with GracefulShutdown() as shutdown:
                results = model.run_journaled(
                    texts,
                    args.run_dir,
                    workers=args.workers,
                    resume=args.resume,
                    segment_items=args.journal_segment,
                    on_error=args.on_error,
                    drain_event=shutdown.event,
                )
        elif task.kind == "extraction":
            results = _extract_resilient(
                extractor, texts, args.on_error, policy, workers=args.workers
            )
        else:
            results = model.run_resilient(
                texts,
                on_error=args.on_error,
                policy=policy,
                workers=args.workers,
            )
        for text, (details, status) in zip(texts, results):
            if status == "skipped":
                skipped += 1
                continue
            payload = {"objective": text, "details": details}
            if args.on_error != "raise":
                payload["status"] = status
            if status != "ok":
                degraded += 1
            print(json.dumps(payload))
    except RunInterrupted as error:
        print(f"interrupted: {error}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as error:
        stage = error.stage or "extract"
        print(
            f"error [{type(error).__name__}] in stage {stage!r}: {error}",
            file=sys.stderr,
        )
        return _exit_code_for(error)
    if args.stats and extractor.last_run_stats is not None:
        print(
            json.dumps({"stats": extractor.last_run_stats.as_dict()}),
            file=sys.stderr,
        )
    if skipped or degraded:
        print(
            f"warning: partial success — {skipped} input(s) skipped, "
            f"{degraded} degraded to empty details",
            file=sys.stderr,
        )
    return 0


def _extract_resilient(
    extractor: WeakSupervisionExtractor,
    texts: list[str],
    on_error: str,
    policy: RetryPolicy,
    workers: int | str | None = 1,
) -> list[tuple[dict[str, str], str]]:
    """Batch-extract with per-text fault isolation.

    Mirrors the pipeline runtime: one optimistic batched call (sharded
    over worker processes when ``workers`` > 1 — bitwise-identical
    results either way); if it raises and the policy is not ``"raise"``,
    fall back to sequential per-text calls where each failure is skipped
    or degraded to empty details.
    """
    from repro.runtime.parallel import extract_batch_parallel, resolve_workers

    def batch() -> list[dict[str, str]]:
        if resolve_workers(workers) > 1 and len(texts) > 1:
            return extract_batch_parallel(extractor, texts, workers=workers)
        return extractor.extract_batch(texts)

    try:
        details_list = run_stage(batch, stage="extract", policy=policy)
        return [(details, "ok") for details in details_list]
    except ReproError:
        if on_error == "raise":
            raise
    empty = {field: "" for field in extractor.config.fields}
    results: list[tuple[dict[str, str], str]] = []
    for text in texts:
        try:
            details = run_stage(
                lambda t=text: extractor.extract(t),
                stage="extract",
                policy=policy,
            )
            results.append((details, "ok"))
        except ReproError:
            if on_error == "skip":
                results.append((dict(empty), "skipped"))
            else:
                results.append((dict(empty), "failed"))
    return results


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = Dataset.load_jsonl(args.data)
    extractor = WeakSupervisionExtractor.load(args.model)
    __, test = train_test_split(dataset, args.test_fraction, seed=args.seed)
    predictions = extractor.extract_batch([o.text for o in test.objectives])
    report = evaluate_extractions(
        predictions, [o.details for o in test.objectives], dataset.fields
    )
    rows = [
        [field] + [f"{m:.3f}" for m in report.field_metrics(field)]
        for field in dataset.fields
    ]
    rows.append(
        [
            "micro",
            f"{report.precision:.3f}",
            f"{report.recall:.3f}",
            f"{report.f1:.3f}",
        ]
    )
    print(render_table(["Field", "P", "R", "F1"], rows))
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.deploy import build_trained_pipeline, run_scenario_1

    dataset = Dataset.load_jsonl(args.data)
    print("training detector + extractor ...")
    pipeline = build_trained_pipeline(
        dataset,
        seed=args.seed,
        extractor_config=ExtractorConfig(
            fields=tuple(dataset.fields or SUSTAINABILITY_FIELDS),
            finetune=FineTuneConfig(epochs=args.epochs),
        ),
    )
    from repro.runtime.parallel import resolve_workers

    workers = resolve_workers(args.workers)
    print(
        f"processing deployment corpus (scale={args.scale}, "
        f"workers={workers}) ..."
    )
    result = run_scenario_1(
        pipeline, scale=args.scale, store_path=args.db, workers=workers
    )
    docs, pages, detected = result.totals
    print(
        f"processed {docs} documents / {pages} pages; "
        f"stored {detected} objectives in {args.db}"
    )
    result.store.close()
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import LoadLevel, run_serving_bench

    levels = []
    for spec in args.level or ["closed:1", "closed:4", "closed:16"]:
        try:
            mode, offered = spec.split(":", 1)
            levels.append(
                LoadLevel(
                    name=f"{mode}-{offered}",
                    mode=mode,
                    offered=float(offered),
                    num_requests=args.requests,
                )
            )
        except ValueError as error:
            print(f"error: bad --level {spec!r}: {error}", file=sys.stderr)
            return EXIT_INPUT_ERROR
    print(
        f"serving bench: {len(levels)} level(s) x 2 modes "
        f"(micro-batching vs. batch-size-1), {args.requests} requests/level"
    )
    report = run_serving_bench(
        levels,
        seed=args.seed,
        num_workers=args.workers,
        max_batch_requests=args.max_batch_requests,
        max_wait_ms=args.max_wait_ms,
        kind=args.kind,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    comparison = report["comparison"]
    print(
        f"[{comparison['level']}] micro-batch "
        f"{comparison['microbatch_throughput_rps']:.1f} rps "
        f"(p95 {comparison['microbatch_p95_seconds'] * 1000:.1f} ms) vs. "
        f"batch-1 {comparison['batch1_throughput_rps']:.1f} rps "
        f"(p95 {comparison['batch1_p95_seconds'] * 1000:.1f} ms) — "
        f"{comparison['throughput_speedup']:.2f}x throughput"
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    import threading
    import time
    from pathlib import Path

    from repro.serve.engine import ServingConfig
    from repro.serve.fleet import FleetConfig, FleetRouter
    from repro.serve.loadgen import (
        LoadLevel,
        build_demo_backend,
        build_request_texts,
        build_swappable_extractor,
        run_load_level,
    )

    try:
        config = FleetConfig(
            replicas=args.replicas,
            policy=args.policy,
            engine=ServingConfig(
                num_workers=args.workers, queue_depth=args.queue_depth
            ),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INPUT_ERROR
    detector, extractor = build_demo_backend(seed=args.seed)
    if args.swap:
        # The hot-swap path needs a checkpoint that round-trips through
        # the manifest-verified load; the demo extractor's shrunken
        # encoder does not, so serve the zoo-geometry one instead.
        extractor = build_swappable_extractor(seed=args.seed)
        swap_dir = Path(args.swap)
        if not (swap_dir / "config.json").exists():
            print(f"saving swap checkpoint to {swap_dir} ...")
            extractor.save(swap_dir)
    texts = build_request_texts(args.seed + 1, max(args.requests, 8))
    level = LoadLevel(
        name=f"closed-{args.concurrency}",
        mode="closed",
        offered=float(args.concurrency),
        num_requests=args.requests,
    )
    print(
        f"fleet: {args.replicas} replica(s), policy={args.policy}, "
        f"{args.requests} requests at concurrency {args.concurrency}"
    )
    router = FleetRouter(
        detector=detector, extractor=extractor, config=config
    )
    swap_report = None
    with router:
        swapper = None
        if args.swap:
            def _swap_later() -> None:
                nonlocal swap_report
                time.sleep(args.swap_after)
                swap_report = router.swap_model(
                    args.swap, probe_texts=texts[:2]
                )

            swapper = threading.Thread(target=_swap_later, daemon=True)
            swapper.start()
        load_report = run_load_level(
            router, texts, level, kind=args.kind, seed=args.seed
        )
        if swapper is not None:
            swapper.join(timeout=120.0)
        snapshot = router.metrics_snapshot()
    counters = snapshot["router"]["counters"]
    print(
        f"completed {counters.get('completed', 0):.0f} / "
        f"submitted {counters.get('submitted', 0):.0f} "
        f"(failed {counters.get('failed', 0):.0f}, "
        f"rejected {counters.get('rejected', 0):.0f}, "
        f"failover redispatches "
        f"{counters.get('failover.redispatched', 0):.0f}); "
        f"client p95 {load_report['latency']['p95'] * 1000:.1f} ms"
    )
    print(f"health: {snapshot['router']['health']}")
    if swap_report is not None:
        print(
            f"swap: {swap_report.status} "
            f"(gen {swap_report.from_generation} -> "
            f"{swap_report.to_generation}, states {swap_report.states}, "
            f"rejections during swap {swap_report.rejections_during_swap})"
            + (f" reason: {swap_report.reason}" if swap_report.reason else "")
        )
    if args.out:
        payload = {
            "config": {
                "replicas": args.replicas,
                "policy": args.policy,
                "workers": args.workers,
                "requests": args.requests,
                "concurrency": args.concurrency,
                "kind": args.kind,
                "seed": args.seed,
            },
            "load": load_report,
            "fleet": snapshot,
            "swap": swap_report.as_dict() if swap_report else None,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def _kg_rows(args: argparse.Namespace):
    """Graph rows from the chosen source: a store DB or the demo panel."""
    from repro.kg import rows_from_records, rows_from_store

    if args.db:
        from repro.storage import ObjectiveStore

        store = ObjectiveStore(args.db)
        try:
            return rows_from_store(store)
        finally:
            store.close()
    if args.panel:
        from repro.datasets.sustainability import (
            build_company_panel,
            panel_records,
        )

        panel = build_company_panel(seed=args.seed)
        return rows_from_records(panel_records(panel))
    raise InputError("either --db or --panel is required", stage="kg")


def _kg_graph(args: argparse.Namespace):
    from repro.kg import build_graph, build_graph_parallel

    rows = _kg_rows(args)
    workers = getattr(args, "workers", 1)
    from repro.runtime.parallel import resolve_workers

    if resolve_workers(workers) > 1:
        return build_graph_parallel(
            rows, workers=workers, resolve_threshold=args.resolve_threshold
        )
    return build_graph(rows, resolve_threshold=args.resolve_threshold)


def _cmd_kg_build(args: argparse.Namespace) -> int:
    from repro.kg import graph_fingerprint, graph_to_payload

    try:
        graph = _kg_graph(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return _exit_code_for(error)
    payload = graph_to_payload(graph)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    kinds: dict[str, int] = {}
    for node in payload["nodes"]:
        kinds[node["kind"]] = kinds.get(node["kind"], 0) + 1
    merges = len(payload["resolution"].get("merges", []))
    print(
        f"graph: {len(payload['nodes'])} nodes "
        f"({', '.join(f'{kinds[k]} {k}' for k in sorted(kinds))}), "
        f"{len(payload['edges'])} edges, {merges} alias merge(s)"
    )
    print(f"fingerprint: {graph_fingerprint(graph)}")
    if args.out:
        print(f"wrote {args.out}")
    return 0


def _cmd_kg_drift(args: argparse.Namespace) -> int:
    from repro.kg import detect_drift

    try:
        graph = _kg_graph(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return _exit_code_for(error)
    findings = detect_drift(
        graph,
        similarity_threshold=args.similarity_threshold,
        amount_tolerance=args.amount_tolerance,
    )
    if args.json:
        for finding in findings:
            print(json.dumps(finding.as_dict(), sort_keys=True))
    else:
        rows = [
            [
                finding.kind,
                finding.company,
                finding.topic,
                f"{finding.year_from}->{finding.year_to}",
                finding.before,
                finding.after,
                finding.provenance[0].report_id,
            ]
            for finding in findings
        ]
        print(
            render_table(
                ["Kind", "Company", "Topic", "Years", "Before", "After",
                 "Source"],
                rows,
            )
        )
    print(f"{len(findings)} drift finding(s)", file=sys.stderr)
    return 0


def _cmd_kg_company(args: argparse.Namespace) -> int:
    from repro.kg import all_scorecards, company_scorecard, detect_drift

    try:
        graph = _kg_graph(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return _exit_code_for(error)
    findings = detect_drift(graph)
    if args.name:
        try:
            card = company_scorecard(graph, args.name, findings)
        except KeyError:
            print(f"error: unknown company {args.name!r}", file=sys.stderr)
            return EXIT_INPUT_ERROR
        print(json.dumps(card.as_dict(), indent=2, sort_keys=True))
        return 0
    cards = sorted(
        all_scorecards(graph, findings),
        key=lambda c: (-c.risk, c.company),
    )
    rows = [
        [
            card.company,
            f"{card.risk:.3f}",
            str(card.objectives),
            f"{card.mean_specificity:.2f}",
            str(sum(card.drift_counts.values())),
            ",".join(str(year) for year in card.reporting_years),
        ]
        for card in cards
    ]
    print(
        render_table(
            ["Company", "Risk", "Objectives", "Specificity", "Drift",
             "Years"],
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weak-supervision sustainability detail extraction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tasks = sub.add_parser(
        "tasks", help="inspect the task registry (see DESIGN.md §6h)"
    )
    tasks_sub = tasks.add_subparsers(dest="tasks_command", required=True)
    tasks_list = tasks_sub.add_parser(
        "list", help="list every registered task with its schema"
    )
    tasks_list.set_defaults(func=_cmd_tasks_list)

    build = sub.add_parser("build-dataset", help="generate a dataset JSONL")
    build.add_argument("--name", choices=sorted(_DATASET_BUILDERS), required=True)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--size",
        type=int,
        default=None,
        help="number of examples (default: the dataset's paper-scale size)",
    )
    build.add_argument("--out", required=True)
    build.set_defaults(func=_cmd_build_dataset)

    train = sub.add_parser("train", help="train a task model")
    train.add_argument(
        "--task",
        default="goalspotter",
        help="registered task to train (see 'repro tasks list'; "
        "default goalspotter)",
    )
    train.add_argument(
        "--data",
        help="dataset JSONL (default: generate the task's own dataset)",
    )
    train.add_argument("--out", required=True)
    train.add_argument(
        "--model",
        default="roberta",
        help="encoder zoo variant (extraction tasks only)",
    )
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--learning-rate", type=float, default=1e-3)
    train.add_argument("--test-fraction", type=float, default=0.2)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--dataset-size",
        type=int,
        default=None,
        help="generated-dataset size when --data is omitted",
    )
    train.add_argument(
        "--checkpoint-dir",
        help="directory for durable training checkpoints (atomic, "
        "checksummed; resume is bitwise-identical to uninterrupted)",
    )
    train.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        help="checkpoint every N optimizer steps (default 10)",
    )
    train.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="resume from the latest good checkpoint in --checkpoint-dir "
        "(default on; --no-resume starts fresh)",
    )
    train.set_defaults(func=_cmd_train)

    extract = sub.add_parser("extract", help="extract details from text")
    extract.add_argument(
        "--task",
        default="goalspotter",
        help="registered task the saved model belongs to "
        "(classification tasks emit Label/Score rows)",
    )
    extract.add_argument("--model", required=True)
    extract.add_argument("--text")
    extract.add_argument("--input", help="file with one objective per line")
    extract.add_argument(
        "--batching",
        choices=["bucketed", "arrival"],
        help="override the inference batching strategy",
    )
    extract.add_argument(
        "--token-budget",
        type=int,
        help="padded-token budget per microbatch (bucketed batching)",
    )
    extract.add_argument(
        "--cache-capacity",
        type=int,
        help="content-addressed result cache entries (0 disables; repeated "
        "inputs are served bitwise-identically without a forward pass)",
    )
    extract.add_argument(
        "--quantize",
        choices=["int8"],
        help="enable the int8 encoder path, gated on an equivalence check "
        "over the inputs (refuses — exit 3 — if any top label changes)",
    )
    extract.add_argument(
        "--stats",
        action="store_true",
        help="print runtime stats (tokens/sec, padding waste, BPE and "
        "result_cache_* hit/miss/eviction counters) as JSON on stderr",
    )
    extract.add_argument(
        "--on-error",
        choices=["raise", "skip", "degrade"],
        default="raise",
        help="failure policy: abort (exit 2/3), skip failed inputs, or "
        "degrade them to empty flagged details (partial success exits 0 "
        "with a warning on stderr)",
    )
    extract.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="retry attempts per extraction stage (seeded backoff)",
    )
    extract.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="worker processes for batch extraction ('auto' = one per "
        "CPU core); results are bitwise-identical to --workers 1",
    )
    extract.add_argument(
        "--run-dir",
        default=None,
        help="durable run directory: journal every segment so a crashed "
        "or interrupted run resumes exactly once (output is "
        "bitwise-identical to an uninterrupted run)",
    )
    extract.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="with --run-dir: replay the journal and skip committed "
        "segments (default on; --no-resume wipes the run directory)",
    )
    extract.add_argument(
        "--journal-segment",
        type=int,
        default=16,
        metavar="N",
        help="with --run-dir: target inputs per journal segment "
        "(default 16); smaller segments commit more often",
    )
    extract.set_defaults(func=_cmd_extract)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved model")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--test-fraction", type=float, default=0.2)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.set_defaults(func=_cmd_evaluate)

    deploy = sub.add_parser("deploy", help="run the deployment pipeline")
    deploy.add_argument("--data", required=True)
    deploy.add_argument("--db", default="objectives.db")
    deploy.add_argument("--scale", type=float, default=0.05)
    deploy.add_argument("--epochs", type=int, default=10)
    deploy.add_argument("--seed", type=int, default=0)
    deploy.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        help="worker processes for corpus processing (default 'auto' = "
        "one per CPU core); records are bitwise-identical to --workers 1",
    )
    deploy.set_defaults(func=_cmd_deploy)

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the online serving engine (micro-batch vs. batch-1)",
    )
    serve.add_argument(
        "--level",
        action="append",
        metavar="MODE:OFFERED",
        help="offered-load level, e.g. closed:8 (8 concurrent clients) or "
        "open:200 (200 req/s Poisson arrivals); repeatable "
        "(default closed:1 closed:4 closed:16)",
    )
    serve.add_argument("--requests", type=int, default=64,
                       help="requests per level (default 64)")
    serve.add_argument("--workers", type=int, default=2,
                       help="engine worker threads (default 2)")
    serve.add_argument("--max-batch-requests", type=int, default=8,
                       help="micro-batch row bound (default 8)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch coalescing window (default 2 ms)")
    serve.add_argument("--kind", choices=["extract", "detect"],
                       default="extract", help="which stage to serve")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--out", default="BENCH_serving.json",
                       help="report path (default BENCH_serving.json)")
    serve.set_defaults(func=_cmd_serve_bench)

    from repro.serve.router import ROUTING_POLICIES

    fleet = sub.add_parser(
        "serve-fleet",
        help="drive a replicated serving fleet (routing, failover, hot-swap)",
    )
    fleet.add_argument("--replicas", type=int, default=2,
                       help="serving replicas (default 2)")
    fleet.add_argument("--policy", choices=sorted(ROUTING_POLICIES),
                       default="least-loaded",
                       help="routing policy (default least-loaded)")
    fleet.add_argument("--requests", type=int, default=32,
                       help="total requests to drive (default 32)")
    fleet.add_argument("--concurrency", type=int, default=4,
                       help="closed-loop client concurrency (default 4)")
    fleet.add_argument("--workers", type=int, default=1,
                       help="worker threads per replica (default 1)")
    fleet.add_argument("--queue-depth", type=int, default=256,
                       help="per-priority queue bound per replica")
    fleet.add_argument("--kind", choices=["extract", "detect"],
                       default="extract", help="which stage to serve")
    fleet.add_argument("--swap", metavar="DIR", default=None,
                       help="hot-swap to the checkpoint in DIR mid-run "
                       "(saved there first if DIR is empty)")
    fleet.add_argument("--swap-after", type=float, default=0.2,
                       help="seconds into the run to trigger the swap")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--out", default=None,
                       help="optional JSON report path")
    fleet.set_defaults(func=_cmd_serve_fleet)

    kg_source = argparse.ArgumentParser(add_help=False)
    kg_source.add_argument(
        "--db", default=None,
        help="objective store path (schema v2 with reporting years)",
    )
    kg_source.add_argument(
        "--panel", action="store_true",
        help="use the seeded multi-year demo panel instead of a store",
    )
    kg_source.add_argument("--seed", type=int, default=0,
                           help="panel seed (with --panel)")
    kg_source.add_argument(
        "--resolve-threshold", type=float, default=0.6,
        help="entity-resolution token-set similarity bound (default 0.6)",
    )

    kg = sub.add_parser(
        "kg",
        help="knowledge graph: entity resolution, goal tracking, drift",
    )
    kg_sub = kg.add_subparsers(dest="kg_command", required=True)

    kg_build = kg_sub.add_parser(
        "build", parents=[kg_source],
        help="build the knowledge graph and write its canonical JSON",
    )
    kg_build.add_argument("--out", default=None,
                          help="canonical graph JSON path")
    kg_build.add_argument(
        "--workers", type=_workers_arg, default=1,
        help="worker processes for sharded ingestion ('auto' = one per "
        "CPU core); the graph is bitwise-identical to --workers 1",
    )
    kg_build.set_defaults(func=_cmd_kg_build)

    kg_drift = kg_sub.add_parser(
        "drift", parents=[kg_source],
        help="scan goal threads for greenwashing drift patterns",
    )
    kg_drift.add_argument(
        "--similarity-threshold", type=float, default=0.5,
        help="goal-identity Jaccard bound for threading (default 0.5)",
    )
    kg_drift.add_argument(
        "--amount-tolerance", type=float, default=0.0,
        help="relative ambition shrink tolerated before weakened_amount "
        "fires (default 0.0 = any shrink)",
    )
    kg_drift.add_argument("--json", action="store_true",
                          help="one JSON finding per line instead of a table")
    kg_drift.set_defaults(func=_cmd_kg_drift)

    kg_company = kg_sub.add_parser(
        "company", parents=[kg_source],
        help="company scorecards and the greenwashing-risk ranking",
    )
    kg_company.add_argument(
        "--name", default=None,
        help="canonical company name (omit for the full risk ranking)",
    )
    kg_company.set_defaults(func=_cmd_kg_company)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
