"""CRF detail extractor implementing the common interface.

Training data comes from the same weak supervision signals as the
transformer (Algorithm 1 output) — the comparison in Table 4 is about the
*model family*, not the labeling: the CRF consumes word-level IOB labels
directly (no subword projection needed).
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import shutil
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.core.base import DetailExtractor
from repro.core.decoding import decode_details
from repro.core.iob import LabelScheme
from repro.core.matching import ExactMatcher
from repro.core.schema import SUSTAINABILITY_FIELDS, AnnotatedObjective
from repro.core.weak_labeling import WeakLabelingStats, weakly_label_objective
from repro.crf.features import FeatureExtractor
from repro.crf.model import LinearChainCRF
from repro.runtime.checkpoint import (
    read_json,
    replace_dir,
    verify_manifest,
    write_manifest,
)
from repro.runtime.errors import ArtifactError
from repro.text.normalize import TextNormalizer
from repro.text.words import WordTokenizer


@dataclasses.dataclass(frozen=True)
class CrfConfig:
    """Training hyperparameters for the CRF baseline."""

    epochs: int = 8
    learning_rate: float = 0.1
    lr_decay: float = 0.85
    l2: float = 1e-4
    seed: int = 13


class CrfDetailExtractor(DetailExtractor):
    """Linear-chain CRF over lexical/orthographic/contextual features."""

    name = "Conditional Random Fields"

    def __init__(
        self,
        fields: Sequence[str] = SUSTAINABILITY_FIELDS,
        config: CrfConfig | None = None,
    ) -> None:
        self.fields = tuple(fields)
        self.config = config or CrfConfig()
        self.scheme = LabelScheme(self.fields)
        self.normalizer = TextNormalizer()
        self.word_tokenizer = WordTokenizer()
        self.matcher = ExactMatcher()
        self.features = FeatureExtractor()
        self.model: LinearChainCRF | None = None
        self.weak_stats = WeakLabelingStats()

    def fit(
        self, objectives: Sequence[AnnotatedObjective]
    ) -> "CrfDetailExtractor":
        if not objectives:
            raise ValueError("cannot fit on an empty objective set")
        self.weak_stats = WeakLabelingStats()
        sentences: list[list[list[int]]] = []
        label_sequences: list[list[int]] = []
        for objective in objectives:
            normalized = AnnotatedObjective(
                text=self.normalizer(objective.text),
                details={
                    field: self.normalizer(value)
                    for field, value in objective.details.items()
                },
            )
            tokens, labels = weakly_label_objective(
                normalized,
                word_tokenizer=self.word_tokenizer,
                matcher=self.matcher,
                stats=self.weak_stats,
            )
            if not tokens:
                continue
            sentences.append(
                self.features.fit_sentence([t.text for t in tokens])
            )
            label_sequences.append(self.scheme.encode(labels))
        self.features.freeze()
        self.model = LinearChainCRF(
            num_features=max(len(self.features), 1),
            num_labels=len(self.scheme),
            l2=self.config.l2,
        )
        rng = np.random.default_rng(self.config.seed)
        lr = self.config.learning_rate
        for __ in range(self.config.epochs):
            order = rng.permutation(len(sentences))
            for index in order:
                self.model.sgd_update(
                    sentences[index], label_sequences[index], lr
                )
            lr *= self.config.lr_decay
        return self

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist config, feature map, and weights to a directory.

        Atomic end-to-end: artifacts plus a checksum manifest land in a
        sibling temp directory that is renamed into place, so a crash
        mid-save never leaves a half-written model directory.
        """
        if self.model is None:
            raise RuntimeError("cannot save an unfitted extractor")
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        tmp = directory.with_name(directory.name + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        (tmp / "config.json").write_text(
            json.dumps(
                {
                    "fields": list(self.fields),
                    "config": dataclasses.asdict(self.config),
                }
            ),
            encoding="utf-8",
        )
        # The feature map is a plain str->int dict; pickle keeps it compact.
        with open(tmp / "features.pkl", "wb") as handle:
            pickle.dump(self.features._feature_to_id, handle)
        np.savez(
            tmp / "weights.npz",
            emission=self.model.emission_weights,
            transition=self.model.transition_weights,
            start=self.model.start_weights,
            end=self.model.end_weights,
        )
        write_manifest(
            tmp,
            ["config.json", "features.pkl", "weights.npz"],
            kind="crf_extractor",
        )
        replace_dir(tmp, directory)

    @classmethod
    def load(cls, directory: str | Path) -> "CrfDetailExtractor":
        """Restore an extractor saved with :meth:`save`.

        Checksums every artifact against the manifest when present, and
        wraps truncated/corrupt bytes in a typed
        :class:`~repro.runtime.errors.ArtifactError` instead of letting a
        bare pickle/numpy/KeyError escape.
        """
        directory = Path(directory)
        verify_manifest(directory, kind="crf_extractor", required=False)
        payload = read_json(directory / "config.json")
        try:
            extractor = cls(
                fields=tuple(payload["fields"]),
                config=CrfConfig(**payload["config"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ArtifactError(
                f"CRF config is malformed: {error}",
                path=str(directory / "config.json"),
            ) from error
        try:
            with open(directory / "features.pkl", "rb") as handle:
                feature_map = pickle.load(handle)
        except Exception as error:
            raise ArtifactError(
                f"unreadable feature map "
                f"({type(error).__name__}: {error})",
                path=str(directory / "features.pkl"),
            ) from error
        extractor.features._feature_to_id = feature_map
        extractor.features.freeze()
        try:
            with np.load(directory / "weights.npz") as archive:
                extractor.model = LinearChainCRF(
                    num_features=archive["emission"].shape[0],
                    num_labels=archive["emission"].shape[1],
                    l2=extractor.config.l2,
                )
                extractor.model.emission_weights = archive["emission"]
                extractor.model.transition_weights = archive["transition"]
                extractor.model.start_weights = archive["start"]
                extractor.model.end_weights = archive["end"]
        except ArtifactError:
            raise
        except Exception as error:
            raise ArtifactError(
                f"unreadable CRF weights "
                f"({type(error).__name__}: {error})",
                path=str(directory / "weights.npz"),
            ) from error
        return extractor

    def extract(self, text: str) -> dict[str, str]:
        if self.model is None:
            raise RuntimeError("extractor is not fitted; call fit() first")
        normalized = self.normalizer(text)
        tokens = self.word_tokenizer.tokenize(normalized)
        if not tokens:
            return {field: "" for field in self.fields}
        features = self.features.transform_sentence(
            [token.text for token in tokens]
        )
        label_ids = self.model.viterbi(features)
        labels = self.scheme.decode(label_ids)
        return decode_details(normalized, tokens, labels, self.fields)

    def extract_batch(self, texts: Sequence[str]) -> list[dict[str, str]]:
        """Decode all texts through one batched Viterbi call.

        Same results as mapping :meth:`extract` — the batched DP is
        bitwise-identical to the sequential one — but all sentences share
        each time step's ``(B, L, L)`` score tensor instead of running
        the per-step numpy dispatch once per sentence.
        """
        if self.model is None:
            raise RuntimeError("extractor is not fitted; call fit() first")
        normalized = [self.normalizer(text) for text in texts]
        token_lists = [
            self.word_tokenizer.tokenize(text) for text in normalized
        ]
        sentences = [
            self.features.transform_sentence(
                [token.text for token in tokens]
            )
            for tokens in token_lists
            if tokens
        ]
        decoded = iter(self.model.viterbi_batch(sentences))
        results: list[dict[str, str]] = []
        for text, tokens in zip(normalized, token_lists):
            if not tokens:
                results.append({field: "" for field in self.fields})
                continue
            labels = self.scheme.decode(next(decoded))
            results.append(
                decode_details(text, tokens, labels, self.fields)
            )
        return results
