"""Linear-chain CRF: log-likelihood training and Viterbi decoding.

Scores: ``score(y | x) = sum_t emission(t, y_t) + sum_t transition(y_{t-1},
y_t)`` with emissions being sums of weights of the active features at each
position. Training runs stochastic gradient ascent on the conditional
log-likelihood; the gradient is (empirical - expected) feature counts, with
expectations from the forward-backward algorithm in log space.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import logsumexp


class LinearChainCRF:
    """A linear-chain CRF over dense-id sparse binary features."""

    def __init__(
        self,
        num_features: int,
        num_labels: int,
        l2: float = 1e-4,
    ) -> None:
        if num_features <= 0 or num_labels <= 0:
            raise ValueError("num_features and num_labels must be positive")
        self.num_features = num_features
        self.num_labels = num_labels
        self.l2 = l2
        self.emission_weights = np.zeros((num_features, num_labels))
        self.transition_weights = np.zeros((num_labels, num_labels))
        self.start_weights = np.zeros(num_labels)
        self.end_weights = np.zeros(num_labels)

    # -- scoring ----------------------------------------------------------

    def emission_scores(self, features: list[list[int]]) -> np.ndarray:
        """``(T, L)`` emission score matrix for one sentence."""
        scores = np.zeros((len(features), self.num_labels))
        for position, active in enumerate(features):
            if active:
                scores[position] = self.emission_weights[active].sum(axis=0)
        return scores

    def sequence_score(
        self, features: list[list[int]], labels: list[int]
    ) -> float:
        """Unnormalized log-score of a label sequence."""
        emissions = self.emission_scores(features)
        score = self.start_weights[labels[0]] + self.end_weights[labels[-1]]
        score += float(
            emissions[np.arange(len(labels)), labels].sum()
        )
        for previous, current in zip(labels, labels[1:]):
            score += self.transition_weights[previous, current]
        return float(score)

    # -- forward-backward ------------------------------------------------------

    def _forward(self, emissions: np.ndarray) -> np.ndarray:
        """Log-alpha table ``(T, L)``."""
        length = emissions.shape[0]
        alpha = np.empty_like(emissions)
        alpha[0] = self.start_weights + emissions[0]
        for t in range(1, length):
            # alpha[t, j] = logsumexp_i(alpha[t-1, i] + trans[i, j]) + em[t, j]
            alpha[t] = (
                logsumexp(
                    alpha[t - 1][:, None] + self.transition_weights, axis=0
                )
                + emissions[t]
            )
        return alpha

    def _backward(self, emissions: np.ndarray) -> np.ndarray:
        """Log-beta table ``(T, L)``."""
        length = emissions.shape[0]
        beta = np.empty_like(emissions)
        beta[-1] = self.end_weights
        for t in range(length - 2, -1, -1):
            beta[t] = logsumexp(
                self.transition_weights
                + (emissions[t + 1] + beta[t + 1])[None, :],
                axis=1,
            )
        return beta

    def log_partition(self, features: list[list[int]]) -> float:
        """log Z(x) — normalizer over all label sequences."""
        emissions = self.emission_scores(features)
        alpha = self._forward(emissions)
        return float(logsumexp(alpha[-1] + self.end_weights, axis=0))

    def log_likelihood(
        self, features: list[list[int]], labels: list[int]
    ) -> float:
        """Conditional log-likelihood of one labeled sentence."""
        return self.sequence_score(features, labels) - self.log_partition(
            features
        )

    def marginals(
        self, features: list[list[int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior marginals.

        Returns ``(unary, pairwise)``: ``unary[t, j] = P(y_t = j | x)`` and
        ``pairwise[t, i, j] = P(y_t = i, y_{t+1} = j | x)`` for
        ``t < T - 1``.
        """
        emissions = self.emission_scores(features)
        length = emissions.shape[0]
        alpha = self._forward(emissions)
        beta = self._backward(emissions)
        log_z = logsumexp(alpha[-1] + self.end_weights, axis=0)

        unary = np.exp(alpha + beta - log_z)
        unary /= unary.sum(axis=1, keepdims=True)

        pairwise = np.zeros((max(length - 1, 0), self.num_labels, self.num_labels))
        for t in range(length - 1):
            log_pair = (
                alpha[t][:, None]
                + self.transition_weights
                + (emissions[t + 1] + beta[t + 1])[None, :]
                - log_z
            )
            pair = np.exp(log_pair)
            pairwise[t] = pair / pair.sum()
        return unary, pairwise

    # -- training ----------------------------------------------------------

    def sgd_update(
        self,
        features: list[list[int]],
        labels: list[int],
        lr: float,
    ) -> float:
        """One stochastic gradient ascent step; returns the sentence NLL."""
        length = len(features)
        if length == 0:
            return 0.0
        if length != len(labels):
            raise ValueError("features and labels must be parallel")
        emissions = self.emission_scores(features)
        alpha = self._forward(emissions)
        beta = self._backward(emissions)
        log_z = float(logsumexp(alpha[-1] + self.end_weights, axis=0))

        unary = np.exp(alpha + beta - log_z)
        unary /= unary.sum(axis=1, keepdims=True)

        # Emission gradient: empirical minus expected feature counts.
        for position, active in enumerate(features):
            if not active:
                continue
            gold = labels[position]
            expected = unary[position]
            self.emission_weights[active] -= lr * expected
            self.emission_weights[active, gold] += lr
        # Transition gradient.
        for t in range(length - 1):
            log_pair = (
                alpha[t][:, None]
                + self.transition_weights
                + (emissions[t + 1] + beta[t + 1])[None, :]
                - log_z
            )
            pair = np.exp(log_pair)
            pair /= pair.sum()
            self.transition_weights -= lr * pair
            self.transition_weights[labels[t], labels[t + 1]] += lr
        # Boundary gradients.
        self.start_weights -= lr * unary[0]
        self.start_weights[labels[0]] += lr
        self.end_weights -= lr * unary[-1]
        self.end_weights[labels[-1]] += lr

        # L2 regularization (decoupled, proportional step).
        if self.l2:
            decay = lr * self.l2
            self.emission_weights *= 1.0 - decay
            self.transition_weights *= 1.0 - decay

        # Post-update NLL (monitoring only; cheap and monotone enough).
        return log_z - self.sequence_score(features, labels)

    # -- decoding -----------------------------------------------------------

    def viterbi(self, features: list[list[int]]) -> list[int]:
        """Most probable label sequence."""
        emissions = self.emission_scores(features)
        length = emissions.shape[0]
        if length == 0:
            return []
        delta = self.start_weights + emissions[0]
        backpointers = np.zeros((length, self.num_labels), dtype=np.int64)
        for t in range(1, length):
            scores = delta[:, None] + self.transition_weights
            backpointers[t] = scores.argmax(axis=0)
            delta = scores.max(axis=0) + emissions[t]
        delta = delta + self.end_weights
        best = int(delta.argmax())
        path = [best]
        for t in range(length - 1, 0, -1):
            best = int(backpointers[t, best])
            path.append(best)
        path.reverse()
        return path

    def viterbi_batch(
        self, sentences: list[list[list[int]]]
    ) -> list[list[int]]:
        """Most probable label sequence for each sentence at once.

        Vectorizes the DP over a length-padded batch: one ``(B, L, L)``
        score tensor per time step instead of one ``(L, L)`` matrix per
        sentence per step. Bitwise-identical to mapping :meth:`viterbi`
        (asserted in ``tests/crf/test_viterbi_batch.py``): every cell is
        the same ``delta_i + trans[i, j]`` sum in the same dtype, ``max``
        is order-exact, and ``argmax`` keeps numpy's first-maximum
        tie-breaking along the reduced axis in both shapes. Rows whose
        sentence has ended keep their ``delta`` frozen, so padding never
        leaks into shorter sentences.
        """
        if not sentences:
            return []
        lengths = np.array([len(sentence) for sentence in sentences])
        width = int(lengths.max())
        if width == 0:
            return [[] for __ in sentences]
        batch = len(sentences)
        emissions = np.zeros((batch, width, self.num_labels))
        for row, sentence in enumerate(sentences):
            if sentence:
                emissions[row, : len(sentence)] = self.emission_scores(
                    sentence
                )
        delta = self.start_weights + emissions[:, 0]
        backpointers = np.zeros(
            (batch, width, self.num_labels), dtype=np.int64
        )
        for t in range(1, width):
            scores = delta[:, :, None] + self.transition_weights[None]
            backpointers[:, t] = scores.argmax(axis=1)
            active = (t < lengths)[:, None]
            delta = np.where(
                active, scores.max(axis=1) + emissions[:, t], delta
            )
        delta = delta + self.end_weights
        paths: list[list[int]] = []
        for row, length in enumerate(lengths):
            if length == 0:
                paths.append([])
                continue
            best = int(delta[row].argmax())
            path = [best]
            for t in range(int(length) - 1, 0, -1):
                best = int(backpointers[row, t, best])
                path.append(best)
            path.reverse()
            paths.append(path)
        return paths
