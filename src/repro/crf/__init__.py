"""Conditional Random Fields baseline (paper Section 4.1).

A traditional linear-chain CRF trained with token-level lexical,
orthographic, and contextual features, exactly the baseline family the
paper compares against. Training maximizes the conditional log-likelihood
with forward-backward marginals; decoding uses Viterbi.
"""

from repro.crf.features import FeatureExtractor
from repro.crf.model import LinearChainCRF
from repro.crf.extractor import CrfDetailExtractor

__all__ = [
    "CrfDetailExtractor",
    "FeatureExtractor",
    "LinearChainCRF",
]
