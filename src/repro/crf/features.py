"""Token feature templates for the CRF baseline.

The paper trains its CRF "with token-level lexical, orthographic, and
contextual features". The templates below are the standard set used in
CoNLL-style sequence labeling:

* lexical — the token itself and its 3-character prefix/suffix;
* orthographic — shape (``Xxxx``/``dddd``), capitalization, digits,
  percent signs, plausible-year flags, punctuation;
* contextual — the neighbouring tokens and their coarse shapes, plus
  begin/end-of-sentence markers.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

_YEAR_RE = re.compile(r"^(19|20)\d\d$")
_NUMBER_RE = re.compile(r"^\d+(?:[.,]\d+)*%?$")


def token_shape(token: str) -> str:
    """Coarse orthographic shape: 'Reduce' -> 'Xx', '2040' -> 'd'."""
    shape: list[str] = []
    for char in token:
        if char.isupper():
            code = "X"
        elif char.islower():
            code = "x"
        elif char.isdigit():
            code = "d"
        else:
            code = char
        if not shape or shape[-1] != code:
            shape.append(code)
    return "".join(shape)


def token_features(tokens: Sequence[str], index: int) -> list[str]:
    """Feature strings for position ``index`` in ``tokens``."""
    token = tokens[index]
    lowered = token.lower()
    features = [
        f"w0={lowered}",
        f"shape={token_shape(token)}",
        f"prefix3={lowered[:3]}",
        f"suffix3={lowered[-3:]}",
        f"is_upper={token.isupper()}",
        f"is_title={token.istitle()}",
        f"is_digit={token.isdigit()}",
        f"is_number={bool(_NUMBER_RE.match(token))}",
        f"is_year={bool(_YEAR_RE.match(token))}",
        f"has_percent={'%' in token}",
        f"is_punct={not any(c.isalnum() for c in token)}",
    ]
    if index == 0:
        features.append("BOS")
    else:
        previous = tokens[index - 1]
        features.append(f"w-1={previous.lower()}")
        features.append(f"shape-1={token_shape(previous)}")
        features.append(f"w-1|w0={previous.lower()}|{lowered}")
    if index == len(tokens) - 1:
        features.append("EOS")
    else:
        following = tokens[index + 1]
        features.append(f"w+1={following.lower()}")
        features.append(f"shape+1={token_shape(following)}")
    if index >= 2:
        features.append(f"w-2={tokens[index - 2].lower()}")
    if index + 2 < len(tokens):
        features.append(f"w+2={tokens[index + 2].lower()}")
    return features


class FeatureExtractor:
    """Maps feature strings to dense integer ids, frozen after fitting."""

    def __init__(self) -> None:
        self._feature_to_id: dict[str, int] = {}
        self.frozen = False

    def __len__(self) -> int:
        return len(self._feature_to_id)

    def fit_sentence(self, tokens: Sequence[str]) -> list[list[int]]:
        """Register and return feature ids for every position (training)."""
        if self.frozen:
            raise RuntimeError("feature extractor is frozen")
        return [
            [self._intern(feature) for feature in token_features(tokens, i)]
            for i in range(len(tokens))
        ]

    def transform_sentence(self, tokens: Sequence[str]) -> list[list[int]]:
        """Feature ids for every position; unseen features are skipped."""
        sentence_features: list[list[int]] = []
        for i in range(len(tokens)):
            ids = [
                self._feature_to_id[feature]
                for feature in token_features(tokens, i)
                if feature in self._feature_to_id
            ]
            sentence_features.append(ids)
        return sentence_features

    def freeze(self) -> None:
        self.frozen = True

    def _intern(self, feature: str) -> int:
        feature_id = self._feature_to_id.get(feature)
        if feature_id is None:
            feature_id = len(self._feature_to_id)
            self._feature_to_id[feature] = feature_id
        return feature_id
