"""Knowledge-graph construction over the objective store.

Turns extracted objective rows (live :class:`~repro.goalspotter.pipeline.
ExtractedRecord` output or persisted :class:`~repro.storage.store.
StoredObjective` rows) into a typed ``networkx`` digraph:

* **company** nodes — one per resolved entity (see
  :mod:`repro.kg.resolve`), carrying every observed alias;
* **objective** nodes — one per extracted objective, content-addressed
  (the node id is a hash of company, report, page and text, so the same
  objective ingested twice — or from two shards — lands on the same
  node), carrying the raw details, the normalized typed values
  (:mod:`repro.normalize`), and full provenance (report id, page,
  reporting year, extractor fingerprint, detector score);
* **topic** nodes — deterministic keyword-bucket classification
  (:func:`infer_topic`);
* **year** nodes — deadline years, so "what falls due in 2030" is one
  edge traversal.

Edges: company ``has_objective`` objective (attributed with the
reporting year), objective ``about`` topic, objective ``due`` year.

Everything is deterministic: node ids are content hashes, the serialized
payload (:func:`graph_to_payload`) sorts nodes and edges, and
:func:`graph_fingerprint` hashes that canonical form — so *sharded
parallel ingestion is bitwise-identical to serial ingestion*
(:func:`build_graph_parallel` builds per-shard subgraphs and merges them
order-exactly; the fingerprints must and do agree).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import networkx as nx

from repro.kg.resolve import Resolution, resolve_companies
from repro.normalize import normalize_details

__all__ = [
    "GRAPH_SCHEMA_VERSION",
    "GraphRow",
    "TOPIC_KEYWORDS",
    "as_graph_row",
    "build_graph",
    "build_graph_parallel",
    "company_node_id",
    "graph_fingerprint",
    "graph_to_payload",
    "infer_topic",
    "merge_graphs",
    "objective_node_id",
    "rows_from_records",
    "rows_from_store",
]

GRAPH_SCHEMA_VERSION = 1

#: Ordered keyword buckets for topic classification; the FIRST bucket
#: with a keyword hit wins, so classification is deterministic. Keywords
#: are matched as lowercase substrings of qualifier + objective text.
TOPIC_KEYWORDS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("packaging", ("packaging",)),
    ("waste", ("waste", "landfill", "plastic", "compost")),
    ("water", ("water", "potable", "freshwater")),
    (
        "emissions",
        (
            "emission", "carbon", "co2", "greenhouse", "net-zero",
            "net zero", "footprint", "climate neutral",
        ),
    ),
    (
        "energy",
        ("energy", "electricity", "renewable", "fossil", "mwh", "solar"),
    ),
    (
        "diversity",
        (
            "women", "diversity", "gender", "inclusion", "leadership",
            "pay gap", "workforce",
        ),
    ),
    ("safety", ("injury", "safety", "accident", "incident rate")),
    ("supply_chain", ("supplier", "supply chain", "sourcing", "procure")),
    (
        "biodiversity",
        ("biodiversity", "forest", "habitat", "species", "tree", "nature"),
    ),
    (
        "community",
        ("community", "volunteer", "charitable", "donation", "education"),
    ),
    (
        "circularity",
        ("circular", "recycled content", "reuse", "recyclable", "recycle"),
    ),
    (
        "governance",
        ("board", "governance", "ethics", "audit", "training", "compliance"),
    ),
)

#: Fallback topic when no bucket matches.
TOPIC_OTHER = "other"


def infer_topic(objective: str, details: Mapping[str, str]) -> str:
    """Classify an objective into a topic bucket (first keyword hit wins).

    The qualifier is the most topical phrase, so it is searched first
    (concatenated ahead of the full text); matching is plain lowercase
    substring containment — crude, but a pure function of the inputs.
    """
    haystack = (
        (details.get("Qualifier", "") or "") + " " + (objective or "")
    ).lower()
    for topic, keywords in TOPIC_KEYWORDS:
        for keyword in keywords:
            if keyword in haystack:
                return topic
    return TOPIC_OTHER


@dataclasses.dataclass(frozen=True)
class GraphRow:
    """The normalized ingestion unit (one extracted objective)."""

    company: str
    report_id: str
    page: int
    objective: str
    details: tuple[tuple[str, str], ...]  # sorted items, hashable
    score: float
    reporting_year: int | None = None
    extractor_fingerprint: str = ""

    @property
    def details_dict(self) -> dict[str, str]:
        return dict(self.details)

    def sort_key(self) -> tuple:
        year = self.reporting_year
        return (
            self.report_id,
            self.page,
            self.objective,
            self.company,
            -1 if year is None else year,
        )


def as_graph_row(obj: Any) -> GraphRow:
    """Coerce an ``ExtractedRecord`` or ``StoredObjective`` to a GraphRow."""
    if isinstance(obj, GraphRow):
        return obj
    details = obj.details  # both record types expose the five-field dict
    return GraphRow(
        company=obj.company,
        report_id=obj.report_id,
        page=int(obj.page),
        objective=obj.objective,
        details=tuple(sorted((k, v or "") for k, v in details.items())),
        score=float(obj.score),
        reporting_year=getattr(obj, "reporting_year", None),
        extractor_fingerprint=getattr(obj, "extractor_fingerprint", ""),
    )


def rows_from_records(records: Iterable[Any]) -> list[GraphRow]:
    """GraphRows from live pipeline records (or stored rows)."""
    return [as_graph_row(record) for record in records]


def rows_from_store(store: Any, **query_kwargs) -> list[GraphRow]:
    """GraphRows from an :class:`~repro.storage.store.ObjectiveStore`."""
    return [as_graph_row(row) for row in store.query(**query_kwargs)]


def company_node_id(canonical: str) -> str:
    from repro.kg.resolve import normalize_company_name

    return "company::" + normalize_company_name(canonical)


def objective_node_id(row: GraphRow) -> str:
    """Content-addressed objective node id (stable across runs/shards)."""
    digest = hashlib.sha256(
        "\x1f".join(
            (row.company, row.report_id, str(row.page), row.objective)
        ).encode("utf-8")
    ).hexdigest()
    return "objective::" + digest[:16]


def _specificity(details: Mapping[str, str]) -> int:
    return sum(1 for value in details.values() if value)


def _add_row(
    graph: nx.DiGraph, row: GraphRow, resolution: Resolution
) -> None:
    details = row.details_dict
    canonical = resolution.canonical(row.company)
    company_id = company_node_id(canonical)
    if company_id not in graph:
        graph.add_node(
            company_id,
            kind="company",
            name=canonical,
            aliases=list(resolution.aliases(canonical)),
        )
    normalized = normalize_details(details)
    topic = infer_topic(row.objective, details)
    obj_id = objective_node_id(row)
    graph.add_node(
        obj_id,
        kind="objective",
        text=row.objective,
        details=details,
        score=row.score,
        score_hex=float(row.score).hex(),
        specificity=_specificity(details),
        company=canonical,
        company_alias=row.company,
        report_id=row.report_id,
        page=row.page,
        reporting_year=row.reporting_year,
        extractor_fingerprint=row.extractor_fingerprint,
        topic=topic,
        action_direction=normalized.action.value,
        amount_kind=normalized.amount.kind.value,
        amount_value=normalized.amount.value,
        baseline_year=normalized.baseline_year,
        deadline_year=normalized.deadline_year,
    )
    graph.add_edge(
        company_id, obj_id, kind="has_objective",
        reporting_year=row.reporting_year,
    )
    topic_id = "topic::" + topic
    if topic_id not in graph:
        graph.add_node(topic_id, kind="topic", name=topic)
    graph.add_edge(obj_id, topic_id, kind="about")
    if normalized.deadline_year is not None:
        year_id = f"year::{normalized.deadline_year}"
        if year_id not in graph:
            graph.add_node(
                year_id, kind="year", year=normalized.deadline_year
            )
        graph.add_edge(obj_id, year_id, kind="due")


def _new_graph(resolution: Resolution) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.graph["schema_version"] = GRAPH_SCHEMA_VERSION
    graph.graph["resolution"] = resolution.as_dict()
    return graph


def build_graph(
    rows: Iterable[Any],
    *,
    resolution: Resolution | None = None,
    resolve_threshold: float = 0.6,
) -> nx.DiGraph:
    """Build the sustainability knowledge graph from objective rows.

    Args:
        rows: ``ExtractedRecord`` / ``StoredObjective`` / ``GraphRow``.
        resolution: a precomputed entity resolution (parallel shards must
            share one so canonical names agree globally); defaults to
            resolving the companies seen in ``rows``.
        resolve_threshold: token-set similarity bound when resolving.
    """
    graph_rows = sorted(rows_from_records(rows), key=GraphRow.sort_key)
    if resolution is None:
        resolution = resolve_companies(
            (row.company for row in graph_rows), threshold=resolve_threshold
        )
    graph = _new_graph(resolution)
    for row in graph_rows:
        _add_row(graph, row, resolution)
    return graph


def merge_graphs(graphs: Sequence[nx.DiGraph]) -> nx.DiGraph:
    """Merge per-shard subgraphs order-exactly (first shard's metadata
    wins; node ids are content-addressed, so overlapping nodes are the
    same node and the union is exact)."""
    if not graphs:
        return _new_graph(resolve_companies(()))
    merged = graphs[0].copy()
    for graph in graphs[1:]:
        merged.update(graph)
    return merged


def _build_subgraph(args: tuple) -> nx.DiGraph:
    rows, resolution = args
    return build_graph(rows, resolution=resolution)


def build_graph_parallel(
    rows: Iterable[Any],
    *,
    workers: int | str | None = None,
    resolve_threshold: float = 0.6,
    num_shards: int | None = None,
) -> nx.DiGraph:
    """Sharded-parallel graph construction, bitwise-identical to serial.

    Entity resolution runs once globally (aliases of one entity may be
    split across shards), then contiguous token-balanced shards
    (:func:`repro.runtime.parallel.plan_shards`) each build a subgraph —
    in worker processes when ``workers > 1`` — and the subgraphs merge
    in shard order. Content-addressed node ids plus the sorted canonical
    payload make the merged graph's :func:`graph_fingerprint` equal to a
    serial :func:`build_graph` over the same rows.
    """
    from repro.runtime.parallel import (
        estimate_text_cost,
        map_shards,
        plan_shards,
        resolve_workers,
    )

    graph_rows = sorted(rows_from_records(rows), key=GraphRow.sort_key)
    resolution = resolve_companies(
        (row.company for row in graph_rows), threshold=resolve_threshold
    )
    if not graph_rows:
        return _new_graph(resolution)
    count = resolve_workers(workers)
    shards = plan_shards(
        [estimate_text_cost(row.objective) for row in graph_rows],
        num_shards if num_shards is not None else count,
    )
    tasks = [
        (graph_rows[shard.start:shard.stop], resolution)
        for shard in shards
    ]
    subgraphs = map_shards(tasks, _build_subgraph, workers=count)
    return merge_graphs(subgraphs)


def graph_to_payload(graph: nx.DiGraph) -> dict:
    """Canonical JSON-stable payload: sorted nodes and edges.

    This is the serialization the CLI writes and the fingerprint hashes;
    two graphs with the same content produce byte-identical payloads
    regardless of construction (insertion) order.
    """
    nodes = [
        {"id": node, **{k: attrs[k] for k in sorted(attrs)}}
        for node, attrs in sorted(graph.nodes(data=True))
    ]
    edges = [
        {
            "source": u,
            "target": v,
            **{k: attrs[k] for k in sorted(attrs)},
        }
        for u, v, attrs in sorted(
            graph.edges(data=True), key=lambda e: (e[0], e[1])
        )
    ]
    return {
        "schema_version": graph.graph.get(
            "schema_version", GRAPH_SCHEMA_VERSION
        ),
        "resolution": graph.graph.get("resolution", {}),
        "nodes": nodes,
        "edges": edges,
    }


def graph_fingerprint(graph: nx.DiGraph) -> str:
    """SHA-256 over the canonical payload (the bitwise-identity channel)."""
    payload = json.dumps(
        graph_to_payload(graph), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
