"""Deterministic entity resolution of company names across reports.

The same legal entity surfaces under many spellings across reporting
years — ``"Acme Corp"``, ``"ACME Corporation"``, ``"Acme Corp."`` — and a
knowledge graph that keeps them apart cannot track goals over time. This
module collapses aliases onto one canonical company with two seeded-free,
fully deterministic rules:

* **exact-normalized**: names whose normalized token sets are identical
  (lowercased, punctuation stripped, legal-suffix tokens like "Inc" /
  "Corporation" / "plc" dropped) merge unconditionally;
* **token-set**: names whose normalized token sets have Jaccard
  similarity >= ``threshold`` (default 0.6) merge.

Merging is transitive (union-find over all pairs), so the result is
invariant to input order, and resolving an already-resolved set of
canonical names is the identity — the idempotence and order-invariance
properties the hypothesis suite pins. Every merge is recorded as an
auditable :class:`MergeRecord` (alias, canonical, rule, similarity), and
the full alias -> canonical mapping is retained so a resolution is
reversible: no information about the original surface forms is lost.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Iterable, Mapping

__all__ = [
    "LEGAL_SUFFIX_TOKENS",
    "MergeRecord",
    "Resolution",
    "name_similarity",
    "name_tokens",
    "normalize_company_name",
    "resolve_companies",
]

#: Tokens dropped during normalization: legal-form suffixes that vary
#: freely between filings of the same entity. Deliberately excludes
#: common industry nouns ("Holdings", "Group" is kept borderline but is a
#: pure legal form in this corpus's name grammar).
LEGAL_SUFFIX_TOKENS = frozenset(
    {
        "ag",
        "co",
        "company",
        "corp",
        "corporation",
        "gmbh",
        "inc",
        "incorporated",
        "limited",
        "llc",
        "ltd",
        "plc",
        "sa",
        "se",
    }
)

_NON_ALNUM = re.compile(r"[^a-z0-9]+")


def name_tokens(name: str) -> frozenset[str]:
    """Normalized token set of a company name.

    Lowercase, strip punctuation *within* whitespace tokens (so "S.A."
    and "SA" normalize identically), drop legal-suffix tokens. If
    dropping suffixes would leave nothing (a name *made of* legal
    tokens), the undropped token set is kept so the name still resolves
    to itself.
    """
    raw = [_NON_ALNUM.sub("", t) for t in name.lower().split()]
    raw = [t for t in raw if t]
    kept = [t for t in raw if t not in LEGAL_SUFFIX_TOKENS]
    return frozenset(kept or raw)


def normalize_company_name(name: str) -> str:
    """Canonical normalized form: sorted normalized tokens, space-joined."""
    return " ".join(sorted(name_tokens(name)))


def name_similarity(a: str, b: str) -> float:
    """Jaccard similarity of two names' normalized token sets."""
    ta, tb = name_tokens(a), name_tokens(b)
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)


@dataclasses.dataclass(frozen=True)
class MergeRecord:
    """One audited alias merge: why ``alias`` collapsed onto ``canonical``."""

    canonical: str
    alias: str
    rule: str  # "exact-normalized" | "token-set"
    similarity: float

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Resolution:
    """The result of resolving a set of company names.

    ``canonical_of`` maps *every* input name (canonicals included) to its
    canonical; ``merges`` is the audit trail, sorted by (canonical,
    alias) so two resolutions over the same names compare equal
    regardless of input order.
    """

    canonical_of: Mapping[str, str]
    merges: tuple[MergeRecord, ...]
    threshold: float

    def canonical(self, name: str) -> str:
        """Canonical name for ``name`` (itself when never seen)."""
        return self.canonical_of.get(name, name)

    def aliases(self, canonical: str) -> tuple[str, ...]:
        """All input surface forms resolving to ``canonical`` (sorted)."""
        return tuple(
            sorted(
                name
                for name, target in self.canonical_of.items()
                if target == canonical
            )
        )

    def canonical_names(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.canonical_of.values())))

    def as_dict(self) -> dict:
        """JSON-stable audit payload (for graph metadata and the CLI)."""
        return {
            "threshold": self.threshold,
            "canonical_of": {
                name: self.canonical_of[name]
                for name in sorted(self.canonical_of)
            },
            "merges": [m.as_dict() for m in self.merges],
        }


class _UnionFind:
    def __init__(self, items: Iterable[str]) -> None:
        self.parent = {item: item for item in items}

    def find(self, item: str) -> str:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:  # path compression
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic orientation: smaller name wins as root.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


def _pick_canonical(group: list[str]) -> str:
    """The canonical display name of a merged group.

    The longest name wins (it carries the most information — "ACME
    Corporation" over "Acme Corp" would tie on tokens, so length breaks
    toward the expanded legal form); ties break lexicographically, so the
    choice is a pure function of the group's contents.
    """
    return min(group, key=lambda name: (-len(name), name))


def resolve_companies(
    names: Iterable[str], threshold: float = 0.6
) -> Resolution:
    """Resolve company aliases into canonical entities.

    Args:
        names: company surface forms, in any order, duplicates welcome.
        threshold: Jaccard bound for the token-set rule; set above 1.0
            to restrict merging to exact-normalized matches only.

    Returns:
        A :class:`Resolution` (order-invariant and idempotent).
    """
    unique = sorted(set(names))
    uf = _UnionFind(unique)
    # Exact-normalized rule first (cheap, groups by normalized form).
    by_norm: dict[str, list[str]] = {}
    for name in unique:
        by_norm.setdefault(normalize_company_name(name), []).append(name)
    for group in by_norm.values():
        for other in group[1:]:
            uf.union(group[0], other)
    # Token-set rule over all pairs (transitive closure via union-find).
    if threshold <= 1.0:
        for i, a in enumerate(unique):
            for b in unique[i + 1:]:
                if name_similarity(a, b) >= threshold:
                    uf.union(a, b)

    groups: dict[str, list[str]] = {}
    for name in unique:
        groups.setdefault(uf.find(name), []).append(name)

    canonical_of: dict[str, str] = {}
    merges: list[MergeRecord] = []
    for members in groups.values():
        canonical = _pick_canonical(members)
        for name in members:
            canonical_of[name] = canonical
            if name == canonical:
                continue
            exact = normalize_company_name(name) == normalize_company_name(
                canonical
            )
            merges.append(
                MergeRecord(
                    canonical=canonical,
                    alias=name,
                    rule="exact-normalized" if exact else "token-set",
                    similarity=name_similarity(name, canonical),
                )
            )
    merges.sort(key=lambda m: (m.canonical, m.alias))
    return Resolution(
        canonical_of=canonical_of,
        merges=tuple(merges),
        threshold=threshold,
    )
