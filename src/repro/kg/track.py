"""Multi-year goal tracking and greenwashing drift detection.

The monitoring story the paper motivates (Section 5.1) — "monitor their
progress toward their sustainability goals" — needs the *same* goal
linked across reporting years before progress (or quiet back-pedaling)
is visible. This module does both steps over the knowledge graph:

1. **Goal threading** (:func:`link_goal_threads`): within each resolved
   company, objectives from consecutive reporting years are matched into
   :class:`GoalThread`\\ s. Two objectives are the same goal when they
   share a topic and action direction and their qualifier token sets are
   similar (Jaccard >= ``similarity_threshold``). Matching is greedy on
   (similarity desc, node-id asc), so it is a pure function of the graph.

2. **Drift detection** (:func:`detect_drift`): each thread is walked for
   the four contradiction patterns of the drift taxonomy, emitted as
   typed :class:`DriftFinding`\\ s with provenance chains back to the
   source report pages:

   * ``deadline_push`` — the deadline year moved later ("2025 target
     silently moved to 2030");
   * ``weakened_amount`` — the quantified ambition shrank (same amount
     kind, smaller magnitude);
   * ``dropped_target`` — the goal was present in year N, the company
     reported in year N+1, and the goal is gone;
   * ``baseline_rewrite`` — the stated baseline year changed.

All thresholds are explicit, all tie-breaks are deterministic, and no
RNG is involved: the same graph always yields the same findings in the
same order.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Mapping, Sequence

import networkx as nx

__all__ = [
    "DRIFT_KINDS",
    "DriftFinding",
    "GoalThread",
    "Provenance",
    "ThreadEntry",
    "company_reporting_years",
    "detect_drift",
    "link_goal_threads",
    "objective_similarity",
]

#: The drift taxonomy, in severity-ranking order.
DRIFT_KINDS = (
    "dropped_target",
    "deadline_push",
    "weakened_amount",
    "baseline_rewrite",
)

_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9-]*")
_STOPWORDS = frozenset(
    {
        "a", "an", "and", "at", "by", "for", "in", "of", "on", "our",
        "per", "the", "to", "we", "will",
    }
)


def _qualifier_tokens(attrs: Mapping) -> frozenset[str]:
    """Topical token set of an objective: the qualifier when annotated,
    the full text otherwise — minus stopwords and bare numbers (amounts
    and years must not influence goal identity, or a changed deadline
    would break the very link that detects the change)."""
    details = attrs.get("details", {})
    source = details.get("Qualifier", "") or attrs.get("text", "")
    tokens = {
        token
        for token in _TOKEN_RE.findall(source.lower())
        if token not in _STOPWORDS and not token.isdigit()
    }
    return frozenset(tokens)


def objective_similarity(attrs_a: Mapping, attrs_b: Mapping) -> float:
    """Goal-identity similarity of two objective nodes in [0, 1].

    Topic mismatch is an immediate 0 (threads never cross topics);
    otherwise the Jaccard similarity of the qualifier token sets.
    """
    if attrs_a.get("topic") != attrs_b.get("topic"):
        return 0.0
    ta, tb = _qualifier_tokens(attrs_a), _qualifier_tokens(attrs_b)
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)


@dataclasses.dataclass(frozen=True)
class Provenance:
    """Where an objective came from: the chain back to the source page."""

    report_id: str
    page: int
    reporting_year: int | None
    extractor_fingerprint: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ThreadEntry:
    """One year's appearance of a tracked goal."""

    node_id: str
    reporting_year: int
    text: str
    deadline_year: int | None
    baseline_year: int | None
    amount_kind: str
    amount_value: float | None
    provenance: Provenance


@dataclasses.dataclass(frozen=True)
class GoalThread:
    """The same goal observed across reporting years (year-ascending)."""

    company: str
    topic: str
    entries: tuple[ThreadEntry, ...]

    @property
    def years(self) -> tuple[int, ...]:
        return tuple(entry.reporting_year for entry in self.entries)

    @property
    def last_year(self) -> int:
        return self.entries[-1].reporting_year


@dataclasses.dataclass(frozen=True)
class DriftFinding:
    """One detected contradiction/drift pattern, fully attributed."""

    kind: str  # one of DRIFT_KINDS
    company: str
    topic: str
    year_from: int
    year_to: int
    before: str
    after: str
    severity: float
    objective_from: str
    objective_to: str | None
    provenance: tuple[Provenance, ...]

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["provenance"] = [p.as_dict() for p in self.provenance]
        return payload


def _entry_from_node(node_id: str, attrs: Mapping) -> ThreadEntry:
    return ThreadEntry(
        node_id=node_id,
        reporting_year=int(attrs["reporting_year"]),
        text=attrs.get("text", ""),
        deadline_year=attrs.get("deadline_year"),
        baseline_year=attrs.get("baseline_year"),
        amount_kind=attrs.get("amount_kind", "unknown"),
        amount_value=attrs.get("amount_value"),
        provenance=Provenance(
            report_id=attrs.get("report_id", ""),
            page=int(attrs.get("page", 0)),
            reporting_year=attrs.get("reporting_year"),
            extractor_fingerprint=attrs.get("extractor_fingerprint", ""),
        ),
    )


def _objectives_by_company_year(
    graph: nx.DiGraph,
) -> dict[str, dict[int, list[tuple[str, Mapping]]]]:
    """company -> reporting_year -> [(node_id, attrs)], all sorted.

    Objectives without a reporting year cannot be ordered in time and
    are excluded from tracking (they still exist in the graph).
    """
    table: dict[str, dict[int, list[tuple[str, Mapping]]]] = {}
    for node_id, attrs in sorted(graph.nodes(data=True)):
        if attrs.get("kind") != "objective":
            continue
        year = attrs.get("reporting_year")
        if year is None:
            continue
        company = attrs.get("company", "")
        table.setdefault(company, {}).setdefault(int(year), []).append(
            (node_id, attrs)
        )
    return table


def company_reporting_years(graph: nx.DiGraph) -> dict[str, tuple[int, ...]]:
    """Resolved company -> sorted tuple of reporting years observed."""
    table = _objectives_by_company_year(graph)
    return {
        company: tuple(sorted(years))
        for company, years in sorted(table.items())
    }


def link_goal_threads(
    graph: nx.DiGraph, *, similarity_threshold: float = 0.5
) -> list[GoalThread]:
    """Thread each company's objectives across reporting years.

    Year by year, open threads compete for the new year's objectives by
    similarity against the thread's most recent entry; pairs are taken
    greedily in (similarity desc, thread-head id, node id) order, so the
    matching — and therefore every downstream drift finding — is
    deterministic. Unmatched objectives open new threads.
    """
    table = _objectives_by_company_year(graph)
    threads: list[GoalThread] = []
    for company in sorted(table):
        years = sorted(table[company])
        # Open threads as mutable entry lists, keyed by creation order.
        open_threads: list[list[ThreadEntry]] = [
            [_entry_from_node(node_id, attrs)]
            for node_id, attrs in table[company][years[0]]
        ]
        for year in years[1:]:
            candidates = table[company][year]
            pairs = []
            for t_index, entries in enumerate(open_threads):
                head = graph.nodes[entries[-1].node_id]
                for node_id, attrs in candidates:
                    similarity = objective_similarity(head, attrs)
                    if similarity >= similarity_threshold:
                        pairs.append(
                            (-similarity, entries[-1].node_id, node_id,
                             t_index)
                        )
            pairs.sort()
            matched_threads: set[int] = set()
            matched_nodes: set[str] = set()
            for neg_sim, __, node_id, t_index in pairs:
                if t_index in matched_threads or node_id in matched_nodes:
                    continue
                matched_threads.add(t_index)
                matched_nodes.add(node_id)
                open_threads[t_index].append(
                    _entry_from_node(node_id, graph.nodes[node_id])
                )
            for node_id, attrs in candidates:
                if node_id not in matched_nodes:
                    open_threads.append([_entry_from_node(node_id, attrs)])
        topic_of = {
            entries[0].node_id: graph.nodes[entries[0].node_id].get(
                "topic", "other"
            )
            for entries in open_threads
        }
        threads.extend(
            GoalThread(
                company=company,
                topic=topic_of[entries[0].node_id],
                entries=tuple(entries),
            )
            for entries in open_threads
        )
    threads.sort(key=lambda t: (t.company, t.topic, t.entries[0].node_id))
    return threads


def _finding(
    kind: str,
    thread: GoalThread,
    a: ThreadEntry,
    b: ThreadEntry | None,
    *,
    year_to: int | None = None,
    before: str,
    after: str,
    severity: float,
) -> DriftFinding:
    provenance = (a.provenance,) if b is None else (
        a.provenance, b.provenance
    )
    return DriftFinding(
        kind=kind,
        company=thread.company,
        topic=thread.topic,
        year_from=a.reporting_year,
        year_to=b.reporting_year if b is not None else int(year_to),
        before=before,
        after=after,
        severity=severity,
        objective_from=a.text,
        objective_to=b.text if b is not None else None,
        provenance=provenance,
    )


def detect_drift(
    graph: nx.DiGraph,
    *,
    similarity_threshold: float = 0.5,
    amount_tolerance: float = 0.0,
    threads: Sequence[GoalThread] | None = None,
) -> list[DriftFinding]:
    """Scan goal threads for the four drift patterns.

    Args:
        graph: the knowledge graph (:func:`repro.kg.build.build_graph`).
        similarity_threshold: goal-identity bound for threading.
        amount_tolerance: relative shrink in amount magnitude tolerated
            before ``weakened_amount`` fires (0.0 = any shrink fires).
        threads: precomputed threads (else linked here).

    Returns:
        Findings sorted by (company, year_from, kind, topic) — a stable
        total order, so repeated scans are list-equal.
    """
    if threads is None:
        threads = link_goal_threads(
            graph, similarity_threshold=similarity_threshold
        )
    reporting_years = company_reporting_years(graph)
    findings: list[DriftFinding] = []
    for thread in threads:
        for a, b in zip(thread.entries, thread.entries[1:]):
            if (
                a.deadline_year is not None
                and b.deadline_year is not None
                and b.deadline_year > a.deadline_year
            ):
                findings.append(
                    _finding(
                        "deadline_push", thread, a, b,
                        before=str(a.deadline_year),
                        after=str(b.deadline_year),
                        severity=float(b.deadline_year - a.deadline_year),
                    )
                )
            if (
                a.amount_value is not None
                and b.amount_value is not None
                and a.amount_kind == b.amount_kind
                and a.amount_kind != "unknown"
                and a.amount_value > 0
            ):
                shrink = (a.amount_value - b.amount_value) / a.amount_value
                if shrink > amount_tolerance:
                    findings.append(
                        _finding(
                            "weakened_amount", thread, a, b,
                            before=f"{a.amount_value:g} ({a.amount_kind})",
                            after=f"{b.amount_value:g} ({b.amount_kind})",
                            severity=shrink,
                        )
                    )
            if (
                a.baseline_year is not None
                and b.baseline_year is not None
                and b.baseline_year != a.baseline_year
            ):
                findings.append(
                    _finding(
                        "baseline_rewrite", thread, a, b,
                        before=str(a.baseline_year),
                        after=str(b.baseline_year),
                        severity=float(
                            abs(b.baseline_year - a.baseline_year)
                        ),
                    )
                )
        # Dropped target: the thread ends before the company's reporting
        # does — the goal was present in its last year, the company filed
        # a later report, and the goal did not reappear.
        later = [
            year
            for year in reporting_years.get(thread.company, ())
            if year > thread.last_year
        ]
        if later:
            last = thread.entries[-1]
            findings.append(
                _finding(
                    "dropped_target", thread, last, None,
                    year_to=later[0],
                    before=last.text,
                    after="(absent)",
                    severity=1.0 + float(len(later) - 1),
                )
            )
    findings.sort(
        key=lambda f: (f.company, f.year_from, f.kind, f.topic, f.year_to)
    )
    return findings
