"""Sustainability knowledge graph over the objective store.

The paper's motivating use case stops at a per-snapshot database; this
package accumulates extracted objectives *across reports, companies and
years* into a typed ``networkx`` graph and opens the monitoring workload
on top of it:

* :mod:`repro.kg.build` — typed graph construction (company / objective
  / topic / deadline-year nodes, provenance edges), content-addressed
  node ids, canonical serialization, and sharded parallel ingestion
  that is bitwise-identical to serial;
* :mod:`repro.kg.resolve` — deterministic, auditable entity resolution
  of company aliases ("Acme Corp" / "ACME Corporation");
* :mod:`repro.kg.track` — multi-year goal threading and the drift
  taxonomy (deadline pushes, weakened ambition, dropped targets,
  baseline rewrites) with provenance chains to the source pages;
* :mod:`repro.kg.queries` — company scorecards, cross-company topic
  comparison, and the greenwashing-risk ranking.

CLI: ``repro kg build`` / ``repro kg drift`` / ``repro kg company``.
"""

from repro.kg.build import (
    GRAPH_SCHEMA_VERSION,
    GraphRow,
    as_graph_row,
    build_graph,
    build_graph_parallel,
    graph_fingerprint,
    graph_to_payload,
    infer_topic,
    merge_graphs,
    objective_node_id,
    rows_from_records,
    rows_from_store,
)
from repro.kg.queries import (
    DRIFT_WEIGHTS,
    CompanyScorecard,
    TopicStats,
    all_scorecards,
    company_scorecard,
    greenwashing_ranking,
    risk_score,
    topic_comparison,
)
from repro.kg.resolve import (
    MergeRecord,
    Resolution,
    name_similarity,
    normalize_company_name,
    resolve_companies,
)
from repro.kg.track import (
    DRIFT_KINDS,
    DriftFinding,
    GoalThread,
    Provenance,
    ThreadEntry,
    company_reporting_years,
    detect_drift,
    link_goal_threads,
    objective_similarity,
)

__all__ = [
    "CompanyScorecard",
    "DRIFT_KINDS",
    "DRIFT_WEIGHTS",
    "DriftFinding",
    "GRAPH_SCHEMA_VERSION",
    "GoalThread",
    "GraphRow",
    "MergeRecord",
    "Provenance",
    "Resolution",
    "ThreadEntry",
    "TopicStats",
    "all_scorecards",
    "as_graph_row",
    "build_graph",
    "build_graph_parallel",
    "company_reporting_years",
    "company_scorecard",
    "detect_drift",
    "graph_fingerprint",
    "graph_to_payload",
    "greenwashing_ranking",
    "infer_topic",
    "link_goal_threads",
    "merge_graphs",
    "name_similarity",
    "normalize_company_name",
    "objective_node_id",
    "objective_similarity",
    "resolve_companies",
    "risk_score",
    "rows_from_records",
    "rows_from_store",
    "topic_comparison",
]
