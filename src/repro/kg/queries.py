"""Analyst queries over the sustainability knowledge graph.

The graph-level counterparts of :mod:`repro.storage.monitor` — but where
the store queries see one snapshot, these see resolved entities and
multi-year history, which is what makes the greenwashing-risk ranking
possible: a company whose objectives are vague (low specificity, the
paper's Section 5.1 metric) *and* whose goals drift (deadlines pushed,
targets dropped) ranks above one that is merely vague.

All outputs are deterministically ordered and every ranking uses an
explicit tie-break (risk desc, then company name asc), so repeated runs
over the same graph are list-equal — the property the golden scorecard
fixture pins bitwise.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import networkx as nx

from repro.kg.track import DriftFinding, detect_drift

__all__ = [
    "CompanyScorecard",
    "DRIFT_WEIGHTS",
    "TopicStats",
    "all_scorecards",
    "company_scorecard",
    "greenwashing_ranking",
    "risk_score",
    "topic_comparison",
]

#: Per-kind weights of the greenwashing-risk score. Dropping a target is
#: the strongest signal (the goal vanished), pushes and weakenings are
#: next, baseline rewrites mildest (sometimes legitimate restatements).
DRIFT_WEIGHTS = {
    "dropped_target": 3.0,
    "deadline_push": 2.0,
    "weakened_amount": 2.0,
    "baseline_rewrite": 1.0,
}

#: Number of detail fields behind the specificity metric (paper §5.1).
_MAX_SPECIFICITY = 5.0


def _company_nodes(graph: nx.DiGraph) -> list[tuple[str, dict]]:
    return sorted(
        (node, attrs)
        for node, attrs in graph.nodes(data=True)
        if attrs.get("kind") == "company"
    )


def _objectives_of(graph: nx.DiGraph, company: str) -> list[tuple[str, dict]]:
    return sorted(
        (node, attrs)
        for node, attrs in graph.nodes(data=True)
        if attrs.get("kind") == "objective"
        and attrs.get("company") == company
    )


@dataclasses.dataclass(frozen=True)
class CompanyScorecard:
    """One company's multi-year monitoring summary."""

    company: str
    aliases: tuple[str, ...]
    reporting_years: tuple[int, ...]
    objectives: int
    topics: tuple[str, ...]
    mean_specificity: float
    net_zero_pledged: bool
    earliest_deadline: int | None
    latest_deadline: int | None
    drift_counts: dict[str, int]
    risk: float

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["aliases"] = list(self.aliases)
        payload["reporting_years"] = list(self.reporting_years)
        payload["topics"] = list(self.topics)
        payload["risk_hex"] = float(self.risk).hex()
        return payload


def risk_score(
    mean_specificity: float, drift_counts: dict[str, int],
    severity_total: float = 0.0,
) -> float:
    """The greenwashing-risk score.

    ``risk = vagueness + weighted drift + 0.1 * total severity`` where
    vagueness is ``1 - mean_specificity / 5`` (a company annotating all
    five details contributes 0). Pure arithmetic on floats in a fixed
    order — bitwise-reproducible.
    """
    vagueness = 1.0 - (mean_specificity / _MAX_SPECIFICITY)
    drift = 0.0
    for kind in sorted(DRIFT_WEIGHTS):
        drift += DRIFT_WEIGHTS[kind] * drift_counts.get(kind, 0)
    return vagueness + drift + 0.1 * severity_total


def company_scorecard(
    graph: nx.DiGraph,
    company: str,
    findings: Sequence[DriftFinding] | None = None,
) -> CompanyScorecard:
    """Scorecard for one resolved company (canonical name).

    ``findings`` should be a full :func:`~repro.kg.track.detect_drift`
    result (it is filtered to this company); recomputed when omitted.
    """
    if findings is None:
        findings = detect_drift(graph)
    mine = [f for f in findings if f.company == company]
    objectives = _objectives_of(graph, company)
    if not objectives:
        raise KeyError(f"unknown company {company!r}")
    specs = [attrs.get("specificity", 0) for __, attrs in objectives]
    years = sorted(
        {
            int(attrs["reporting_year"])
            for __, attrs in objectives
            if attrs.get("reporting_year") is not None
        }
    )
    deadlines = sorted(
        attrs["deadline_year"]
        for __, attrs in objectives
        if attrs.get("deadline_year") is not None
    )
    drift_counts = {kind: 0 for kind in sorted(DRIFT_WEIGHTS)}
    for finding in mine:
        drift_counts[finding.kind] = drift_counts.get(finding.kind, 0) + 1
    severity_total = sum(f.severity for f in mine)
    mean_specificity = sum(specs) / len(specs)
    aliases: tuple[str, ...] = ()
    for __, attrs in _company_nodes(graph):
        if attrs.get("name") == company:
            aliases = tuple(attrs.get("aliases", ()))
            break
    return CompanyScorecard(
        company=company,
        aliases=aliases,
        reporting_years=tuple(years),
        objectives=len(objectives),
        topics=tuple(
            sorted({attrs.get("topic", "other") for __, attrs in objectives})
        ),
        mean_specificity=mean_specificity,
        net_zero_pledged=any(
            attrs.get("amount_kind") == "net_zero" for __, attrs in objectives
        ),
        earliest_deadline=deadlines[0] if deadlines else None,
        latest_deadline=deadlines[-1] if deadlines else None,
        drift_counts=drift_counts,
        risk=risk_score(mean_specificity, drift_counts, severity_total),
    )


def all_scorecards(
    graph: nx.DiGraph, findings: Sequence[DriftFinding] | None = None
) -> list[CompanyScorecard]:
    """Scorecards for every company, in canonical-name order."""
    if findings is None:
        findings = detect_drift(graph)
    return [
        company_scorecard(graph, attrs["name"], findings)
        for __, attrs in _company_nodes(graph)
        if _objectives_of(graph, attrs["name"])
    ]


@dataclasses.dataclass(frozen=True)
class TopicStats:
    """Cross-company view of one topic."""

    topic: str
    companies: tuple[str, ...]
    objectives: int
    mean_specificity: float
    net_zero_companies: tuple[str, ...]

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["companies"] = list(self.companies)
        payload["net_zero_companies"] = list(self.net_zero_companies)
        return payload


def topic_comparison(graph: nx.DiGraph) -> list[TopicStats]:
    """Per-topic cross-company comparison, topic-name ascending."""
    by_topic: dict[str, list[dict]] = {}
    for __, attrs in sorted(graph.nodes(data=True)):
        if attrs.get("kind") != "objective":
            continue
        by_topic.setdefault(attrs.get("topic", "other"), []).append(attrs)
    stats = []
    for topic in sorted(by_topic):
        rows = by_topic[topic]
        specs = [attrs.get("specificity", 0) for attrs in rows]
        stats.append(
            TopicStats(
                topic=topic,
                companies=tuple(
                    sorted({attrs.get("company", "") for attrs in rows})
                ),
                objectives=len(rows),
                mean_specificity=sum(specs) / len(specs),
                net_zero_companies=tuple(
                    sorted(
                        {
                            attrs.get("company", "")
                            for attrs in rows
                            if attrs.get("amount_kind") == "net_zero"
                        }
                    )
                ),
            )
        )
    return stats


def greenwashing_ranking(
    graph: nx.DiGraph, findings: Sequence[DriftFinding] | None = None
) -> list[tuple[str, float]]:
    """Companies ranked by greenwashing risk, highest first.

    Combines the store tier's specificity signal
    (:func:`repro.storage.monitor.specificity_ranking` computes the same
    per-company mean) with the graph tier's drift counts; ties break on
    the canonical company name, so the ranking is bitwise-stable.
    """
    cards = all_scorecards(graph, findings)
    ranked = sorted(cards, key=lambda c: (-c.risk, c.company))
    return [(card.company, card.risk) for card in ranked]
