"""repro — reproduction of "Automatic Detail Extraction from Sustainability
Objectives Using Weak Supervision" (Mahdavi & Debus, EDBT 2026).

Public API tour:

* :class:`repro.core.WeakSupervisionExtractor` — the paper's system: weak
  supervision token labeling (Algorithm 1) + transformer fine-tuning.
* :mod:`repro.datasets` — seeded reconstructions of the Sustainability
  Goals and NetZeroFacts corpora and the deployment report corpus.
* :class:`repro.crf.CrfDetailExtractor`,
  :class:`repro.llm.PromptingExtractor` — the Table 4 baselines.
* :class:`repro.goalspotter.GoalSpotter` — detection + extraction pipeline.
* :class:`repro.storage.ObjectiveStore` — the structured objective database
  with normalized (typed) detail columns.
* :mod:`repro.normalize` — semantic normalization of extracted values.
* :mod:`repro.eval` — the paper's evaluation protocol and metrics.
* :mod:`repro.deploy` — the Section 5 deployment scenarios.
* :mod:`repro.tasks` — the task registry: pluggable workloads (GoalSpotter
  plus three new tenants) over one serving substrate, gated by a shared
  conformance suite.
"""

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.core.schema import (
    AnnotatedObjective,
    NETZEROFACTS_FIELDS,
    SUSTAINABILITY_FIELDS,
    TAXONOMY_KPI_FIELDS,
)
from repro.tasks import Task, get_task, register_task, task_names

__version__ = "1.0.0"

__all__ = [
    "AnnotatedObjective",
    "ExtractorConfig",
    "NETZEROFACTS_FIELDS",
    "SUSTAINABILITY_FIELDS",
    "TAXONOMY_KPI_FIELDS",
    "Task",
    "WeakSupervisionExtractor",
    "__version__",
    "get_task",
    "register_task",
    "task_names",
]
