"""Normalize amount strings to typed magnitudes.

Handles the surface forms the corpus (and the paper's Tables 1/6/7)
contain: percentages ("20%", "25 percent"), absolute counts with
multipliers ("1 million", "10,000", "500"), monetary values
("$50 million"), physical quantities ("1.5 million tonnes"), net-zero
style pledges ("net-zero", "carbon neutral", "Zero"), and relative words
("double", "halve").
"""

from __future__ import annotations

import dataclasses
import enum
import re


class AmountKind(enum.Enum):
    """The semantic type of an amount value."""

    PERCENT = "percent"
    COUNT = "count"
    MONEY = "money"
    MASS = "mass"
    NET_ZERO = "net_zero"
    MULTIPLIER = "multiplier"
    UNKNOWN = "unknown"


@dataclasses.dataclass(frozen=True)
class NormalizedAmount:
    """A typed amount: kind + magnitude (+ unit where applicable)."""

    kind: AmountKind
    value: float | None = None
    unit: str = ""
    raw: str = ""

    @property
    def is_quantified(self) -> bool:
        return self.value is not None


_MULTIPLIERS = {
    "thousand": 1e3,
    "million": 1e6,
    "billion": 1e9,
    "trillion": 1e12,
}

_NET_ZERO_RE = re.compile(
    r"^(net[\s-]?zero|carbon[\s-]?neutral(ity)?|climate[\s-]?neutral(ity)?"
    r"|zero)\b",
    re.IGNORECASE,
)
_PERCENT_RE = re.compile(
    r"^(?P<number>\d+(?:[.,]\d+)?)\s*(?:%|(?:percent|per\s?cent)\b)",
    re.IGNORECASE,
)
# Comma-grouped form first (requires a comma), then plain decimal — ordered
# alternation would otherwise stop "1.5" at "1".
_NUMBER_RE = re.compile(r"^(?P<number>\d{1,3}(?:,\d{3})+|\d+(?:\.\d+)?)")
_RELATIVE_WORDS = {
    "double": 2.0,
    "triple": 3.0,
    "halve": 0.5,
    "half": 0.5,
}
_MASS_UNITS = ("tonnes", "tons", "tonne", "ton", "kg", "kilograms", "mwh")


def _parse_number(text: str) -> float:
    return float(text.replace(",", ""))


def normalize_amount(raw: str) -> NormalizedAmount:
    """Normalize a raw amount string; UNKNOWN kind when unparseable."""
    text = (raw or "").strip()
    if not text:
        return NormalizedAmount(AmountKind.UNKNOWN, raw=raw)
    lowered = text.lower()

    if _NET_ZERO_RE.match(lowered):
        return NormalizedAmount(AmountKind.NET_ZERO, value=0.0, raw=raw)

    if lowered in _RELATIVE_WORDS:
        return NormalizedAmount(
            AmountKind.MULTIPLIER, value=_RELATIVE_WORDS[lowered], raw=raw
        )

    percent = _PERCENT_RE.match(lowered)
    if percent:
        return NormalizedAmount(
            AmountKind.PERCENT,
            value=_parse_number(percent.group("number")),
            unit="%",
            raw=raw,
        )

    money = lowered.startswith("$")
    body = lowered[1:].strip() if money else lowered
    number = _NUMBER_RE.match(body)
    if not number:
        return NormalizedAmount(AmountKind.UNKNOWN, raw=raw)
    value = _parse_number(number.group("number"))
    remainder = body[number.end():].strip()

    for word, factor in _MULTIPLIERS.items():
        if remainder.startswith(word):
            value *= factor
            remainder = remainder[len(word):].strip()
            break

    if money:
        return NormalizedAmount(AmountKind.MONEY, value=value, unit="USD", raw=raw)
    for unit in _MASS_UNITS:
        if remainder.startswith(unit):
            return NormalizedAmount(
                AmountKind.MASS, value=value, unit=unit, raw=raw
            )
    return NormalizedAmount(AmountKind.COUNT, value=value, raw=raw)
