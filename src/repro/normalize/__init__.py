"""Semantic normalization of extracted detail values.

The paper names "normalization or categorization of actions and amounts"
as the natural extension enabling "more fine-grained analysis and
benchmarking across companies" (Section 2.4). This package implements it:
raw extracted strings become typed values — amounts to numeric magnitudes
with units, years to integers, actions to canonical change directions —
so the objective database supports numeric filtering and comparison.
"""

from repro.normalize.amounts import AmountKind, NormalizedAmount, normalize_amount
from repro.normalize.years import normalize_year
from repro.normalize.actions import ActionDirection, normalize_action
from repro.normalize.records import NormalizedDetails, normalize_details

__all__ = [
    "ActionDirection",
    "AmountKind",
    "NormalizedAmount",
    "NormalizedDetails",
    "normalize_action",
    "normalize_amount",
    "normalize_details",
    "normalize_year",
]
