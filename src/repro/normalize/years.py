"""Normalize baseline/deadline strings to integer years."""

from __future__ import annotations

import re

_YEAR_RE = re.compile(r"\b((?:19|20)\d\d)\b")


def normalize_year(raw: str) -> int | None:
    """Extract the year from a baseline/deadline value.

    Values are usually bare years ("2025") but deployment data also
    produces phrases ("the end of 2025", "By 2023"). Returns ``None`` when
    no plausible year is present.
    """
    if not raw:
        return None
    match = _YEAR_RE.search(raw)
    return int(match.group(1)) if match else None
