"""Normalize a full extracted-details record into typed values."""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.normalize.actions import ActionDirection, normalize_action
from repro.normalize.amounts import NormalizedAmount, normalize_amount
from repro.normalize.years import normalize_year


@dataclasses.dataclass(frozen=True)
class NormalizedDetails:
    """Typed view of one objective's extracted details."""

    action: ActionDirection
    amount: NormalizedAmount
    qualifier: str
    baseline_year: int | None
    deadline_year: int | None

    @property
    def horizon_years(self) -> int | None:
        """Deadline minus baseline, when both are present."""
        if self.baseline_year is None or self.deadline_year is None:
            return None
        return self.deadline_year - self.baseline_year

    @property
    def is_time_bound(self) -> bool:
        return self.deadline_year is not None

    @property
    def is_quantified(self) -> bool:
        return self.amount.is_quantified


def normalize_details(details: Mapping[str, str]) -> NormalizedDetails:
    """Normalize a raw detail dict (the extractor's output schema)."""
    return NormalizedDetails(
        action=normalize_action(details.get("Action", "")),
        amount=normalize_amount(details.get("Amount", "")),
        qualifier=(details.get("Qualifier", "") or "").strip(),
        baseline_year=normalize_year(details.get("Baseline", "")),
        deadline_year=normalize_year(details.get("Deadline", "")),
    )
