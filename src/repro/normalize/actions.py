"""Categorize action verbs by their change direction.

The categorization axis the paper suggests for actions: does the objective
*decrease* something (emissions, waste), *increase* something
(renewables, diversity), *reach a state* (net-zero, certification), or
*maintain/establish a practice*.
"""

from __future__ import annotations

import enum


class ActionDirection(enum.Enum):
    """Canonical change direction of an objective's action."""

    DECREASE = "decrease"
    INCREASE = "increase"
    ACHIEVE = "achieve"
    TRANSFORM = "transform"
    MAINTAIN = "maintain"
    ENGAGE = "engage"
    UNKNOWN = "unknown"


_DIRECTION_LEXICON: dict[ActionDirection, frozenset[str]] = {
    ActionDirection.DECREASE: frozenset(
        {
            "reduce", "cut", "lower", "decrease", "eliminate", "halve",
            "divert", "prevent", "offset", "minimize", "phase",
        }
    ),
    ActionDirection.INCREASE: frozenset(
        {
            "increase", "expand", "double", "triple", "grow", "raise",
            "boost", "scale", "accelerate", "extend", "plant", "invest",
            "donate", "train", "empower", "promote", "advance", "source",
            "procure", "recycle", "restore", "replenish", "recover",
        }
    ),
    ActionDirection.ACHIEVE: frozenset(
        {"achieve", "reach", "deliver", "attain", "complete", "certify"}
    ),
    ActionDirection.TRANSFORM: frozenset(
        {
            "transition", "convert", "switch", "redesign", "shift",
            "substitute", "transform", "integrate", "embed", "incorporate",
            "implement", "install", "launch", "establish", "develop",
            "define", "align", "link", "make",
        }
    ),
    ActionDirection.MAINTAIN: frozenset(
        {"maintain", "keep", "preserve", "protect", "conserve", "sustain"}
    ),
    ActionDirection.ENGAGE: frozenset(
        {
            "engage", "support", "join", "audit", "assess", "publish",
            "share", "explore", "demonstrate", "pursue", "perform",
            "strengthen", "improve", "co-found", "use", "uses",
        }
    ),
}


def normalize_action(raw: str) -> ActionDirection:
    """Map an action value to its change direction.

    Strips modals ("will install" -> "install") and inflection
    ("reducing" -> "reduce") before lookup.
    """
    if not raw or not raw.strip():
        return ActionDirection.UNKNOWN
    words = [w for w in raw.lower().split() if w not in ("will", "be", "to")]
    if not words:
        return ActionDirection.UNKNOWN
    verb = words[0]
    candidates = [verb]
    if verb.endswith("ing") and len(verb) > 5:
        candidates += [verb[:-3], verb[:-3] + "e"]
    if verb.endswith("ed") and len(verb) > 4:
        candidates += [verb[:-2], verb[:-1]]
    if verb.endswith("s") and len(verb) > 3:
        candidates.append(verb[:-1])
    for direction, verbs in _DIRECTION_LEXICON.items():
        if any(candidate in verbs for candidate in candidates):
            return direction
    return ActionDirection.UNKNOWN
