"""Deployment scenarios (paper Section 5).

Scenario 1 runs the integrated GoalSpotter pipeline over the 14-company
deployment corpus and produces the paper's Table 5 (corpus summary) and
Table 6 (top-2 extracted objectives per company). Scenario 2 analyzes a
single dense report (Table 7).
"""

from repro.deploy.scenarios import (
    DeploymentResult,
    build_trained_pipeline,
    run_scenario_1,
    run_scenario_2,
)

__all__ = [
    "DeploymentResult",
    "build_trained_pipeline",
    "run_scenario_1",
    "run_scenario_2",
]
