"""Post-deployment scenario runners (paper Tables 5, 6, 7)."""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.base import DetailExtractor
from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.datasets.base import Dataset
from repro.datasets.reports import (
    ReportGenerator,
    SustainabilityReport,
    build_deployment_corpus,
)
from repro.goalspotter.detector import DetectorConfig, ObjectiveDetector
from repro.goalspotter.pipeline import ExtractedRecord, GoalSpotter
from repro.models.training import FineTuneConfig
from repro.storage.store import ObjectiveStore


@dataclasses.dataclass
class DeploymentResult:
    """Everything Scenario 1 produces."""

    records: list[ExtractedRecord]
    summary_rows: list[tuple[str, int, int, int]]  # Table 5 shape
    top_records: dict[str, list[ExtractedRecord]]  # Table 6 shape
    store: ObjectiveStore

    @property
    def totals(self) -> tuple[int, int, int]:
        docs = sum(row[1] for row in self.summary_rows)
        pages = sum(row[2] for row in self.summary_rows)
        objectives = sum(row[3] for row in self.summary_rows)
        return docs, pages, objectives


def build_trained_pipeline(
    train_dataset: Dataset,
    seed: int = 0,
    detector_blocks: int = 1500,
    extractor_config: ExtractorConfig | None = None,
    detector_config: DetectorConfig | None = None,
    extractor: DetailExtractor | None = None,
) -> GoalSpotter:
    """Train a detector + extractor and assemble the pipeline.

    The detector trains on synthetic labeled blocks (objective vs noise)
    from a held-out report stream; the extractor trains on the annotated
    dataset, as in the paper's development phase.
    """
    rng = np.random.default_rng(seed)
    generator = ReportGenerator(rng)
    texts: list[str] = []
    labels: list[int] = []
    while len(texts) < detector_blocks:
        if rng.random() < 0.5:
            block = generator._objective_block()
        else:
            block = generator._noise_block()
        texts.append(block.text)
        labels.append(int(block.is_objective))
    detector = ObjectiveDetector(detector_config).fit(texts, labels)

    if extractor is None:
        config = extractor_config or ExtractorConfig(
            finetune=FineTuneConfig(epochs=10, learning_rate=1e-3)
        )
        extractor = WeakSupervisionExtractor(config)
        extractor.fit(train_dataset.objectives)
    return GoalSpotter(detector, extractor)


def run_scenario_1(
    pipeline: GoalSpotter,
    reports: Sequence[SustainabilityReport] | None = None,
    scale: float = 1.0,
    seed: int = 7,
    store_path: str = ":memory:",
    top_k: int = 2,
    workers: int | str | None = None,
) -> DeploymentResult:
    """Scenario 1: extraction across the 14-company deployment corpus.

    Returns Table 5-shaped summary rows (documents, pages, *detected*
    objectives per company), Table 6-shaped top-k records, and the filled
    structured store. ``workers`` > 1 shards the corpus over processes
    (:mod:`repro.runtime.parallel`); records are bitwise-identical either
    way.
    """
    if reports is None:
        reports = build_deployment_corpus(seed=seed, scale=scale)
    records = pipeline.process_reports(list(reports), workers=workers)

    pages_by_company: dict[str, int] = {}
    docs_by_company: dict[str, int] = {}
    for report in reports:
        docs_by_company[report.company] = (
            docs_by_company.get(report.company, 0) + 1
        )
        pages_by_company[report.company] = (
            pages_by_company.get(report.company, 0) + report.num_pages
        )
    detected_by_company: dict[str, int] = {}
    for record in records:
        detected_by_company[record.company] = (
            detected_by_company.get(record.company, 0) + 1
        )

    summary_rows = [
        (
            company,
            docs_by_company[company],
            pages_by_company[company],
            detected_by_company.get(company, 0),
        )
        for company in sorted(
            docs_by_company,
            key=lambda name: int(name[1:]) if name[1:].isdigit() else 0,
        )
    ]
    store = ObjectiveStore(store_path)
    store.insert_records(records)
    return DeploymentResult(
        records=records,
        summary_rows=summary_rows,
        top_records=GoalSpotter.top_records_per_company(records, top_k),
        store=store,
    )


def run_scenario_2(
    pipeline: GoalSpotter,
    report: SustainabilityReport | None = None,
    seed: int = 21,
    num_pages: int = 40,
    num_objectives: int = 12,
    top_k: int = 6,
) -> list[ExtractedRecord]:
    """Scenario 2: detail extraction from one dense report (Table 7)."""
    if report is None:
        generator = ReportGenerator(seed)
        report = generator.generate_report(
            company="DemoCorp",
            report_id="demo-report",
            num_pages=num_pages,
            num_objectives=num_objectives,
        )
    records = pipeline.process_report(report)
    records.sort(key=lambda record: record.score, reverse=True)
    return records[:top_k]


def records_table(
    records: Sequence[ExtractedRecord],
    fields: Sequence[str] = SUSTAINABILITY_FIELDS,
    max_text: int = 60,
) -> list[list[str]]:
    """Rows in the paper's Table 6/7 format."""
    rows: list[list[str]] = []
    for record in records:
        objective = record.objective
        if len(objective) > max_text:
            objective = objective[: max_text - 3] + "..."
        rows.append(
            [record.company, objective]
            + [record.details.get(field, "") for field in fields]
        )
    return rows
