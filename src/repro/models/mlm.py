"""Masked-language-model pre-training for encoder variants.

RoBERTa-style variants use *dynamic* masking (a fresh mask every epoch);
BERT-style variants use *static* masking (one mask drawn once per sequence).
The 80/10/10 corruption split follows the original BERT recipe: of the
selected positions, 80% become ``<mask>``, 10% a random vocabulary token,
and 10% keep the original token.

:func:`pretrain_mlm` is durable: pass a
:class:`~repro.runtime.checkpoint.CheckpointManager` and a killed run
resumes bitwise-identically to the uninterrupted one. The MLM loop has a
wrinkle the fine-tuning loops don't: the caller's generator is also the
model's dropout generator *and* the source of masking corruption, and
static masking draws corruption once before the epochs. A checkpoint
therefore records three snapshots of the same stream — ``setup`` (before
the static mask draws), ``epoch_start`` (before the epoch's
shuffle+corruption draws), and ``now`` (the step boundary) — so resume
can replay the static build from ``setup``, the epoch plan from
``epoch_start``, then jump the stream to ``now`` and continue. Progress
is observable through an optional
:class:`~repro.runtime.profiling.PerfCounters` (``train_steps``,
``train_epochs``, ``train_loss_total``, and ``resumed_from_step`` when a
run picks up from a checkpoint).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.models.zoo import ModelSpec
from repro.nn.batching import iterate_minibatches, pad_sequences
from repro.nn.encoder import TransformerEncoder
from repro.nn.layers import Linear
from repro.nn.loss import IGNORE_INDEX, cross_entropy
from repro.nn.module import Module
from repro.nn.optim import AdamW, clip_grad_norm
from repro.nn.serialize import load_optimizer_state, rng_state, set_rng_state
from repro.runtime.checkpoint import (
    CheckpointManager,
    config_fingerprint,
    restore_rng_states,
)
from repro.runtime.profiling import PerfCounters
from repro.text.vocab import Vocabulary


class MaskedLanguageModel(Module):
    """Encoder + vocabulary-sized prediction head."""

    def __init__(
        self, encoder: TransformerEncoder, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.encoder = encoder
        self.head = Linear(encoder.config.dim, encoder.config.vocab_size, rng)

    def forward(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return self.head(self.encoder(ids, mask))

    def backward(self, dlogits: np.ndarray) -> None:
        self.encoder.backward(self.head.backward(dlogits))

    def loss_and_backward(
        self, ids: np.ndarray, mask: np.ndarray, targets: np.ndarray
    ) -> float:
        logits = self.forward(ids, mask)
        batch, time, vocab = logits.shape
        loss, dflat = cross_entropy(
            logits.reshape(batch * time, vocab),
            np.asarray(targets).reshape(batch * time),
            ignore_index=IGNORE_INDEX,
        )
        self.backward(dflat.reshape(batch, time, vocab))
        return loss


def apply_mlm_corruption(
    ids: np.ndarray,
    mask: np.ndarray,
    vocab: Vocabulary,
    rng: np.random.Generator,
    mask_prob: float = 0.15,
) -> tuple[np.ndarray, np.ndarray]:
    """Corrupt a padded id batch for MLM.

    Returns ``(corrupted_ids, targets)`` where targets carry the original id
    at selected positions and ``IGNORE_INDEX`` elsewhere.
    """
    ids = np.asarray(ids)
    real = np.asarray(mask) > 0
    selected = (rng.random(ids.shape) < mask_prob) & real
    # Guarantee at least one prediction target per batch so the loss is
    # never vacuously zero on tiny corpora.
    if not selected.any() and real.any():
        rows, cols = np.nonzero(real)
        pick = rng.integers(len(rows))
        selected[rows[pick], cols[pick]] = True

    targets = np.where(selected, ids, IGNORE_INDEX)
    corrupted = ids.copy()
    action_roll = rng.random(ids.shape)
    use_mask_token = selected & (action_roll < 0.8)
    use_random = selected & (action_roll >= 0.8) & (action_roll < 0.9)
    corrupted[use_mask_token] = vocab.mask_id
    num_random = int(use_random.sum())
    if num_random:
        corrupted[use_random] = rng.integers(
            len(Vocabulary()), len(vocab), size=num_random
        )
    return corrupted, targets


def pretrain_mlm(
    spec: ModelSpec,
    sequences: list[list[int]],
    vocab: Vocabulary,
    rng: np.random.Generator,
    max_len: int = 96,
    batch_size: int = 16,
    lr: float = 1e-3,
    max_steps: int | None = None,
    checkpoint: CheckpointManager | None = None,
    counters: PerfCounters | None = None,
) -> MaskedLanguageModel:
    """Pre-train a fresh MLM on ``sequences`` with the spec's recipe.

    Args:
        spec: zoo entry determining architecture and masking style.
        sequences: subword id sequences from the pre-training corpus.
        vocab: subword vocabulary (for mask/random token ids).
        rng: source of all randomness (init, masking, shuffling).
        max_steps: optional hard cap on optimizer steps (testing/benching).
        checkpoint: optional manager for durable, bitwise-resumable runs.
        counters: optional progress counters (``train_steps``,
            ``train_epochs``, ``train_loss_total``, ``resumed_from_step``).

    Returns:
        The trained model, including its MLM head (needed as a distillation
        teacher; downstream fine-tuning uses only ``model.encoder``).
    """
    config = spec.encoder_config(len(vocab), max_len)
    model = MaskedLanguageModel(TransformerEncoder(config, rng), rng)
    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=0.01)

    # Snapshot before any data-plan draws: resume replays the static
    # masking build from exactly here.
    rng_setup = rng_state(rng) if checkpoint is not None else None
    resume = None
    if checkpoint is not None:
        checkpoint.bind(
            config_fingerprint(
                loop="pretrain_mlm",
                spec=dataclasses.asdict(spec),
                num_sequences=len(sequences),
                vocab_size=len(vocab),
                max_len=max_len,
                batch_size=batch_size,
                lr=lr,
                max_steps=max_steps,
            )
        )
        resume = checkpoint.load_latest()
        if resume is not None:
            model.load_state_dict(resume.model_state)
            if resume.done:
                return model
            load_optimizer_state(optimizer, resume.optimizer_state)
            if resume.rng_setup is not None:
                set_rng_state(rng, resume.rng_setup)
            if counters is not None:
                counters.add("resumed_from_step", resume.step)

    # Static masking (BERT-style) corrupts every sequence exactly once,
    # before training; dynamic masking re-corrupts each epoch.
    static_batches: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    if not spec.pretrain.dynamic_masking:
        for indices in iterate_minibatches(len(sequences), batch_size):
            ids, mask = pad_sequences(
                [sequences[i] for i in indices], max_len=max_len
            )
            corrupted, targets = apply_mlm_corruption(
                ids, mask, vocab, rng, spec.pretrain.mask_prob
            )
            static_batches.append((corrupted, mask, targets))

    model.train()
    step = resume.step if resume else 0
    start_epoch = resume.epoch if resume else 0
    history: list[float] = list(resume.history) if resume else []
    pending = resume is not None

    def _checkpoint_step(epoch, steps_in_epoch, losses, epoch_start, done):
        checkpoint.maybe_save(
            model,
            optimizer,
            rng,
            step=step,
            epoch=epoch,
            steps_in_epoch=steps_in_epoch,
            history=history,
            epoch_losses=losses,
            rng_setup=rng_setup,
            rng_epoch_start=epoch_start,
            done=done,
            force=done,
        )

    for epoch in range(start_epoch, spec.pretrain.epochs):
        if pending:
            rng_epoch_start = resume.rng_epoch_start
            if rng_epoch_start is not None:
                set_rng_state(rng, rng_epoch_start)
        else:
            rng_epoch_start = (
                rng_state(rng) if checkpoint is not None else None
            )
        if spec.pretrain.dynamic_masking:
            batches = []
            for indices in iterate_minibatches(len(sequences), batch_size, rng):
                ids, mask = pad_sequences(
                    [sequences[i] for i in indices], max_len=max_len
                )
                corrupted, targets = apply_mlm_corruption(
                    ids, mask, vocab, rng, spec.pretrain.mask_prob
                )
                batches.append((corrupted, mask, targets))
        else:
            batches = static_batches
        losses: list[float] = []
        done_in_epoch = 0
        if pending:
            pending = False
            losses = list(resume.epoch_losses)
            done_in_epoch = resume.steps_in_epoch
            restore_rng_states(resume.rng_now, rng, model)
        for corrupted, mask, targets in batches[done_in_epoch:]:
            model.zero_grad()
            loss = model.loss_and_backward(corrupted, mask, targets)
            clip_grad_norm(model.parameters(), 1.0)
            optimizer.step()
            losses.append(loss)
            step += 1
            done_in_epoch += 1
            if counters is not None:
                counters.add("train_steps")
                counters.add("train_loss_total", loss)
            if max_steps is not None and step >= max_steps:
                if checkpoint is not None:
                    history.append(float(np.mean(losses)))
                    _checkpoint_step(epoch, done_in_epoch, [], None, True)
                return model
            if checkpoint is not None:
                _checkpoint_step(
                    epoch, done_in_epoch, losses, rng_epoch_start, False
                )
        if losses:
            history.append(float(np.mean(losses)))
        if counters is not None:
            counters.add("train_epochs")
    if checkpoint is not None:
        _checkpoint_step(spec.pretrain.epochs, 0, [], None, True)
    return model


def pretrain_encoder(
    spec: ModelSpec,
    sequences: list[list[int]],
    vocab: Vocabulary,
    rng: np.random.Generator,
    max_len: int = 96,
    batch_size: int = 16,
    lr: float = 1e-3,
    max_steps: int | None = None,
    checkpoint: CheckpointManager | None = None,
    counters: PerfCounters | None = None,
) -> TransformerEncoder:
    """Like :func:`pretrain_mlm` but returns only the encoder."""
    return pretrain_mlm(
        spec,
        sequences,
        vocab,
        rng,
        max_len,
        batch_size,
        lr,
        max_steps,
        checkpoint=checkpoint,
        counters=counters,
    ).encoder
