"""Transformer sequence classifier (GoalSpotter's detection model).

GoalSpotter formulates objective detection as text classification over report
blocks. This model mean-pools the encoder states over real tokens and applies
a linear classification head.
"""

from __future__ import annotations

import numpy as np

from repro.nn import precision
from repro.nn.batching import pad_sequences
from repro.nn.encoder import EncoderConfig, TransformerEncoder
from repro.nn.layers import Dropout, Linear
from repro.nn.loss import cross_entropy
from repro.nn.module import Module, guard_finite, inference_mode
from repro.runtime import rescache
from repro.runtime.profiling import PerfCounters
from repro.runtime.rescache import ResultCache, result_key
from repro.runtime.scheduler import plan_batches


class SequenceClassifier(Module):
    """Mean-pooled encoder states -> linear head -> class logits."""

    def __init__(
        self,
        config: EncoderConfig,
        num_classes: int,
        rng: np.random.Generator,
        encoder: TransformerEncoder | None = None,
    ) -> None:
        super().__init__()
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        self.config = config
        self.num_classes = num_classes
        self.encoder = encoder or TransformerEncoder(config, rng)
        self.head_dropout = Dropout(config.dropout, rng)
        # row_invariant: a text's logits must not depend on its batch-mates
        # (see Linear docstring and the serving equivalence contract).
        self.head = Linear(config.dim, num_classes, rng, row_invariant=True)
        self._pool_cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Return logits ``(batch, num_classes)``."""
        states = self.encoder(ids, mask)
        mask = np.asarray(mask, dtype=states.dtype)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        # Width-invariant mean pooling: sum each row over its *real* tokens
        # only. A full-width masked sum ties the floating-point reduction
        # order to the pad width, so the same text pooled in differently
        # packed batches drifts by an ulp — which would break the serving
        # engine's batched-equals-sequential bitwise contract (the encoder
        # itself is already pad-width-invariant).
        pooled = np.stack(
            [
                row_states[row_mask > 0].sum(axis=0)
                if row_mask.any()
                else np.zeros(states.shape[-1], dtype=states.dtype)
                for row_states, row_mask in zip(states, mask)
            ]
        ) / counts
        self._pool_cache = (mask, counts)
        return guard_finite(
            self.head(self.head_dropout(pooled)),
            "sequence classifier logits",
        )

    def backward(self, dlogits: np.ndarray) -> None:
        if self._pool_cache is None:
            raise RuntimeError("backward called before forward")
        mask, counts = self._pool_cache
        dpooled = self.head_dropout.backward(self.head.backward(dlogits))
        dstates = (
            dpooled[:, None, :] * mask[:, :, None] / counts[:, :, None]
        )
        self.encoder.backward(dstates)

    def loss_and_backward(
        self, ids: np.ndarray, mask: np.ndarray, labels: np.ndarray
    ) -> float:
        logits = self.forward(ids, mask)
        loss, dlogits = cross_entropy(logits, np.asarray(labels))
        self.backward(dlogits)
        return loss

    def enable_quantization(self, mode: str = "int8") -> int:
        """Attach the int8 inference path (see :mod:`repro.nn.quant`).

        Ungated at this level — integration layers that own calibration
        data wrap this in the top-label equivalence gate. Returns the
        number of quantized attachment points.
        """
        from repro.nn.quant import quantize_module

        return quantize_module(self, mode)

    def disable_quantization(self) -> int:
        """Detach the int8 path, restoring bitwise-fp32 forwards."""
        from repro.nn.quant import dequantize_module

        return dequantize_module(self)

    def _cache_variant(self) -> str:
        from repro.nn.quant import quantization_state

        return quantization_state(self) or ""

    def predict_proba(
        self,
        sequences: list[list[int]],
        batch_size: int = 64,
        *,
        token_budget: int | None = None,
        sort_by_length: bool = True,
        counters: PerfCounters | None = None,
        cache: ResultCache | None = None,
    ) -> np.ndarray:
        """Class probabilities for each id sequence, ``(n, num_classes)``.

        Uses the same length-bucketed scheduler as the token classifier
        (token budget defaults to ``batch_size * max_len``); rows come back
        in the original sequence order. With ``cache``, probability rows
        are looked up by content key (ids + model fingerprint +
        quantization variant) and only the misses are planned and
        computed; width-invariant pooling makes hits bitwise-identical to
        a full uncached run.
        """
        from repro.nn.functional import softmax

        self.eval()
        if not sequences:
            return np.zeros((0, self.num_classes), dtype=precision.dtype())
        out = np.zeros((len(sequences), self.num_classes), dtype=precision.dtype())
        effective_len = [
            max(1, min(len(seq), self.config.max_len)) for seq in sequences
        ]
        cached_tokens = 0
        hits = 0
        key_of: dict[int, str] = {}
        groups: dict[str, list[int]] = {}
        if cache is None:
            compute = list(range(len(sequences)))
        else:
            fingerprint = self.fingerprint()
            variant = self._cache_variant()
            compute = []
            for index, seq in enumerate(sequences):
                key = result_key(seq, fingerprint, variant)
                found = cache.get(key)
                if found is not None:
                    out[index] = found
                    hits += 1
                    cached_tokens += effective_len[index]
                else:
                    key_of[index] = key
                    if key not in groups:
                        compute.append(index)
                    groups.setdefault(key, []).append(index)
        plan = None
        evictions = 0
        if compute:
            plan = plan_batches(
                [len(sequences[index]) for index in compute],
                token_budget=token_budget or batch_size * self.config.max_len,
                max_len=self.config.max_len,
                max_rows=None if sort_by_length else batch_size,
                sort_by_length=sort_by_length,
            )
            with inference_mode():
                for microbatch in plan.microbatches:
                    chunk_indices = [
                        compute[position] for position in microbatch.indices
                    ]
                    chunk = [sequences[index] for index in chunk_indices]
                    ids, mask = pad_sequences(
                        chunk,
                        pad_value=self.config.pad_id,
                        width=microbatch.width,
                    )
                    out[chunk_indices] = softmax(
                        self.forward(ids, mask), axis=-1
                    )
                    if cache is not None:
                        for index in chunk_indices:
                            evictions += cache.put(
                                key_of[index], out[index]
                            )
        total_tokens = plan.total_tokens if plan else 0
        if cache is not None:
            # Fan computed rows out to intra-call duplicates (same key
            # means same ids, so the copy is what a redundant forward
            # would have produced).
            for key, indices in groups.items():
                first = indices[0]
                for index in indices[1:]:
                    out[index] = out[first]
                    cached_tokens += effective_len[index]
            total_tokens += cached_tokens
        if counters is not None:
            counters.add("sequences", len(sequences))
            counters.add("microbatches", len(plan.microbatches) if plan else 0)
            counters.add("total_tokens", total_tokens)
            counters.add("padded_tokens", plan.padded_tokens if plan else 0)
            if cache is not None:
                counters.add(rescache.HITS, hits)
                counters.add(rescache.MISSES, len(sequences) - hits)
                counters.add(rescache.CACHED_TOKENS, cached_tokens)
                if evictions:
                    counters.add(rescache.EVICTIONS, evictions)
                if not compute:
                    counters.add(rescache.BYPASSES, 1)
        return out

    def predict(
        self, sequences: list[list[int]], batch_size: int = 64, **kwargs
    ) -> np.ndarray:
        """Hard class predictions for each id sequence."""
        return self.predict_proba(sequences, batch_size, **kwargs).argmax(axis=-1)
