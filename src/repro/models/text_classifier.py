"""N-way weak-label text classification over sustainability sentences.

The classification tenants of the task registry (ClimateBERT-NetZero-style
target classification, initiative sentence classification) need the same
substrate contracts as the extractor — bucketed batching, the
content-addressed result cache, checkpointed fine-tuning, model broadcast
for parallel shards, and manifest-verified persistence — but over a
sequence-level label head instead of token labels. This module is that
head: :class:`ObjectiveDetector` generalized from binary to N named
labels, with the extractor's save/load and fault-injection surfaces.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import threading
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.models.sequence_classifier import SequenceClassifier
from repro.models.training import FineTuneConfig, fit_sequence_classifier
from repro.nn.encoder import EncoderConfig
from repro.nn.serialize import load_state, save_state
from repro.runtime.checkpoint import (
    CheckpointManager,
    read_json,
    replace_dir,
    verify_manifest,
    write_manifest,
)
from repro.runtime.errors import ArtifactError
from repro.runtime.profiling import PerfCounters, RunStats
from repro.runtime.rescache import ResultCache
from repro.text.bpe import BpeTokenizer
from repro.text.normalize import TextNormalizer
from repro.text.words import WordTokenizer

MANIFEST_KIND = "text_label_classifier"


def classification_rows(
    labels: Sequence[str], probabilities: np.ndarray
) -> list[dict[str, str]]:
    """Fold probability rows into the registry's classification rows.

    One ``{"Label": name, "Score": repr(prob)}`` dict per input row —
    ``repr`` round-trips the winning probability exactly, so string
    equality of rows is bitwise equality of the scores. Shared by
    :class:`repro.tasks.models.ClassificationModel` and the durable-run
    segment workers, which must produce byte-identical rows from a
    broadcast-restored classifier.
    """
    rows: list[dict[str, str]] = []
    for row in probabilities:
        best = int(np.argmax(row))
        rows.append({"Label": labels[best], "Score": repr(float(row[best]))})
    return rows


@dataclasses.dataclass(frozen=True)
class TextClassifierConfig:
    """Configuration of :class:`TextLabelClassifier`.

    ``labels`` names the classes in id order — predictions, weak votes,
    and saved models all use this order, so it is part of the persisted
    configuration. The remaining knobs mirror the detector/extractor
    configs so the runtime contracts (bucketed batching under a token
    budget, content-addressed result caching) carry over unchanged.
    """

    labels: tuple[str, ...]
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_dim: int = 128
    max_len: int = 96
    dropout: float = 0.1
    num_merges: int = 500
    finetune: FineTuneConfig = dataclasses.field(
        default_factory=lambda: FineTuneConfig(epochs=4, learning_rate=1e-3)
    )
    seed: int = 13
    #: "bucketed" length-sorts sequences and packs microbatches under
    #: ``token_budget`` padded tokens; "arrival" keeps fixed-row chunks.
    batching: str = "bucketed"
    token_budget: int = 4096
    #: Content-addressed result cache over ``predict_proba`` (0 = off).
    result_cache_capacity: int = 0
    #: Seed of the cache's deterministic random-replacement eviction.
    result_cache_seed: int = 0

    def __post_init__(self) -> None:
        if len(self.labels) < 2:
            raise ValueError("labels must name at least two classes")
        if len(set(self.labels)) != len(self.labels):
            raise ValueError("labels must be unique")
        if self.batching not in ("bucketed", "arrival"):
            raise ValueError(
                f"unknown batching {self.batching!r}; "
                "use 'bucketed' or 'arrival'"
            )
        if self.token_budget <= 0:
            raise ValueError("token_budget must be positive")
        if self.result_cache_capacity < 0:
            raise ValueError("result_cache_capacity must be >= 0")


class TextLabelClassifier:
    """Fine-tuned N-way sentence classifier with named labels.

    Carries the full substrate contract: bitwise packing-invariant
    ``predict_proba`` (so batched == sequential == sharded), an optional
    content-addressed result cache whose hits are bitwise-identical to
    recomputation, checkpointed training through
    :func:`fit_sequence_classifier`, ``build_model`` for the parallel
    runtime's model broadcast, and manifest-verified atomic ``save``.
    """

    def __init__(self, config: TextClassifierConfig) -> None:
        self.config = config
        self.normalizer = TextNormalizer()
        self.word_tokenizer = WordTokenizer()
        self.tokenizer: BpeTokenizer | None = None
        self.model: SequenceClassifier | None = None
        self.loss_history: list[float] = []
        #: Runtime observability from the last completed ``predict_proba``
        #: call (last-writer-wins); ``total_run_stats`` merges every call.
        self.last_run_stats: RunStats | None = None
        self.total_run_stats = RunStats()
        #: Optional chaos hooks (``repro.runtime.resilience.FaultInjector``):
        #: checked at the "tokenize" and "forward" stages.
        self.fault_injector = None
        #: Lazily resolved so config swaps (CLI overrides, cache tests)
        #: rebuild the cache against the current capacity/seed.
        self._result_cache: ResultCache | None = None
        self._result_cache_key: tuple[int, int] | None = None
        self._stats_lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    @property
    def labels(self) -> tuple[str, ...]:
        return self.config.labels

    @property
    def result_cache(self) -> ResultCache | None:
        """The active result cache (``None`` while capacity is 0)."""
        return self._resolve_result_cache()

    def _resolve_result_cache(self) -> ResultCache | None:
        capacity = self.config.result_cache_capacity
        if capacity <= 0:
            self._result_cache = None
            self._result_cache_key = None
            return None
        wanted = (capacity, self.config.result_cache_seed)
        if self._result_cache is None or self._result_cache_key != wanted:
            self._result_cache = ResultCache(
                capacity=capacity, seed=self.config.result_cache_seed
            )
            self._result_cache_key = wanted
        return self._result_cache

    def build_model(
        self, encoder_config: EncoderConfig | None = None
    ) -> SequenceClassifier:
        """A freshly initialized classifier shaped for this config.

        Requires a fitted tokenizer (the vocabulary fixes the embedding
        shape). Used by :meth:`fit`, :meth:`load`, and the parallel
        runtime's broadcast restore; ``encoder_config`` overrides the
        config-derived geometry with the fitted model's actual config.
        """
        if self.tokenizer is None:
            raise RuntimeError("tokenizer is not fitted; call fit() first")
        rng = np.random.default_rng(self.config.seed)
        if encoder_config is None:
            encoder_config = EncoderConfig(
                vocab_size=len(self.tokenizer.vocab),
                dim=self.config.dim,
                num_layers=self.config.num_layers,
                num_heads=self.config.num_heads,
                ffn_dim=self.config.ffn_dim,
                max_len=self.config.max_len,
                dropout=self.config.dropout,
            )
        return SequenceClassifier(encoder_config, len(self.labels), rng)

    def _encode(self, texts: Sequence[str]) -> list[list[int]]:
        assert self.tokenizer is not None
        sequences: list[list[int]] = []
        for text in texts:
            words = self.word_tokenizer.words(self.normalizer(text))
            if not words:
                words = ["."]
            sequences.append(list(self.tokenizer.encode(words).ids))
        return sequences

    def fit(
        self,
        texts: Sequence[str],
        label_ids: Sequence[int],
        checkpoint: CheckpointManager | None = None,
    ) -> "TextLabelClassifier":
        """Train on sentences with integer class labels (id order of
        ``config.labels``); supports the durable checkpoint contract."""
        if len(texts) != len(label_ids):
            raise ValueError("texts and label_ids must be parallel")
        if not texts:
            raise ValueError("cannot fit a classifier on no texts")
        for label in label_ids:
            if not 0 <= int(label) < len(self.labels):
                raise ValueError(
                    f"label id {label!r} outside 0..{len(self.labels) - 1}"
                )
        corpus = (
            word
            for text in texts
            for word in self.word_tokenizer.words(self.normalizer(text))
        )
        self.tokenizer = BpeTokenizer.train(
            corpus, num_merges=self.config.num_merges
        )
        self.model = self.build_model()
        self.loss_history = fit_sequence_classifier(
            self.model,
            self._encode(texts),
            [int(label) for label in label_ids],
            self.config.finetune,
            checkpoint=checkpoint,
        )
        return self

    def _predict_kwargs(self, counters: PerfCounters) -> dict:
        bucketed = self.config.batching == "bucketed"
        return {
            "token_budget": self.config.token_budget if bucketed else None,
            "sort_by_length": bucketed,
            "counters": counters,
            "cache": self._resolve_result_cache(),
        }

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """``(len(texts), len(labels))`` class probabilities.

        Bitwise-invariant to batch composition and to cache state, which
        is what the cross-task conformance suite asserts.
        """
        if self.model is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        if not texts:
            return np.zeros((0, len(self.labels)))
        counters = PerfCounters()
        with counters.timer("wall_seconds"):
            with counters.timer("tokenize_seconds"):
                if self.fault_injector is not None:
                    self.fault_injector.check("tokenize")
                sequences = self._encode(texts)
            with counters.timer("model_seconds"):
                if self.fault_injector is not None:
                    self.fault_injector.check("forward")
                probabilities = self.model.predict_proba(
                    sequences, **self._predict_kwargs(counters)
                )
        stats = RunStats.from_counters(
            counters, wall_seconds=counters.get("wall_seconds")
        )
        with self._stats_lock:
            self.last_run_stats = stats
            self.total_run_stats = self.total_run_stats.merge(stats)
        return probabilities

    def predict_labels(self, texts: Sequence[str]) -> list[str]:
        """The argmax label name per text (first label wins exact ties)."""
        probabilities = self.predict_proba(texts)
        return [
            self.labels[int(np.argmax(row))] for row in probabilities
        ]

    # -- persistence -------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist config, tokenizer, and weights; atomic with manifest.

        Same contract as :meth:`WeakSupervisionExtractor.save` — full
        write to a sibling temp directory, checksum manifest, rename into
        place. Fault sites: ``save`` on entry, ``save_commit`` before the
        publish rename.
        """
        if self.model is None or self.tokenizer is None:
            raise RuntimeError("cannot save an unfitted classifier")
        if self.fault_injector is not None:
            self.fault_injector.check("save")
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        tmp = directory.with_name(directory.name + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        payload = dataclasses.asdict(self.config)
        payload["finetune"] = dataclasses.asdict(self.config.finetune)
        (tmp / "config.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )
        self.tokenizer.save(tmp / "tokenizer.json")
        save_state(self.model, tmp / "model.npz")
        write_manifest(
            tmp,
            ["config.json", "tokenizer.json", "model.npz"],
            kind=MANIFEST_KIND,
        )
        if self.fault_injector is not None:
            self.fault_injector.check("save_commit")
        replace_dir(tmp, directory)

    @classmethod
    def load(cls, directory: str | Path) -> "TextLabelClassifier":
        """Restore a classifier saved with :meth:`save` (verified load)."""
        directory = Path(directory)
        manifest = verify_manifest(
            directory, kind=MANIFEST_KIND, required=False
        )
        artifacts = (manifest or {}).get("artifacts", {})
        payload = read_json(directory / "config.json")
        try:
            finetune = FineTuneConfig(**payload.pop("finetune"))
            payload["labels"] = tuple(payload["labels"])
            config = TextClassifierConfig(finetune=finetune, **payload)
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            raise ArtifactError(
                f"classifier config is malformed: {error}",
                path=str(directory / "config.json"),
            ) from error
        classifier = cls(config)
        classifier.tokenizer = BpeTokenizer.load(directory / "tokenizer.json")
        classifier.model = classifier.build_model()
        load_state(
            classifier.model,
            directory / "model.npz",
            expected_sha256=artifacts.get("model.npz", {}).get("sha256"),
        )
        return classifier
