"""Model zoo: encoder variants, task heads, pre-training, distillation.

The paper's Figure 4 compares four encoder families — RoBERTa, BERT, and
their distilled versions. This package reproduces that axis with from-scratch
equivalents that differ the same way the originals do:

* ``roberta``-style: masked-language-model pre-training with *dynamic*
  masking (fresh masks every epoch) and a longer pre-training budget;
* ``bert``-style: *static* masking (one fixed mask per sequence) and a
  shorter budget;
* ``distil*``: a shallower student distilled from the corresponding teacher.
"""

from repro.models.zoo import (
    MODEL_ZOO,
    ModelSpec,
    PretrainSpec,
    get_model_spec,
)
from repro.models.token_classifier import TokenClassifier
from repro.models.sequence_classifier import SequenceClassifier
from repro.models.mlm import MaskedLanguageModel, pretrain_encoder, pretrain_mlm
from repro.models.distill import distill_encoder
from repro.models.pretrained import build_pretraining_corpus, pretrain_for_domain
from repro.models.training import (
    FineTuneConfig,
    fit_sequence_classifier,
    fit_token_classifier,
)
from repro.models.text_classifier import (
    TextClassifierConfig,
    TextLabelClassifier,
)

__all__ = [
    "FineTuneConfig",
    "MODEL_ZOO",
    "MaskedLanguageModel",
    "ModelSpec",
    "PretrainSpec",
    "SequenceClassifier",
    "TextClassifierConfig",
    "TextLabelClassifier",
    "TokenClassifier",
    "build_pretraining_corpus",
    "distill_encoder",
    "fit_sequence_classifier",
    "fit_token_classifier",
    "get_model_spec",
    "pretrain_encoder",
    "pretrain_for_domain",
    "pretrain_mlm",
]
