"""Transformer token classifier: encoder + per-token softmax head.

This is the sequence-labeling model of Section 3.3: the encoder produces
contextual states and a linear head assigns one IOB label per subword piece.
"""

from __future__ import annotations

import numpy as np

from repro.nn.batching import pad_sequences
from repro.nn.encoder import EncoderConfig, TransformerEncoder
from repro.nn.layers import Dropout, Linear
from repro.nn.loss import IGNORE_INDEX, cross_entropy
from repro.nn.module import Module, guard_finite, inference_mode
from repro.runtime.profiling import PerfCounters
from repro.runtime.scheduler import plan_batches


class TokenClassifier(Module):
    """Per-token classifier over a transformer encoder."""

    def __init__(
        self,
        config: EncoderConfig,
        num_labels: int,
        rng: np.random.Generator,
        encoder: TransformerEncoder | None = None,
    ) -> None:
        super().__init__()
        if num_labels <= 0:
            raise ValueError("num_labels must be positive")
        self.config = config
        self.num_labels = num_labels
        self.encoder = encoder or TransformerEncoder(config, rng)
        self.head_dropout = Dropout(config.dropout, rng)
        self.head = Linear(config.dim, num_labels, rng)

    def forward(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Return logits ``(batch, time, num_labels)``."""
        states = self.encoder(ids, mask)
        return guard_finite(
            self.head(self.head_dropout(states)), "token classifier logits"
        )

    def backward(self, dlogits: np.ndarray) -> None:
        dstates = self.head_dropout.backward(self.head.backward(dlogits))
        self.encoder.backward(dstates)

    # -- convenience ---------------------------------------------------------

    def loss_and_backward(
        self,
        ids: np.ndarray,
        mask: np.ndarray,
        labels: np.ndarray,
        class_weights: np.ndarray | None = None,
    ) -> float:
        """Forward + loss + full backward pass; returns the loss value.

        ``labels`` is ``(batch, time)`` with ``IGNORE_INDEX`` on padding and
        on positions that should not contribute (e.g. non-first subword
        pieces when using first-piece label alignment).
        """
        logits = self.forward(ids, mask)
        batch, time, num_labels = logits.shape
        loss, dflat = cross_entropy(
            logits.reshape(batch * time, num_labels),
            np.asarray(labels).reshape(batch * time),
            ignore_index=IGNORE_INDEX,
            class_weights=class_weights,
        )
        self.backward(dflat.reshape(batch, time, num_labels))
        return loss

    def predict_logits(
        self,
        sequences: list[list[int]],
        batch_size: int = 32,
        *,
        token_budget: int | None = None,
        sort_by_length: bool = True,
        counters: PerfCounters | None = None,
    ) -> list[np.ndarray]:
        """Per-token logits ``(len(seq), num_labels)`` per id sequence.

        Sequences are length-bucketed under a token budget (default
        ``batch_size * max_len``), so mixed-length corpora pad to
        near-uniform widths; results come back in the original order and
        are bitwise-independent of the packing. ``sort_by_length=False``
        reproduces naive arrival-order chunks of ``batch_size`` rows.
        """
        self.eval()
        if not sequences:
            return []
        plan = plan_batches(
            [len(seq) for seq in sequences],
            token_budget=token_budget or batch_size * self.config.max_len,
            max_len=self.config.max_len,
            max_rows=None if sort_by_length else batch_size,
            sort_by_length=sort_by_length,
        )
        outputs: list[np.ndarray | None] = [None] * len(sequences)
        with inference_mode():
            for microbatch in plan.microbatches:
                chunk = [sequences[index] for index in microbatch.indices]
                ids, mask = pad_sequences(
                    chunk, pad_value=self.config.pad_id, width=microbatch.width
                )
                logits = self.forward(ids, mask)
                for row, index in enumerate(microbatch.indices):
                    length = min(len(sequences[index]), microbatch.width)
                    outputs[index] = logits[row, :length].copy()
        if counters is not None:
            counters.add("sequences", len(sequences))
            counters.add("microbatches", len(plan.microbatches))
            counters.add("total_tokens", plan.total_tokens)
            counters.add("padded_tokens", plan.padded_tokens)
        return outputs

    def predict(
        self,
        sequences: list[list[int]],
        batch_size: int = 32,
        **kwargs,
    ) -> list[np.ndarray]:
        """Predict label ids (per-token argmax) for each id sequence."""
        return [
            logits.argmax(axis=-1)
            for logits in self.predict_logits(sequences, batch_size, **kwargs)
        ]
