"""Transformer token classifier: encoder + per-token softmax head.

This is the sequence-labeling model of Section 3.3: the encoder produces
contextual states and a linear head assigns one IOB label per subword piece.
"""

from __future__ import annotations

import numpy as np

from repro.nn.batching import pad_sequences
from repro.nn.encoder import EncoderConfig, TransformerEncoder
from repro.nn.layers import Dropout, Linear
from repro.nn.loss import IGNORE_INDEX, cross_entropy
from repro.nn.module import Module


class TokenClassifier(Module):
    """Per-token classifier over a transformer encoder."""

    def __init__(
        self,
        config: EncoderConfig,
        num_labels: int,
        rng: np.random.Generator,
        encoder: TransformerEncoder | None = None,
    ) -> None:
        super().__init__()
        if num_labels <= 0:
            raise ValueError("num_labels must be positive")
        self.config = config
        self.num_labels = num_labels
        self.encoder = encoder or TransformerEncoder(config, rng)
        self.head_dropout = Dropout(config.dropout, rng)
        self.head = Linear(config.dim, num_labels, rng)

    def forward(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Return logits ``(batch, time, num_labels)``."""
        states = self.encoder(ids, mask)
        return self.head(self.head_dropout(states))

    def backward(self, dlogits: np.ndarray) -> None:
        dstates = self.head_dropout.backward(self.head.backward(dlogits))
        self.encoder.backward(dstates)

    # -- convenience ---------------------------------------------------------

    def loss_and_backward(
        self,
        ids: np.ndarray,
        mask: np.ndarray,
        labels: np.ndarray,
        class_weights: np.ndarray | None = None,
    ) -> float:
        """Forward + loss + full backward pass; returns the loss value.

        ``labels`` is ``(batch, time)`` with ``IGNORE_INDEX`` on padding and
        on positions that should not contribute (e.g. non-first subword
        pieces when using first-piece label alignment).
        """
        logits = self.forward(ids, mask)
        batch, time, num_labels = logits.shape
        loss, dflat = cross_entropy(
            logits.reshape(batch * time, num_labels),
            np.asarray(labels).reshape(batch * time),
            ignore_index=IGNORE_INDEX,
            class_weights=class_weights,
        )
        self.backward(dflat.reshape(batch, time, num_labels))
        return loss

    def predict_logits(
        self,
        sequences: list[list[int]],
        batch_size: int = 32,
    ) -> list[np.ndarray]:
        """Per-token logits ``(len(seq), num_labels)`` per id sequence."""
        self.eval()
        outputs: list[np.ndarray] = []
        for start in range(0, len(sequences), batch_size):
            chunk = sequences[start : start + batch_size]
            ids, mask = pad_sequences(
                chunk, pad_value=self.config.pad_id, max_len=self.config.max_len
            )
            logits = self.forward(ids, mask)
            for row, seq in enumerate(chunk):
                length = min(len(seq), ids.shape[1])
                outputs.append(logits[row, :length].copy())
        return outputs

    def predict(
        self,
        sequences: list[list[int]],
        batch_size: int = 32,
    ) -> list[np.ndarray]:
        """Predict label ids (per-token argmax) for each id sequence."""
        return [
            logits.argmax(axis=-1)
            for logits in self.predict_logits(sequences, batch_size)
        ]
