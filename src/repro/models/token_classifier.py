"""Transformer token classifier: encoder + per-token softmax head.

This is the sequence-labeling model of Section 3.3: the encoder produces
contextual states and a linear head assigns one IOB label per subword piece.
"""

from __future__ import annotations

import numpy as np

from repro.nn.batching import pad_sequences
from repro.nn.encoder import EncoderConfig, TransformerEncoder
from repro.nn.layers import Dropout, Linear
from repro.nn.loss import IGNORE_INDEX, cross_entropy
from repro.nn.module import Module, guard_finite, inference_mode
from repro.runtime import rescache
from repro.runtime.profiling import PerfCounters
from repro.runtime.rescache import ResultCache, result_key
from repro.runtime.scheduler import plan_batches


class TokenClassifier(Module):
    """Per-token classifier over a transformer encoder."""

    def __init__(
        self,
        config: EncoderConfig,
        num_labels: int,
        rng: np.random.Generator,
        encoder: TransformerEncoder | None = None,
    ) -> None:
        super().__init__()
        if num_labels <= 0:
            raise ValueError("num_labels must be positive")
        self.config = config
        self.num_labels = num_labels
        self.encoder = encoder or TransformerEncoder(config, rng)
        self.head_dropout = Dropout(config.dropout, rng)
        self.head = Linear(config.dim, num_labels, rng)

    def forward(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Return logits ``(batch, time, num_labels)``."""
        states = self.encoder(ids, mask)
        return guard_finite(
            self.head(self.head_dropout(states)), "token classifier logits"
        )

    def backward(self, dlogits: np.ndarray) -> None:
        dstates = self.head_dropout.backward(self.head.backward(dlogits))
        self.encoder.backward(dstates)

    # -- convenience ---------------------------------------------------------

    def loss_and_backward(
        self,
        ids: np.ndarray,
        mask: np.ndarray,
        labels: np.ndarray,
        class_weights: np.ndarray | None = None,
    ) -> float:
        """Forward + loss + full backward pass; returns the loss value.

        ``labels`` is ``(batch, time)`` with ``IGNORE_INDEX`` on padding and
        on positions that should not contribute (e.g. non-first subword
        pieces when using first-piece label alignment).
        """
        logits = self.forward(ids, mask)
        batch, time, num_labels = logits.shape
        loss, dflat = cross_entropy(
            logits.reshape(batch * time, num_labels),
            np.asarray(labels).reshape(batch * time),
            ignore_index=IGNORE_INDEX,
            class_weights=class_weights,
        )
        self.backward(dflat.reshape(batch, time, num_labels))
        return loss

    def enable_quantization(self, mode: str = "int8") -> int:
        """Attach the int8 inference path (see :mod:`repro.nn.quant`).

        Ungated at this level — integration layers that own calibration
        data (``WeakSupervisionExtractor.enable_quantization``, the CLI)
        wrap this in the top-label equivalence gate. Returns the number
        of quantized attachment points.
        """
        from repro.nn.quant import quantize_module

        return quantize_module(self, mode)

    def disable_quantization(self) -> int:
        """Detach the int8 path, restoring bitwise-fp32 forwards."""
        from repro.nn.quant import dequantize_module

        return dequantize_module(self)

    def _cache_variant(self) -> str:
        from repro.nn.quant import quantization_state

        return quantization_state(self) or ""

    def predict_logits(
        self,
        sequences: list[list[int]],
        batch_size: int = 32,
        *,
        token_budget: int | None = None,
        sort_by_length: bool = True,
        counters: PerfCounters | None = None,
        cache: ResultCache | None = None,
    ) -> list[np.ndarray]:
        """Per-token logits ``(len(seq), num_labels)`` per id sequence.

        Sequences are length-bucketed under a token budget (default
        ``batch_size * max_len``), so mixed-length corpora pad to
        near-uniform widths; results come back in the original order and
        are bitwise-independent of the packing. ``sort_by_length=False``
        reproduces naive arrival-order chunks of ``batch_size`` rows.

        With ``cache`` (a :class:`~repro.runtime.rescache.ResultCache`),
        each sequence is first looked up by content key — normalized ids
        + model fingerprint + quantization variant — and only the misses
        are planned and computed (duplicate misses within one call run
        the encoder once). Packing invariance makes cache hits
        bitwise-identical to a full uncached run.
        """
        self.eval()
        if not sequences:
            return []
        outputs: list[np.ndarray | None] = [None] * len(sequences)
        effective_len = [
            max(1, min(len(seq), self.config.max_len)) for seq in sequences
        ]
        cached_tokens = 0
        hits = 0
        key_of: dict[int, str] = {}
        groups: dict[str, list[int]] = {}
        if cache is None:
            compute = list(range(len(sequences)))
        else:
            fingerprint = self.fingerprint()
            variant = self._cache_variant()
            compute = []
            for index, seq in enumerate(sequences):
                key = result_key(seq, fingerprint, variant)
                found = cache.get(key)
                if found is not None:
                    outputs[index] = np.array(found, copy=True)
                    hits += 1
                    cached_tokens += effective_len[index]
                else:
                    key_of[index] = key
                    if key not in groups:
                        compute.append(index)
                    groups.setdefault(key, []).append(index)
        plan = None
        evictions = 0
        if compute:
            plan = plan_batches(
                [len(sequences[index]) for index in compute],
                token_budget=token_budget or batch_size * self.config.max_len,
                max_len=self.config.max_len,
                max_rows=None if sort_by_length else batch_size,
                sort_by_length=sort_by_length,
            )
            with inference_mode():
                for microbatch in plan.microbatches:
                    chunk_indices = [
                        compute[position] for position in microbatch.indices
                    ]
                    chunk = [sequences[index] for index in chunk_indices]
                    ids, mask = pad_sequences(
                        chunk,
                        pad_value=self.config.pad_id,
                        width=microbatch.width,
                    )
                    logits = self.forward(ids, mask)
                    for row, index in enumerate(chunk_indices):
                        length = min(len(sequences[index]), microbatch.width)
                        outputs[index] = logits[row, :length].copy()
                        if cache is not None:
                            evictions += cache.put(
                                key_of[index], outputs[index]
                            )
        total_tokens = plan.total_tokens if plan else 0
        if cache is not None:
            # Fan computed results out to intra-call duplicates: same
            # content key means same ids, so the copy is bitwise what a
            # redundant forward would have produced.
            for key, indices in groups.items():
                first = indices[0]
                for index in indices[1:]:
                    outputs[index] = outputs[first].copy()
                    cached_tokens += effective_len[index]
            total_tokens += cached_tokens
        if counters is not None:
            counters.add("sequences", len(sequences))
            counters.add("microbatches", len(plan.microbatches) if plan else 0)
            counters.add("total_tokens", total_tokens)
            counters.add("padded_tokens", plan.padded_tokens if plan else 0)
            if cache is not None:
                counters.add(rescache.HITS, hits)
                counters.add(rescache.MISSES, len(sequences) - hits)
                counters.add(rescache.CACHED_TOKENS, cached_tokens)
                if evictions:
                    counters.add(rescache.EVICTIONS, evictions)
                if not compute:
                    counters.add(rescache.BYPASSES, 1)
        return outputs

    def predict(
        self,
        sequences: list[list[int]],
        batch_size: int = 32,
        **kwargs,
    ) -> list[np.ndarray]:
        """Predict label ids (per-token argmax) for each id sequence."""
        return [
            logits.argmax(axis=-1)
            for logits in self.predict_logits(sequences, batch_size, **kwargs)
        ]
