"""Domain pre-training: build (tokenizer, encoder) pairs per zoo variant.

The paper fine-tunes *pre-trained* encoders; pre-training is what lets a
RoBERTa generalize from 885 weakly labeled objectives. Our substrate
equivalent: pre-train each zoo variant with its own recipe (dynamic/static
masking, distillation) on an unlabeled stream of synthetic report blocks —
the same kind of unlabeled corpus the authors' deployment has in abundance.

Pre-trained assets are cached on disk keyed by their configuration, so
benchmarks and repeated runs do not re-pretrain.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.datasets.reports import ReportGenerator
from repro.models.distill import distill_encoder
from repro.models.mlm import pretrain_encoder, pretrain_mlm
from repro.models.zoo import get_model_spec
from repro.nn.encoder import TransformerEncoder
from repro.nn.serialize import load_state, save_state
from repro.text.bpe import BpeTokenizer
from repro.text.normalize import TextNormalizer
from repro.text.words import WordTokenizer

DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro-pretrained"


def build_pretraining_corpus(
    seed: int = 0,
    num_blocks: int = 3000,
) -> list[str]:
    """An unlabeled block stream from the synthetic report distribution."""
    rng = np.random.default_rng(seed)
    generator = ReportGenerator(rng)
    blocks: list[str] = []
    while len(blocks) < num_blocks:
        if rng.random() < 0.55:
            blocks.append(generator._objective_block().text)
        else:
            blocks.append(generator._noise_block().text)
    return blocks


def _cache_key(
    model_name: str,
    seed: int,
    corpus_blocks: int,
    num_merges: int,
    max_len: int,
) -> str:
    spec = get_model_spec(model_name)
    payload = json.dumps(
        {
            "model": model_name,
            "arch": [spec.dim, spec.num_layers, spec.num_heads, spec.ffn_dim],
            "pretrain_epochs": spec.pretrain.epochs,
            "seed": seed,
            "blocks": corpus_blocks,
            "merges": num_merges,
            "max_len": max_len,
            "version": 1,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def pretrain_for_domain(
    model_name: str = "roberta",
    seed: int = 0,
    corpus_blocks: int = 3000,
    num_merges: int = 600,
    max_len: int = 96,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    max_steps: int | None = None,
) -> tuple[BpeTokenizer, TransformerEncoder]:
    """Return a (BPE tokenizer, pre-trained encoder) pair for a zoo model.

    Distilled variants pre-train their teacher first (or load it from
    cache) and distill into the shallower student.

    Args:
        cache_dir: directory for cached assets; ``None`` disables caching.
        max_steps: cap pre-training steps (tests); capped runs are NOT
            cached.
    """
    spec = get_model_spec(model_name)
    cacheable = cache_dir is not None and max_steps is None
    if cacheable:
        cache_dir = Path(cache_dir)
        key = _cache_key(model_name, seed, corpus_blocks, num_merges, max_len)
        tokenizer_path = cache_dir / f"{key}-tokenizer.json"
        encoder_path = cache_dir / f"{key}-encoder.npz"
        if tokenizer_path.exists() and encoder_path.exists():
            tokenizer = BpeTokenizer.load(tokenizer_path)
            encoder = TransformerEncoder(
                spec.encoder_config(len(tokenizer.vocab), max_len),
                np.random.default_rng(seed),
            )
            load_state(encoder, encoder_path)
            return tokenizer, encoder

    normalizer = TextNormalizer()
    word_tokenizer = WordTokenizer()
    blocks = build_pretraining_corpus(seed=seed, num_blocks=corpus_blocks)
    word_lists = [word_tokenizer.words(normalizer(b)) for b in blocks]
    tokenizer = BpeTokenizer.train(
        (word for words in word_lists for word in words),
        num_merges=num_merges,
    )
    sequences = [
        list(tokenizer.encode(words).ids)[:max_len]
        for words in word_lists
        if words
    ]
    rng = np.random.default_rng(seed + 1)

    if spec.distilled:
        assert spec.teacher is not None
        teacher_spec = get_model_spec(spec.teacher)
        teacher = pretrain_mlm(
            teacher_spec,
            sequences,
            tokenizer.vocab,
            rng,
            max_len=max_len,
            max_steps=max_steps,
        )
        encoder = distill_encoder(
            teacher,
            spec,
            sequences,
            tokenizer.vocab,
            rng,
            max_len=max_len,
            max_steps=max_steps,
        )
    else:
        encoder = pretrain_encoder(
            spec,
            sequences,
            tokenizer.vocab,
            rng,
            max_len=max_len,
            max_steps=max_steps,
        )

    if cacheable:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tokenizer.save(tokenizer_path)
        save_state(encoder, encoder_path)
    return tokenizer, encoder


__all__ = [
    "DEFAULT_CACHE_DIR",
    "build_pretraining_corpus",
    "pretrain_for_domain",
]
