"""Named encoder variants mirroring the paper's model-selection axis."""

from __future__ import annotations

import dataclasses

from repro.nn.encoder import EncoderConfig


@dataclasses.dataclass(frozen=True)
class PretrainSpec:
    """Pre-training recipe for an encoder variant.

    Attributes:
        objective: ``"mlm"`` for all variants (NSP is long obsolete).
        dynamic_masking: True for RoBERTa-style (fresh masks every pass),
            False for BERT-style (masks fixed once per sequence).
        epochs: passes over the pre-training corpus.
        mask_prob: fraction of tokens selected for prediction.
    """

    objective: str = "mlm"
    dynamic_masking: bool = True
    epochs: int = 3
    mask_prob: float = 0.15


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """A named encoder variant: architecture + pre-training recipe."""

    name: str
    family: str  # "roberta" | "bert"
    distilled: bool
    dim: int
    num_layers: int
    num_heads: int
    ffn_dim: int
    dropout: float
    pretrain: PretrainSpec
    teacher: str | None = None  # zoo name of the distillation teacher

    def encoder_config(self, vocab_size: int, max_len: int) -> EncoderConfig:
        """Instantiate the encoder configuration for a given vocabulary."""
        return EncoderConfig(
            vocab_size=vocab_size,
            dim=self.dim,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            ffn_dim=self.ffn_dim,
            max_len=max_len,
            dropout=self.dropout,
        )


MODEL_ZOO: dict[str, ModelSpec] = {
    "roberta": ModelSpec(
        name="roberta",
        family="roberta",
        distilled=False,
        dim=96,
        num_layers=3,
        num_heads=4,
        ffn_dim=192,
        dropout=0.1,
        pretrain=PretrainSpec(dynamic_masking=True, epochs=3),
    ),
    "bert": ModelSpec(
        name="bert",
        family="bert",
        distilled=False,
        dim=96,
        num_layers=3,
        num_heads=4,
        ffn_dim=192,
        dropout=0.1,
        pretrain=PretrainSpec(dynamic_masking=False, epochs=2),
    ),
    "distilroberta": ModelSpec(
        name="distilroberta",
        family="roberta",
        distilled=True,
        dim=96,
        num_layers=2,
        num_heads=4,
        ffn_dim=192,
        dropout=0.1,
        pretrain=PretrainSpec(dynamic_masking=True, epochs=2),
        teacher="roberta",
    ),
    "distilbert": ModelSpec(
        name="distilbert",
        family="bert",
        distilled=True,
        dim=96,
        num_layers=2,
        num_heads=4,
        ffn_dim=192,
        dropout=0.1,
        pretrain=PretrainSpec(dynamic_masking=False, epochs=1),
        teacher="bert",
    ),
}


def get_model_spec(name: str) -> ModelSpec:
    """Look up a zoo entry; raises ``KeyError`` with the valid names."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None
