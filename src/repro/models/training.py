"""Fine-tuning loops for token and sequence classification.

The paper's default configuration (Section 3.3): fine-tune for up to 10
epochs with the Adam optimizer and batch size 16. The learning rate here
defaults to 1e-3 rather than the paper's 5e-5 because our encoders are two
orders of magnitude smaller and (optionally) far less pre-trained; Figure 4's
learning-rate sweep is reproduced over the substrate-appropriate range in
``benchmarks/bench_figure4_hyperparams.py``.

Both loops accept an optional
:class:`~repro.runtime.checkpoint.CheckpointManager` and then run
*durably*: every optimizer step is a potential checkpoint/crash boundary,
and a killed run resumed from its latest checkpoint produces final
weights, optimizer moments, and loss history bit-for-bit identical to the
uninterrupted run. The resume recipe: restore the loop generator to its
epoch-start snapshot, re-derive the epoch's shuffle plan (same draws),
then fast-forward every generator — loop and dropout — to the step
boundary and continue with the remaining batches. Checkpointing draws no
randomness of its own, so enabling it never changes a fresh run.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.models.sequence_classifier import SequenceClassifier
from repro.models.token_classifier import TokenClassifier
from repro.nn.batching import iterate_minibatches, pad_sequences
from repro.nn.loss import IGNORE_INDEX
from repro.nn.optim import Adam, AdamW, LinearWarmupDecay, clip_grad_norm
from repro.nn.serialize import load_optimizer_state, rng_state, set_rng_state
from repro.runtime.checkpoint import (
    CheckpointManager,
    config_fingerprint,
    restore_rng_states,
)


@dataclasses.dataclass(frozen=True)
class FineTuneConfig:
    """Hyperparameters for fine-tuning (paper defaults where sensible)."""

    epochs: int = 10
    learning_rate: float = 1e-3
    batch_size: int = 16
    optimizer: str = "adam"  # "adam" | "adamw"
    weight_decay: float = 0.0
    warmup_fraction: float = 0.1
    max_grad_norm: float = 1.0
    seed: int = 13

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "adamw"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")


def _make_optimizer(model, config: FineTuneConfig):
    cls = AdamW if config.optimizer == "adamw" else Adam
    return cls(
        model.parameters(),
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
    )


def _pad_labels(
    label_sequences: list[list[int]], width: int
) -> np.ndarray:
    padded = np.full((len(label_sequences), width), IGNORE_INDEX, dtype=np.int64)
    for row, labels in enumerate(label_sequences):
        clipped = labels[:width]
        padded[row, : len(clipped)] = clipped
    return padded


def _bootstrap_resume(checkpoint, fingerprint, model, optimizer, rng):
    """Bind the config hash and load the latest good checkpoint, if any.

    Returns the loaded :class:`~repro.runtime.checkpoint.TrainState` (with
    model/optimizer state applied and the loop generator rewound to the
    checkpoint's epoch start) or ``None`` for a fresh start.
    """
    checkpoint.bind(fingerprint)
    state = checkpoint.load_latest()
    if state is None:
        return None
    model.load_state_dict(state.model_state)
    if not state.done:
        load_optimizer_state(optimizer, state.optimizer_state)
        if state.rng_epoch_start is not None:
            set_rng_state(rng, state.rng_epoch_start)
    return state


def fit_token_classifier(
    model: TokenClassifier,
    sequences: list[list[int]],
    label_sequences: list[list[int]],
    config: FineTuneConfig,
    on_epoch_end: Callable[[int, float], None] | None = None,
    class_weights: np.ndarray | None = None,
    checkpoint: CheckpointManager | None = None,
) -> list[float]:
    """Fine-tune a token classifier; returns mean loss per epoch.

    ``label_sequences`` are per-piece label ids aligned with ``sequences``;
    use ``IGNORE_INDEX`` for positions excluded from the loss.

    With ``checkpoint`` set, the loop checkpoints at the manager's cadence
    and resumes from the latest good checkpoint bitwise-identically (see
    the module docstring); ``on_epoch_end`` for the epoch a crash landed
    in is re-invoked on resume (at-least-once).
    """
    if len(sequences) != len(label_sequences):
        raise ValueError("sequences and label_sequences must be parallel")
    if not sequences:
        raise ValueError("cannot fine-tune on an empty dataset")
    rng = np.random.default_rng(config.seed)
    optimizer = _make_optimizer(model, config)
    steps_per_epoch = int(np.ceil(len(sequences) / config.batch_size))
    total_steps = steps_per_epoch * config.epochs
    schedule = LinearWarmupDecay(
        int(config.warmup_fraction * total_steps), total_steps
    )
    resume = None
    if checkpoint is not None:
        resume = _bootstrap_resume(
            checkpoint,
            config_fingerprint(
                loop="fit_token_classifier",
                config=dataclasses.asdict(config),
                num_sequences=len(sequences),
                class_weights=(
                    None
                    if class_weights is None
                    else [float(w) for w in np.asarray(class_weights).ravel()]
                ),
            ),
            model,
            optimizer,
            rng,
        )
        if resume is not None and resume.done:
            return list(resume.history)
    model.train()
    history: list[float] = list(resume.history) if resume else []
    step = resume.step if resume else 0
    start_epoch = resume.epoch if resume else 0
    pending = resume is not None
    for epoch in range(start_epoch, config.epochs):
        rng_epoch_start = (
            rng_state(rng) if checkpoint is not None else None
        )
        # Materializing the plan is draw-neutral: the generator shuffles
        # once up front either way, and the loop RNG is used for nothing
        # else inside the epoch.
        plan = list(
            iterate_minibatches(len(sequences), config.batch_size, rng)
        )
        losses: list[float] = []
        done_in_epoch = 0
        if pending:
            pending = False
            losses = list(resume.epoch_losses)
            done_in_epoch = resume.steps_in_epoch
            restore_rng_states(resume.rng_now, rng, model)
        for indices in plan[done_in_epoch:]:
            ids, mask = pad_sequences(
                [sequences[i] for i in indices],
                pad_value=model.config.pad_id,
                max_len=model.config.max_len,
            )
            labels = _pad_labels(
                [label_sequences[i] for i in indices], ids.shape[1]
            )
            model.zero_grad()
            loss = model.loss_and_backward(
                ids, mask, labels, class_weights=class_weights
            )
            clip_grad_norm(model.parameters(), config.max_grad_norm)
            optimizer.step(lr_scale=schedule(step))
            losses.append(loss)
            step += 1
            done_in_epoch += 1
            if checkpoint is not None:
                checkpoint.maybe_save(
                    model,
                    optimizer,
                    rng,
                    step=step,
                    epoch=epoch,
                    steps_in_epoch=done_in_epoch,
                    history=history,
                    epoch_losses=losses,
                    rng_setup=None,
                    rng_epoch_start=rng_epoch_start,
                )
        epoch_loss = float(np.mean(losses))
        history.append(epoch_loss)
        if on_epoch_end is not None:
            on_epoch_end(epoch, epoch_loss)
    if checkpoint is not None:
        checkpoint.maybe_save(
            model,
            optimizer,
            rng,
            step=step,
            epoch=config.epochs,
            steps_in_epoch=0,
            history=history,
            epoch_losses=[],
            rng_setup=None,
            rng_epoch_start=None,
            done=True,
            force=True,
        )
    return history


def fit_sequence_classifier(
    model: SequenceClassifier,
    sequences: list[list[int]],
    labels: list[int],
    config: FineTuneConfig,
    checkpoint: CheckpointManager | None = None,
) -> list[float]:
    """Fine-tune a sequence classifier; returns mean loss per epoch.

    Supports the same durable checkpoint/resume contract as
    :func:`fit_token_classifier`.
    """
    if len(sequences) != len(labels):
        raise ValueError("sequences and labels must be parallel")
    if not sequences:
        raise ValueError("cannot fine-tune on an empty dataset")
    rng = np.random.default_rng(config.seed)
    optimizer = _make_optimizer(model, config)
    steps_per_epoch = int(np.ceil(len(sequences) / config.batch_size))
    total_steps = steps_per_epoch * config.epochs
    schedule = LinearWarmupDecay(
        int(config.warmup_fraction * total_steps), total_steps
    )
    label_array = np.asarray(labels, dtype=np.int64)
    resume = None
    if checkpoint is not None:
        resume = _bootstrap_resume(
            checkpoint,
            config_fingerprint(
                loop="fit_sequence_classifier",
                config=dataclasses.asdict(config),
                num_sequences=len(sequences),
            ),
            model,
            optimizer,
            rng,
        )
        if resume is not None and resume.done:
            return list(resume.history)
    model.train()
    history: list[float] = list(resume.history) if resume else []
    step = resume.step if resume else 0
    start_epoch = resume.epoch if resume else 0
    pending = resume is not None
    for epoch in range(start_epoch, config.epochs):
        rng_epoch_start = (
            rng_state(rng) if checkpoint is not None else None
        )
        plan = list(
            iterate_minibatches(len(sequences), config.batch_size, rng)
        )
        losses: list[float] = []
        done_in_epoch = 0
        if pending:
            pending = False
            losses = list(resume.epoch_losses)
            done_in_epoch = resume.steps_in_epoch
            restore_rng_states(resume.rng_now, rng, model)
        for indices in plan[done_in_epoch:]:
            ids, mask = pad_sequences(
                [sequences[i] for i in indices],
                pad_value=model.config.pad_id,
                max_len=model.config.max_len,
            )
            model.zero_grad()
            loss = model.loss_and_backward(ids, mask, label_array[indices])
            clip_grad_norm(model.parameters(), config.max_grad_norm)
            optimizer.step(lr_scale=schedule(step))
            losses.append(loss)
            step += 1
            done_in_epoch += 1
            if checkpoint is not None:
                checkpoint.maybe_save(
                    model,
                    optimizer,
                    rng,
                    step=step,
                    epoch=epoch,
                    steps_in_epoch=done_in_epoch,
                    history=history,
                    epoch_losses=losses,
                    rng_setup=None,
                    rng_epoch_start=rng_epoch_start,
                )
        history.append(float(np.mean(losses)))
    if checkpoint is not None:
        checkpoint.maybe_save(
            model,
            optimizer,
            rng,
            step=step,
            epoch=config.epochs,
            steps_in_epoch=0,
            history=history,
            epoch_losses=[],
            rng_setup=None,
            rng_epoch_start=None,
            done=True,
            force=True,
        )
    return history
