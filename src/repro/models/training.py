"""Fine-tuning loops for token and sequence classification.

The paper's default configuration (Section 3.3): fine-tune for up to 10
epochs with the Adam optimizer and batch size 16. The learning rate here
defaults to 1e-3 rather than the paper's 5e-5 because our encoders are two
orders of magnitude smaller and (optionally) far less pre-trained; Figure 4's
learning-rate sweep is reproduced over the substrate-appropriate range in
``benchmarks/bench_figure4_hyperparams.py``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.models.sequence_classifier import SequenceClassifier
from repro.models.token_classifier import TokenClassifier
from repro.nn.batching import iterate_minibatches, pad_sequences
from repro.nn.loss import IGNORE_INDEX
from repro.nn.optim import Adam, AdamW, LinearWarmupDecay, clip_grad_norm


@dataclasses.dataclass(frozen=True)
class FineTuneConfig:
    """Hyperparameters for fine-tuning (paper defaults where sensible)."""

    epochs: int = 10
    learning_rate: float = 1e-3
    batch_size: int = 16
    optimizer: str = "adam"  # "adam" | "adamw"
    weight_decay: float = 0.0
    warmup_fraction: float = 0.1
    max_grad_norm: float = 1.0
    seed: int = 13

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "adamw"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")


def _make_optimizer(model, config: FineTuneConfig):
    cls = AdamW if config.optimizer == "adamw" else Adam
    return cls(
        model.parameters(),
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
    )


def _pad_labels(
    label_sequences: list[list[int]], width: int
) -> np.ndarray:
    padded = np.full((len(label_sequences), width), IGNORE_INDEX, dtype=np.int64)
    for row, labels in enumerate(label_sequences):
        clipped = labels[:width]
        padded[row, : len(clipped)] = clipped
    return padded


def fit_token_classifier(
    model: TokenClassifier,
    sequences: list[list[int]],
    label_sequences: list[list[int]],
    config: FineTuneConfig,
    on_epoch_end: Callable[[int, float], None] | None = None,
    class_weights: np.ndarray | None = None,
) -> list[float]:
    """Fine-tune a token classifier; returns mean loss per epoch.

    ``label_sequences`` are per-piece label ids aligned with ``sequences``;
    use ``IGNORE_INDEX`` for positions excluded from the loss.
    """
    if len(sequences) != len(label_sequences):
        raise ValueError("sequences and label_sequences must be parallel")
    if not sequences:
        raise ValueError("cannot fine-tune on an empty dataset")
    rng = np.random.default_rng(config.seed)
    optimizer = _make_optimizer(model, config)
    steps_per_epoch = int(np.ceil(len(sequences) / config.batch_size))
    total_steps = steps_per_epoch * config.epochs
    schedule = LinearWarmupDecay(
        int(config.warmup_fraction * total_steps), total_steps
    )
    model.train()
    history: list[float] = []
    step = 0
    for epoch in range(config.epochs):
        losses: list[float] = []
        for indices in iterate_minibatches(
            len(sequences), config.batch_size, rng
        ):
            ids, mask = pad_sequences(
                [sequences[i] for i in indices],
                pad_value=model.config.pad_id,
                max_len=model.config.max_len,
            )
            labels = _pad_labels(
                [label_sequences[i] for i in indices], ids.shape[1]
            )
            model.zero_grad()
            loss = model.loss_and_backward(
                ids, mask, labels, class_weights=class_weights
            )
            clip_grad_norm(model.parameters(), config.max_grad_norm)
            optimizer.step(lr_scale=schedule(step))
            losses.append(loss)
            step += 1
        epoch_loss = float(np.mean(losses))
        history.append(epoch_loss)
        if on_epoch_end is not None:
            on_epoch_end(epoch, epoch_loss)
    return history


def fit_sequence_classifier(
    model: SequenceClassifier,
    sequences: list[list[int]],
    labels: list[int],
    config: FineTuneConfig,
) -> list[float]:
    """Fine-tune a sequence classifier; returns mean loss per epoch."""
    if len(sequences) != len(labels):
        raise ValueError("sequences and labels must be parallel")
    if not sequences:
        raise ValueError("cannot fine-tune on an empty dataset")
    rng = np.random.default_rng(config.seed)
    optimizer = _make_optimizer(model, config)
    steps_per_epoch = int(np.ceil(len(sequences) / config.batch_size))
    total_steps = steps_per_epoch * config.epochs
    schedule = LinearWarmupDecay(
        int(config.warmup_fraction * total_steps), total_steps
    )
    label_array = np.asarray(labels, dtype=np.int64)
    model.train()
    history: list[float] = []
    step = 0
    for __ in range(config.epochs):
        losses: list[float] = []
        for indices in iterate_minibatches(
            len(sequences), config.batch_size, rng
        ):
            ids, mask = pad_sequences(
                [sequences[i] for i in indices],
                pad_value=model.config.pad_id,
                max_len=model.config.max_len,
            )
            model.zero_grad()
            loss = model.loss_and_backward(ids, mask, label_array[indices])
            clip_grad_norm(model.parameters(), config.max_grad_norm)
            optimizer.step(lr_scale=schedule(step))
            losses.append(loss)
            step += 1
        history.append(float(np.mean(losses)))
    return history
