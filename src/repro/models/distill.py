"""Knowledge distillation for the ``distil*`` encoder variants.

A shallower student is trained to match the teacher's MLM distribution at
masked positions (soft targets, temperature-scaled KL) in addition to the
usual hard MLM loss — the DistilBERT recipe reduced to the parts that matter
for this substrate.
"""

from __future__ import annotations

import numpy as np

from repro.models.mlm import MaskedLanguageModel, apply_mlm_corruption
from repro.models.zoo import ModelSpec
from repro.nn.batching import iterate_minibatches, pad_sequences
from repro.nn.encoder import TransformerEncoder
from repro.nn.functional import log_softmax, softmax
from repro.nn.loss import IGNORE_INDEX, cross_entropy
from repro.nn.optim import AdamW, clip_grad_norm
from repro.text.vocab import Vocabulary


def _soft_cross_entropy(
    student_logits: np.ndarray,
    teacher_probs: np.ndarray,
    position_mask: np.ndarray,
    temperature: float,
) -> tuple[float, np.ndarray]:
    """KL-style soft loss at selected positions; returns (loss, dlogits)."""
    num_positions = int(position_mask.sum())
    if num_positions == 0:
        return 0.0, np.zeros_like(student_logits)
    scaled = student_logits / temperature
    log_probs = log_softmax(scaled, axis=-1)
    per_position = -(teacher_probs * log_probs).sum(axis=-1)
    loss = float((per_position * position_mask).sum() / num_positions)
    dscaled = (softmax(scaled, axis=-1) - teacher_probs)
    dscaled *= position_mask[..., None] / num_positions
    # d/dlogits of (logits / T) chain; the usual T^2 compensation keeps the
    # gradient magnitude comparable across temperatures.
    dlogits = dscaled * temperature
    return loss, dlogits


def distill_encoder(
    teacher: MaskedLanguageModel,
    student_spec: ModelSpec,
    sequences: list[list[int]],
    vocab: Vocabulary,
    rng: np.random.Generator,
    max_len: int = 96,
    batch_size: int = 16,
    lr: float = 1e-3,
    temperature: float = 2.0,
    soft_weight: float = 0.5,
    epochs: int | None = None,
    max_steps: int | None = None,
) -> TransformerEncoder:
    """Distill ``teacher`` into a fresh student encoder.

    Returns the student's encoder (head discarded).
    """
    config = student_spec.encoder_config(len(vocab), max_len)
    student = MaskedLanguageModel(TransformerEncoder(config, rng), rng)
    optimizer = AdamW(student.parameters(), lr=lr, weight_decay=0.01)
    teacher.eval()
    student.train()

    step = 0
    for __ in range(epochs or student_spec.pretrain.epochs):
        for indices in iterate_minibatches(len(sequences), batch_size, rng):
            ids, mask = pad_sequences(
                [sequences[i] for i in indices], max_len=max_len
            )
            corrupted, targets = apply_mlm_corruption(
                ids, mask, vocab, rng, student_spec.pretrain.mask_prob
            )
            position_mask = (targets != IGNORE_INDEX).astype(mask.dtype)

            teacher_logits = teacher(corrupted, mask)
            teacher_probs = softmax(teacher_logits / temperature, axis=-1)

            student.zero_grad()
            student_logits = student(corrupted, mask)
            batch, time, width = student_logits.shape

            hard_loss, dhard = cross_entropy(
                student_logits.reshape(batch * time, width),
                targets.reshape(batch * time),
                ignore_index=IGNORE_INDEX,
            )
            __ = hard_loss
            soft_loss, dsoft = _soft_cross_entropy(
                student_logits, teacher_probs, position_mask, temperature
            )
            __ = soft_loss
            dlogits = (
                (1.0 - soft_weight) * dhard.reshape(batch, time, width)
                + soft_weight * dsoft
            )
            student.backward(dlogits)
            clip_grad_norm(student.parameters(), 1.0)
            optimizer.step()
            step += 1
            if max_steps is not None and step >= max_steps:
                return student.encoder
    return student.encoder
