"""Knowledge distillation for the ``distil*`` encoder variants.

A shallower student is trained to match the teacher's MLM distribution at
masked positions (soft targets, temperature-scaled KL) in addition to the
usual hard MLM loss — the DistilBERT recipe reduced to the parts that matter
for this substrate.

:func:`distill_encoder` is durable: pass a
:class:`~repro.runtime.checkpoint.CheckpointManager` and a killed run
resumes bitwise-identically. Unlike the MLM loop, corruption here is
drawn *per batch inside the step loop* (interleaved with the student's
dropout draws, from the same generator), so the epoch "plan" a resume
re-derives from the ``epoch_start`` snapshot is the shuffle permutation
only; jumping the generator to the ``now`` snapshot accounts for the
skipped batches' corruption and dropout draws in one move. Progress is
observable through an optional
:class:`~repro.runtime.profiling.PerfCounters` (``train_steps``,
``train_epochs``, ``train_loss_total``, ``resumed_from_step``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.models.mlm import MaskedLanguageModel, apply_mlm_corruption
from repro.models.zoo import ModelSpec
from repro.nn.batching import iterate_minibatches, pad_sequences
from repro.nn.encoder import TransformerEncoder
from repro.nn.functional import log_softmax, softmax
from repro.nn.loss import IGNORE_INDEX, cross_entropy
from repro.nn.optim import AdamW, clip_grad_norm
from repro.nn.serialize import load_optimizer_state, rng_state, set_rng_state
from repro.runtime.checkpoint import (
    CheckpointManager,
    config_fingerprint,
    restore_rng_states,
)
from repro.runtime.profiling import PerfCounters
from repro.text.vocab import Vocabulary


def _soft_cross_entropy(
    student_logits: np.ndarray,
    teacher_probs: np.ndarray,
    position_mask: np.ndarray,
    temperature: float,
) -> tuple[float, np.ndarray]:
    """KL-style soft loss at selected positions; returns (loss, dlogits)."""
    num_positions = int(position_mask.sum())
    if num_positions == 0:
        return 0.0, np.zeros_like(student_logits)
    scaled = student_logits / temperature
    log_probs = log_softmax(scaled, axis=-1)
    per_position = -(teacher_probs * log_probs).sum(axis=-1)
    loss = float((per_position * position_mask).sum() / num_positions)
    dscaled = (softmax(scaled, axis=-1) - teacher_probs)
    dscaled *= position_mask[..., None] / num_positions
    # d/dlogits of (logits / T) chain; the usual T^2 compensation keeps the
    # gradient magnitude comparable across temperatures.
    dlogits = dscaled * temperature
    return loss, dlogits


def distill_encoder(
    teacher: MaskedLanguageModel,
    student_spec: ModelSpec,
    sequences: list[list[int]],
    vocab: Vocabulary,
    rng: np.random.Generator,
    max_len: int = 96,
    batch_size: int = 16,
    lr: float = 1e-3,
    temperature: float = 2.0,
    soft_weight: float = 0.5,
    epochs: int | None = None,
    max_steps: int | None = None,
    checkpoint: CheckpointManager | None = None,
    counters: PerfCounters | None = None,
) -> TransformerEncoder:
    """Distill ``teacher`` into a fresh student encoder.

    Returns the student's encoder (head discarded). With ``checkpoint``
    set, the loop checkpoints every optimizer step boundary at the
    manager's cadence and resumes bitwise-identically after a crash.
    """
    config = student_spec.encoder_config(len(vocab), max_len)
    student = MaskedLanguageModel(TransformerEncoder(config, rng), rng)
    optimizer = AdamW(student.parameters(), lr=lr, weight_decay=0.01)
    teacher.eval()

    total_epochs = epochs or student_spec.pretrain.epochs
    resume = None
    if checkpoint is not None:
        checkpoint.bind(
            config_fingerprint(
                loop="distill_encoder",
                student_spec=dataclasses.asdict(student_spec),
                num_sequences=len(sequences),
                vocab_size=len(vocab),
                max_len=max_len,
                batch_size=batch_size,
                lr=lr,
                temperature=temperature,
                soft_weight=soft_weight,
                epochs=total_epochs,
                max_steps=max_steps,
            )
        )
        resume = checkpoint.load_latest()
        if resume is not None:
            student.load_state_dict(resume.model_state)
            if resume.done:
                return student.encoder
            load_optimizer_state(optimizer, resume.optimizer_state)
            if counters is not None:
                counters.add("resumed_from_step", resume.step)
    student.train()

    step = resume.step if resume else 0
    start_epoch = resume.epoch if resume else 0
    history: list[float] = list(resume.history) if resume else []
    pending = resume is not None

    def _checkpoint_step(epoch, steps_in_epoch, losses, epoch_start, done):
        checkpoint.maybe_save(
            student,
            optimizer,
            rng,
            step=step,
            epoch=epoch,
            steps_in_epoch=steps_in_epoch,
            history=history,
            epoch_losses=losses,
            rng_setup=None,
            rng_epoch_start=epoch_start,
            done=done,
            force=done,
        )

    for epoch in range(start_epoch, total_epochs):
        if pending:
            rng_epoch_start = resume.rng_epoch_start
            if rng_epoch_start is not None:
                set_rng_state(rng, rng_epoch_start)
        else:
            rng_epoch_start = (
                rng_state(rng) if checkpoint is not None else None
            )
        # The plan is the shuffle permutation only; corruption stays
        # interleaved with dropout in the step loop below. Materializing
        # is draw-neutral (the generator shuffles once up front).
        plan = list(iterate_minibatches(len(sequences), batch_size, rng))
        losses: list[float] = []
        done_in_epoch = 0
        if pending:
            pending = False
            losses = list(resume.epoch_losses)
            done_in_epoch = resume.steps_in_epoch
            restore_rng_states(resume.rng_now, rng, student)
        for indices in plan[done_in_epoch:]:
            ids, mask = pad_sequences(
                [sequences[i] for i in indices], max_len=max_len
            )
            corrupted, targets = apply_mlm_corruption(
                ids, mask, vocab, rng, student_spec.pretrain.mask_prob
            )
            position_mask = (targets != IGNORE_INDEX).astype(mask.dtype)

            teacher_logits = teacher(corrupted, mask)
            teacher_probs = softmax(teacher_logits / temperature, axis=-1)

            student.zero_grad()
            student_logits = student(corrupted, mask)
            batch, time, width = student_logits.shape

            hard_loss, dhard = cross_entropy(
                student_logits.reshape(batch * time, width),
                targets.reshape(batch * time),
                ignore_index=IGNORE_INDEX,
            )
            soft_loss, dsoft = _soft_cross_entropy(
                student_logits, teacher_probs, position_mask, temperature
            )
            loss = (1.0 - soft_weight) * hard_loss + soft_weight * soft_loss
            dlogits = (
                (1.0 - soft_weight) * dhard.reshape(batch, time, width)
                + soft_weight * dsoft
            )
            student.backward(dlogits)
            clip_grad_norm(student.parameters(), 1.0)
            optimizer.step()
            losses.append(loss)
            step += 1
            done_in_epoch += 1
            if counters is not None:
                counters.add("train_steps")
                counters.add("train_loss_total", loss)
            if max_steps is not None and step >= max_steps:
                if checkpoint is not None:
                    history.append(float(np.mean(losses)))
                    _checkpoint_step(epoch, done_in_epoch, [], None, True)
                return student.encoder
            if checkpoint is not None:
                _checkpoint_step(
                    epoch, done_in_epoch, losses, rng_epoch_start, False
                )
        if losses:
            history.append(float(np.mean(losses)))
        if counters is not None:
            counters.add("train_epochs")
    if checkpoint is not None:
        _checkpoint_step(total_epochs, 0, [], None, True)
    return student.encoder
