"""Zero-/few-shot prompting extractors (Table 4 baselines).

``PromptingExtractor`` implements the common
:class:`~repro.core.base.DetailExtractor` interface: ``fit`` selects the
in-context examples (three, following the NetZeroFacts protocol the paper
adopts), ``extract`` builds the prompt, queries the LLM, and parses the
completion back into the schema.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.base import DetailExtractor
from repro.core.schema import SUSTAINABILITY_FIELDS, AnnotatedObjective
from repro.llm.engine import SimulatedLLM
from repro.llm.parse import parse_llm_json
from repro.llm.prompts import build_prompt


class PromptingExtractor(DetailExtractor):
    """LLM prompting baseline in zero-shot or few-shot mode."""

    def __init__(
        self,
        mode: str = "zero",
        fields: Sequence[str] = SUSTAINABILITY_FIELDS,
        llm: SimulatedLLM | None = None,
        num_examples: int = 3,
        seed: int = 0,
    ) -> None:
        if mode not in ("zero", "few"):
            raise ValueError(f"mode must be 'zero' or 'few', got {mode!r}")
        self.mode = mode
        self.fields = tuple(fields)
        self.llm = llm or SimulatedLLM(seed=seed)
        self.num_examples = num_examples
        self.seed = seed
        self.examples: list[AnnotatedObjective] = []
        self.name = (
            "Zero-Shot Prompting" if mode == "zero" else "Few-Shot Prompting"
        )

    # -- DetailExtractor interface -------------------------------------------

    def fit(
        self, objectives: Sequence[AnnotatedObjective]
    ) -> "PromptingExtractor":
        """Zero-shot: no-op. Few-shot: pick diverse in-context examples."""
        if self.mode == "zero":
            self.examples = []
            return self
        if not objectives:
            raise ValueError("few-shot prompting needs training objectives")
        self.examples = self._select_examples(objectives)
        return self

    def _select_examples(
        self, objectives: Sequence[AnnotatedObjective]
    ) -> list[AnnotatedObjective]:
        """Prefer examples that jointly cover every schema field."""
        rng = np.random.default_rng(self.seed)
        order = list(rng.permutation(len(objectives)))
        chosen: list[AnnotatedObjective] = []
        covered: set[str] = set()
        for index in order:
            objective = objectives[index]
            new_fields = set(objective.present_details()) - covered
            if new_fields:
                chosen.append(objective)
                covered |= set(objective.present_details())
            if len(chosen) == self.num_examples:
                return chosen
        for index in order:
            if len(chosen) == self.num_examples:
                break
            if objectives[index] not in chosen:
                chosen.append(objectives[index])
        return chosen

    def extract(self, text: str) -> dict[str, str]:
        prompt = build_prompt(text, self.fields, self.examples)
        completion = self.llm.complete(prompt)
        parsed = parse_llm_json(completion)
        # Map keys back onto the schema case-insensitively; drifted keys
        # that do not correspond to any schema field are dropped (a real
        # pipeline cannot guess what "Time frame" maps to).
        by_casefold = {field.casefold(): field for field in self.fields}
        details = {field: "" for field in self.fields}
        for key, value in parsed.items():
            field = by_casefold.get(key.strip().casefold())
            if field and not details[field]:
                details[field] = value
        return details

    @property
    def simulated_seconds(self) -> float:
        """Virtual LLM latency accumulated so far."""
        return self.llm.simulated_seconds
