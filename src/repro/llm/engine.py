"""SimulatedLLM: a deterministic stand-in for Llama 4 109B.

The engine receives a *prompt string* and returns a *completion string* —
the same contract as a real LLM server. It genuinely parses the prompt:

1. the requested field inventory is read from the ``Fields:`` glossary;
2. in-context examples (if any) switch the behaviour model from the
   zero-shot preset to the better-calibrated few-shot preset — exactly the
   mechanism the paper's baselines rely on;
3. the query objective is located after the final ``### Objective:`` marker
   and read with the rule policy in :mod:`repro.llm.policy`.

The behaviour model reproduces the documented failure modes of prompting
baselines on this task: format drift (prose wrappers, renamed fields),
over-verbose values, qualifier boundary overruns, and mistaking statistic
years for deadlines. A token-throughput model supplies the inference
latency that the paper's Table 4 reports (minutes, dominated by the LLM).
"""

from __future__ import annotations

import dataclasses
import json
import re

import numpy as np

from repro.llm.policy import QUALIFIER_STOPPERS, Reading, read_objective
from repro.llm.prompts import EXAMPLES_HEADER, OBJECTIVE_HEADER

_FIELD_LINE_RE = re.compile(r"^- (?P<name>[A-Za-z]+):", re.MULTILINE)

#: How the policy's reading maps onto schema field names.
_FIELD_SOURCES = {
    "Action": "action",
    "Amount": "amount",
    "Qualifier": "qualifier",
    "Baseline": "baseline",
    "Deadline": "deadline",
    "TargetValue": "amount",
    "ReferenceYear": "baseline",
    "TargetYear": "deadline",
}

#: Field-name drift: without examples the model invents its own keys.
_DRIFT_NAMES = {
    "Action": ("action verb", "Main action"),
    "Amount": ("target amount", "Value"),
    "Qualifier": ("subject", "Context"),
    "Baseline": ("base year", "Starting year"),
    "Deadline": ("target year", "Time frame"),
    "TargetValue": ("value", "Reduction"),
    "ReferenceYear": ("baseline", "From year"),
    "TargetYear": ("deadline", "By year"),
}


@dataclasses.dataclass(frozen=True)
class LlmBehavior:
    """Noise/format knobs of the completion policy."""

    p_prose_wrapper: float
    p_plaintext_answer: float
    p_field_name_drift: float
    p_value_verbosity: float
    p_statistic_year_as_deadline: float
    p_qualifier_overrun: float
    p_field_miss: float


#: Zero-shot: no examples to anchor format or granularity.
ZERO_SHOT_BEHAVIOR = LlmBehavior(
    p_prose_wrapper=0.25,
    p_plaintext_answer=0.08,
    p_field_name_drift=0.12,
    p_value_verbosity=0.22,
    p_statistic_year_as_deadline=0.55,
    p_qualifier_overrun=0.35,
    p_field_miss=0.05,
)

#: Few-shot: three examples calibrate keys, granularity, and format.
FEW_SHOT_BEHAVIOR = LlmBehavior(
    p_prose_wrapper=0.03,
    p_plaintext_answer=0.0,
    p_field_name_drift=0.0,
    p_value_verbosity=0.05,
    p_statistic_year_as_deadline=0.25,
    p_qualifier_overrun=0.15,
    p_field_miss=0.03,
)


@dataclasses.dataclass
class LatencyModel:
    """Token-throughput latency of the simulated model.

    Defaults approximate a 109B-parameter model squeezed onto the paper's
    4 GB NVIDIA RTX A500 (heavy CPU offloading): slow prefill and decode.
    """

    prefill_tokens_per_second: float = 220.0
    decode_tokens_per_second: float = 9.0

    def seconds(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            prompt_tokens / self.prefill_tokens_per_second
            + completion_tokens / self.decode_tokens_per_second
        )


class SimulatedLLM:
    """Deterministic prompt-in/completion-out language model simulator."""

    def __init__(
        self,
        seed: int = 0,
        latency: LatencyModel | None = None,
        zero_shot_behavior: LlmBehavior = ZERO_SHOT_BEHAVIOR,
        few_shot_behavior: LlmBehavior = FEW_SHOT_BEHAVIOR,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.latency = latency or LatencyModel()
        self.zero_shot_behavior = zero_shot_behavior
        self.few_shot_behavior = few_shot_behavior
        #: Accumulated virtual inference time (seconds).
        self.simulated_seconds = 0.0
        #: Number of completions served.
        self.calls = 0

    # -- prompt parsing ------------------------------------------------------

    @staticmethod
    def _parse_fields(prompt: str) -> list[str]:
        return _FIELD_LINE_RE.findall(prompt)

    @staticmethod
    def _parse_query(prompt: str) -> str:
        marker = f"{OBJECTIVE_HEADER}:"
        position = prompt.rfind(marker)
        if position == -1:
            return prompt.strip().splitlines()[-1] if prompt.strip() else ""
        rest = prompt[position + len(marker):]
        return rest.splitlines()[0].strip() if rest.strip() else ""

    # -- completion ---------------------------------------------------------

    def complete(self, prompt: str) -> str:
        """Serve one completion for ``prompt``."""
        fields = self._parse_fields(prompt)
        has_examples = EXAMPLES_HEADER in prompt
        behavior = (
            self.few_shot_behavior if has_examples else self.zero_shot_behavior
        )
        query = self._parse_query(prompt)
        reading = read_objective(query) if query else Reading(tokens=[])
        details = self._answer(reading, fields or list(_FIELD_SOURCES), behavior)
        completion = self._render(details, behavior)

        prompt_tokens = len(prompt.split())
        completion_tokens = max(len(completion.split()), 1)
        self.simulated_seconds += self.latency.seconds(
            prompt_tokens, completion_tokens
        )
        self.calls += 1
        return completion

    def _flip(self, probability: float) -> bool:
        return bool(self.rng.random() < probability)

    def _answer(
        self, reading: Reading, fields: list[str], behavior: LlmBehavior
    ) -> dict[str, str]:
        words = [token.text for token in reading.tokens]
        details: dict[str, str] = {}
        for field in fields:
            source = _FIELD_SOURCES.get(field)
            value = getattr(reading, source, "") if source else ""

            if source == "deadline" and not value:
                if reading.statistic_year and self._flip(
                    behavior.p_statistic_year_as_deadline
                ):
                    value = reading.statistic_year

            if value and self._flip(behavior.p_field_miss):
                value = ""

            if (
                value
                and source == "amount"
                and self._flip(behavior.p_value_verbosity)
                and reading.amount_span
                and reading.amount_span[0] > 0
            ):
                cue = words[reading.amount_span[0] - 1]
                if cue.lower() in ("by", "of", "to"):
                    value = f"{cue} {value}"

            if (
                value
                and source == "qualifier"
                and self._flip(behavior.p_qualifier_overrun)
                and reading.qualifier_span
            ):
                start, end = reading.qualifier_span
                extra = int(self.rng.integers(1, 3))
                new_end = min(len(reading.tokens), end + extra)
                while new_end > end and not any(
                    c.isalnum() for c in words[new_end - 1]
                ):
                    new_end -= 1
                if new_end > end:
                    value = self._span_text(reading, start, new_end)

            key = field
            if self._flip(behavior.p_field_name_drift):
                variants = _DRIFT_NAMES.get(field, (field,))
                key = variants[int(self.rng.integers(len(variants)))]
            details[key] = value
        return details

    @staticmethod
    def _span_text(reading: Reading, start: int, end: int) -> str:
        tokens = reading.tokens
        source_start = tokens[start].start
        source_end = tokens[end - 1].end
        # Reconstruct from token surface forms with single spaces — the
        # model re-generates text rather than quoting character offsets.
        del source_start, source_end
        pieces: list[str] = []
        for token in tokens[start:end]:
            if token.text == "-" and pieces:
                pieces[-1] += "-"
                continue
            if pieces and pieces[-1].endswith("-"):
                pieces[-1] += token.text
                continue
            pieces.append(token.text)
        return " ".join(pieces)

    def _render(
        self, details: dict[str, str], behavior: LlmBehavior
    ) -> str:
        if self._flip(behavior.p_plaintext_answer):
            lines = [
                f"{key}: {value if value else '(not mentioned)'}"
                for key, value in details.items()
            ]
            return "Here is what I found.\n" + "\n".join(lines)
        payload = json.dumps(details, indent=None)
        if self._flip(behavior.p_prose_wrapper):
            style = int(self.rng.integers(3))
            if style == 0:
                return (
                    "Sure! Based on the objective, the extracted details "
                    f"are:\n```json\n{payload}\n```\nLet me know if you "
                    "need anything else."
                )
            if style == 1:
                return f"The extracted details are: {payload}"
            return (
                f"```\n{payload}\n```\n"
                "Note that some details were not explicitly stated."
            )
        return payload
