"""The simulated LLM's internal reading-comprehension policy.

Rule-based extraction over an objective's word tokens: amount/value
spotting, year-role attribution from the preceding context, verb spotting
for actions, and qualifier phrase segmentation. This approximates the
"world knowledge" a large instruction-tuned model brings to the task; the
zero-/few-shot *difference* is applied on top by the engine's behaviour
model, not here.
"""

from __future__ import annotations

import dataclasses
import re

from repro.text.words import Token, WordTokenizer

_WORD_TOKENIZER = WordTokenizer()

_YEAR_RE = re.compile(r"^(19|20)\d\d$")
_PERCENT_RE = re.compile(r"^\d+(?:[.,]\d+)*%$")
_NUMBER_RE = re.compile(r"^\d+(?:[.,]\d+)*$")

#: Verbs an instruction-tuned model recognizes as objective actions.
KNOWN_VERBS = {
    "reduce", "achieve", "increase", "improve", "expand", "implement",
    "promote", "develop", "establish", "strengthen", "maintain", "deliver",
    "launch", "support", "integrate", "accelerate", "advance", "cut",
    "lower", "decrease", "reach", "eliminate", "offset", "halve", "source",
    "procure", "switch", "restore", "replenish", "conserve", "recycle",
    "divert", "compost", "transition", "convert", "make", "redesign",
    "shift", "double", "prevent", "audit", "engage", "assess", "certify",
    "require", "empower", "train", "invest", "donate", "protect", "plant",
    "preserve", "keep", "reuse", "refurbish", "extend", "recover", "align",
    "define", "publish", "link", "embed", "substitute", "explore", "join",
    "perform", "demonstrate", "pursue", "incorporate", "share", "use",
    "uses", "commit", "pledge", "aim", "co-found", "install", "restore",
}

#: Words that terminate a qualifier phrase.
QUALIFIER_STOPPERS = {
    "by", "before", "until", "no", "against", "compared", "relative",
    "from", "in", "(", ",", ".", "and", "as", "supported", "across",
    "while", "to",
}

#: Deadline cue words (the year after these is a deadline/target year).
DEADLINE_CUES = {"by", "before", "until", "than"}  # "no later than"

#: Baseline cue words (the year after these is a baseline/reference year).
BASELINE_CUES = {"baseline", "to", "from", "with", "against", "relative"}


@dataclasses.dataclass
class Reading:
    """What the policy believes about one objective text."""

    tokens: list[Token]
    action: str = ""
    action_span: tuple[int, int] | None = None
    amount: str = ""
    amount_span: tuple[int, int] | None = None
    qualifier: str = ""
    qualifier_span: tuple[int, int] | None = None
    baseline: str = ""
    deadline: str = ""
    statistic_year: str = ""  # a year that is neither baseline nor deadline


def _find_amount(words: list[str]) -> tuple[int, int] | None:
    """Locate the value expression; returns a token span or None."""
    for index, word in enumerate(words):
        lowered = word.lower()
        if _PERCENT_RE.match(word):
            return index, index + 1
        if _NUMBER_RE.match(word) and not _YEAR_RE.match(word):
            # "25 percent", "1 million", "500,000 tonnes", "250"
            if index + 1 < len(words) and words[index + 1].lower() in (
                "percent", "million", "billion", "tonnes", "percentage",
            ):
                if index + 2 < len(words) and words[index + 2].lower() in (
                    "tonnes",
                ):
                    return index, index + 3
                return index, index + 2
            return index, index + 1
        if lowered == "net" and index + 2 < len(words) and words[
            index + 1
        ] == "-" and words[index + 2].lower() == "zero":
            return index, index + 3
        if lowered == "net" and index + 1 < len(words) and words[
            index + 1
        ].lower() == "zero":
            return index, index + 2
        if lowered == "carbon" and index + 1 < len(words) and words[
            index + 1
        ].lower() in ("neutral", "neutrality"):
            return index, index + 2
        if lowered == "zero" and index + 1 < len(words):
            return index, index + 1
        if word == "$" and index + 1 < len(words) and _NUMBER_RE.match(
            words[index + 1]
        ):
            end = index + 2
            if end < len(words) and words[end].lower() in ("million", "billion"):
                end += 1
            return index, end
        if lowered == "double":
            return index, index + 1
    return None


def _find_action(words: list[str]) -> tuple[int, int] | None:
    """Locate the action verb (possibly with a 'will' modal)."""
    for index, word in enumerate(words):
        lowered = word.lower()
        if lowered == "will" and index + 1 < len(words):
            candidate = words[index + 1].lower()
            if candidate in KNOWN_VERBS or candidate.endswith("ment") is False:
                end = index + 2
                # "will be implemented"
                if candidate == "be" and index + 2 < len(words):
                    end = index + 3
                return index, end
        base = lowered[:-3] if lowered.endswith("ing") else lowered
        if (
            lowered in KNOWN_VERBS
            or base in KNOWN_VERBS
            or base + "e" in KNOWN_VERBS
            or (lowered.endswith("ing") and base[:-1] in KNOWN_VERBS)
        ):
            return index, index + 1
    return None


def read_objective(text: str) -> Reading:
    """Apply the reading-comprehension policy to an objective text."""
    tokens = _WORD_TOKENIZER.tokenize(text)
    words = [token.text for token in tokens]
    reading = Reading(tokens=tokens)

    amount_span = _find_amount(words)
    if amount_span:
        reading.amount_span = amount_span
        reading.amount = text[
            tokens[amount_span[0]].start : tokens[amount_span[1] - 1].end
        ]

    action_span = _find_action(words)
    if action_span:
        reading.action_span = action_span
        reading.action = text[
            tokens[action_span[0]].start : tokens[action_span[1] - 1].end
        ]

    # Year attribution from immediate context.
    for index, word in enumerate(words):
        if not _YEAR_RE.match(word):
            continue
        prev1 = words[index - 1].lower() if index >= 1 else ""
        prev2 = words[index - 2].lower() if index >= 2 else ""
        prev3 = words[index - 3].lower() if index >= 3 else ""
        next1 = words[index + 1].lower() if index + 1 < len(words) else ""

        is_baseline = (
            "baseline" in (prev1, prev2, prev3)  # "(baseline 2017)"
            or next1 in ("baseline", "base", "levels")  # "a 2017 baseline"
            or (prev1 == "to" and prev2 in ("compared", "relative"))
            or (prev1 == "from" and next1 != "")
        )
        is_deadline = (
            prev1 in ("by", "before", "until", "than")
            or (prev1 == "of" and prev2 == "end")  # "by the end of 2025"
        )
        if is_baseline:
            if not reading.baseline:
                reading.baseline = word
        elif is_deadline:
            if not reading.deadline:
                reading.deadline = word
        elif not reading.statistic_year:
            reading.statistic_year = word

    # Qualifier segmentation.
    reading.qualifier_span = _find_qualifier(words, reading)
    if reading.qualifier_span:
        start, end = reading.qualifier_span
        reading.qualifier = text[tokens[start].start : tokens[end - 1].end]
    return reading


def _extend_phrase(words: list[str], start: int) -> int:
    """Extend a noun phrase from ``start`` until a stopper; returns end."""
    end = start
    while end < len(words):
        lowered = words[end].lower()
        if lowered in QUALIFIER_STOPPERS and end > start:
            break
        if not any(c.isalnum() for c in words[end]) and words[end] not in (
            "-",
        ):
            break
        if _YEAR_RE.match(words[end]):
            break
        end += 1
    return end


def _find_qualifier(
    words: list[str], reading: Reading
) -> tuple[int, int] | None:
    # Preferred: the phrase right after "of" following the amount
    # ("Restore 100% of our global water use"), else right after the
    # amount, else between action and the next cue word.
    if reading.amount_span:
        after = reading.amount_span[1]
        if after < len(words) and words[after].lower() == "of":
            start = after + 1
            if start < len(words) and words[start].lower() in ("our", "the"):
                start += 1
            end = _extend_phrase(words, start)
            if end > start:
                return start, end
        if after < len(words) and words[after].lower() not in (
            "by", ".", ",", "(", "across", "achieved",
        ):
            end = _extend_phrase(words, after)
            if end > after:
                return after, end
    if reading.action_span:
        start = reading.action_span[1]
        if start < len(words) and words[start].lower() in ("our", "the"):
            start += 1
        end = _extend_phrase(words, start)
        if reading.amount_span and start <= reading.amount_span[0] < end:
            end = reading.amount_span[0]
        if end > start:
            return start, end
    return None
