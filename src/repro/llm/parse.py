"""Robust parsing of LLM completions into detail dictionaries.

Real prompting pipelines must survive format drift; this parser handles the
completion styles the simulator (and real models) produce: bare JSON, JSON
inside markdown fences or prose, and plain ``Key: value`` line answers.
"""

from __future__ import annotations

import json
import re

def _balanced_json_blocks(text: str) -> list[str]:
    """Top-level brace-balanced ``{...}`` blocks, outermost first."""
    blocks: list[str] = []
    depth = 0
    start = -1
    for index, char in enumerate(text):
        if char == "{":
            if depth == 0:
                start = index
            depth += 1
        elif char == "}" and depth > 0:
            depth -= 1
            if depth == 0:
                blocks.append(text[start : index + 1])
    return blocks
_LINE_RE = re.compile(r"^(?P<key>[A-Za-z][A-Za-z ]{0,30}):\s*(?P<value>.*)$")
_NOT_MENTIONED_RE = re.compile(
    r"^\(?(not (mentioned|present|specified|applicable)|n/?a|none)\)?\.?$",
    re.IGNORECASE,
)


def _clean_value(value: str) -> str:
    value = value.strip().strip('"').strip()
    if _NOT_MENTIONED_RE.match(value):
        return ""
    return value


def parse_llm_json(completion: str) -> dict[str, str]:
    """Extract a flat string->string mapping from a completion.

    Tries, in order: every ``{...}`` block as JSON (with a single-quote
    repair pass), then ``Key: value`` lines. Returns ``{}`` when nothing
    parseable is found — callers treat that as "no details extracted".
    """
    for block in _balanced_json_blocks(completion):
        for candidate in (block, block.replace("'", '"')):
            try:
                payload = json.loads(candidate)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict):
                return {
                    str(key): _clean_value(str(value))
                    for key, value in payload.items()
                    if not isinstance(value, (dict, list))
                }
    details: dict[str, str] = {}
    for line in completion.splitlines():
        match = _LINE_RE.match(line.strip())
        if match:
            details[match.group("key").strip()] = _clean_value(
                match.group("value")
            )
    return details
