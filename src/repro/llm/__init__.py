"""Zero-/few-shot prompting baselines over a simulated LLM.

The paper prompts the open-weight Llama 4 109B. No LLM (or GPU) exists in
this environment, so :class:`~repro.llm.engine.SimulatedLLM` stands in: a
deterministic completion engine that genuinely *parses the prompt* — it
locates the task instructions, any in-context examples, and the query
objective — and answers from an internal reading-comprehension policy.

Calibration mirrors the published behaviour of real LLMs on this task
(paper Section 6.2 and [9]): without examples the model drifts in output
format and over-extracts (zero-shot < few-shot), while in-context examples
teach it the field inventory and the expected value granularity. A token
throughput model provides the latency that Table 4's time column reports.
"""

from repro.llm.engine import LlmBehavior, SimulatedLLM
from repro.llm.prompts import build_prompt, FieldDescription, FIELD_GUIDES
from repro.llm.parse import parse_llm_json
from repro.llm.extractor import PromptingExtractor

__all__ = [
    "FIELD_GUIDES",
    "FieldDescription",
    "LlmBehavior",
    "PromptingExtractor",
    "SimulatedLLM",
    "build_prompt",
    "parse_llm_json",
]
