"""Prompt construction for the zero-/few-shot extraction baselines.

The prompt layout follows the NetZeroFacts paper's few-shot protocol [32]:
a task instruction, a field glossary, optionally three input/output
examples, and the query objective. Everything downstream (the simulated
LLM) works purely off this text — changing the prompt changes behaviour.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Mapping, Sequence

from repro.core.schema import AnnotatedObjective


@dataclasses.dataclass(frozen=True)
class FieldDescription:
    """Glossary entry describing one extraction field to the model."""

    name: str
    description: str


#: Field glossaries for both schemas (paper Section 2.2 definitions).
FIELD_GUIDES: dict[str, FieldDescription] = {
    "Action": FieldDescription(
        "Action", "the verb describing the nature of the intended change"
    ),
    "Amount": FieldDescription(
        "Amount",
        "the relative or absolute value specifying the magnitude of the "
        "change",
    ),
    "Qualifier": FieldDescription(
        "Qualifier",
        "the short phrase providing additional context to the amount",
    ),
    "Baseline": FieldDescription(
        "Baseline", "the year when the change process began"
    ),
    "Deadline": FieldDescription(
        "Deadline", "the year by which the change should be completed"
    ),
    "TargetValue": FieldDescription(
        "TargetValue", "the emission reduction target value"
    ),
    "ReferenceYear": FieldDescription(
        "ReferenceYear", "the base year the reduction is measured against"
    ),
    "TargetYear": FieldDescription(
        "TargetYear", "the year by which the target should be reached"
    ),
}

INSTRUCTION_HEADER = (
    "You are an expert sustainability analyst. Extract the key details of "
    "the following sustainability objective. Answer with a single JSON "
    "object whose keys are exactly the field names listed below. Use an "
    "empty string for details that are not present."
)

EXAMPLES_HEADER = "### Examples"
OBJECTIVE_HEADER = "### Objective"
OUTPUT_HEADER = "### Output"


def build_prompt(
    objective_text: str,
    fields: Sequence[str],
    examples: Sequence[AnnotatedObjective] = (),
) -> str:
    """Build a zero-shot (no examples) or few-shot extraction prompt."""
    lines = [INSTRUCTION_HEADER, "", "Fields:"]
    for field in fields:
        guide = FIELD_GUIDES.get(field)
        description = guide.description if guide else "the detail value"
        lines.append(f"- {field}: {description}")
    if examples:
        lines.append("")
        lines.append(EXAMPLES_HEADER)
        for example in examples:
            lines.append(f"{OBJECTIVE_HEADER}: {example.text}")
            lines.append(
                f"{OUTPUT_HEADER}: "
                + json.dumps(_full_details(example.details, fields))
            )
    lines.append("")
    lines.append(f"{OBJECTIVE_HEADER}: {objective_text}")
    lines.append(f"{OUTPUT_HEADER}:")
    return "\n".join(lines)


def _full_details(
    details: Mapping[str, str], fields: Sequence[str]
) -> dict[str, str]:
    return {field: details.get(field, "") for field in fields}
